#include "vscript/vs_parser.h"

#include "common/string_util.h"
#include "vscript/vs_lexer.h"

namespace mlcs::vscript {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenType::kEof)) {
      MLCS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      program.statements.push_back(std::move(stmt));
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool Check(TokenType type) const { return Peek().type == type; }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType type, const char* context) {
    if (Check(type)) {
      Advance();
      return Status::OK();
    }
    return Status::ParseError(
        std::string("expected ") + TokenTypeToString(type) + " " + context +
        " but found '" + Peek().text + "' at line " +
        std::to_string(Peek().line));
  }

  Result<StmtPtr> ParseStatement() {
    int line = Peek().line;
    if (Match(TokenType::kReturn)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->line = line;
      MLCS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      MLCS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "after return"));
      return stmt;
    }
    if (Match(TokenType::kIf)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kIf;
      stmt->line = line;
      MLCS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after if"));
      MLCS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      MLCS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after if condition"));
      MLCS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      if (Match(TokenType::kElse)) {
        if (Check(TokenType::kIf)) {
          // else if → single-statement else block.
          MLCS_ASSIGN_OR_RETURN(StmtPtr nested, ParseStatement());
          stmt->orelse.push_back(std::move(nested));
        } else {
          MLCS_ASSIGN_OR_RETURN(stmt->orelse, ParseBlock());
        }
      }
      return stmt;
    }
    if (Match(TokenType::kWhile)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kWhile;
      stmt->line = line;
      MLCS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after while"));
      MLCS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      MLCS_RETURN_IF_ERROR(
          Expect(TokenType::kRParen, "after while condition"));
      MLCS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    // Assignment: ident '=' (but not '==').
    if (Check(TokenType::kIdent) && Peek(1).type == TokenType::kAssign) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kAssign;
      stmt->line = line;
      stmt->target = Advance().text;
      Advance();  // '='
      MLCS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      MLCS_RETURN_IF_ERROR(
          Expect(TokenType::kSemicolon, "after assignment"));
      return stmt;
    }
    // Expression statement.
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = line;
    MLCS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    MLCS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "after expression"));
    return stmt;
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    MLCS_RETURN_IF_ERROR(Expect(TokenType::kLBrace, "to open block"));
    std::vector<StmtPtr> body;
    while (!Check(TokenType::kRBrace) && !Check(TokenType::kEof)) {
      MLCS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      body.push_back(std::move(stmt));
    }
    MLCS_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "to close block"));
    return body;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MLCS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Check(TokenType::kOr)) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(exec::BinOpKind::kOr, std::move(left),
                        std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    MLCS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Check(TokenType::kAnd)) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(exec::BinOpKind::kAnd, std::move(left),
                        std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Check(TokenType::kNot)) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->un_op = exec::UnOpKind::kNot;
      e->left = std::move(operand);
      e->line = line;
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MLCS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    exec::BinOpKind op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = exec::BinOpKind::kEq;
        break;
      case TokenType::kNe:
        op = exec::BinOpKind::kNe;
        break;
      case TokenType::kLt:
        op = exec::BinOpKind::kLt;
        break;
      case TokenType::kLe:
        op = exec::BinOpKind::kLe;
        break;
      case TokenType::kGt:
        op = exec::BinOpKind::kGt;
        break;
      case TokenType::kGe:
        op = exec::BinOpKind::kGe;
        break;
      default:
        return left;
    }
    int line = Advance().line;
    MLCS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right), line);
  }

  Result<ExprPtr> ParseAdditive() {
    MLCS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      exec::BinOpKind op = Check(TokenType::kPlus) ? exec::BinOpKind::kAdd
                                                   : exec::BinOpKind::kSub;
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    MLCS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
           Check(TokenType::kPercent)) {
      exec::BinOpKind op = Check(TokenType::kStar) ? exec::BinOpKind::kMul
                           : Check(TokenType::kSlash)
                               ? exec::BinOpKind::kDiv
                               : exec::BinOpKind::kMod;
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenType::kMinus)) {
      int line = Advance().line;
      MLCS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->un_op = exec::UnOpKind::kNeg;
      e->left = std::move(operand);
      e->line = line;
      return e;
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    int line = Peek().line;
    if (Match(TokenType::kLParen)) {
      MLCS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      MLCS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "to close group"));
      return inner;
    }
    if (Check(TokenType::kInt)) {
      Token tok = Advance();
      MLCS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tok.text));
      return MakeLiteral(v >= INT32_MIN && v <= INT32_MAX
                             ? Value::Int32(static_cast<int32_t>(v))
                             : Value::Int64(v),
                         line);
    }
    if (Check(TokenType::kFloat)) {
      Token tok = Advance();
      MLCS_ASSIGN_OR_RETURN(double v, ParseDouble(tok.text));
      return MakeLiteral(Value::Double(v), line);
    }
    if (Check(TokenType::kString)) {
      return MakeLiteral(Value::Varchar(Advance().text), line);
    }
    if (Match(TokenType::kTrue)) return MakeLiteral(Value::Bool(true), line);
    if (Match(TokenType::kFalse)) {
      return MakeLiteral(Value::Bool(false), line);
    }
    if (Match(TokenType::kNull)) {
      return MakeLiteral(Value::MakeNull(TypeId::kInt32), line);
    }
    if (Check(TokenType::kLBrace)) return ParseDict();
    if (Check(TokenType::kIdent)) return ParseIdentOrCall();
    return Status::ParseError("unexpected token '" + Peek().text +
                              "' at line " + std::to_string(line));
  }

  Result<ExprPtr> ParseDict() {
    int line = Peek().line;
    MLCS_RETURN_IF_ERROR(Expect(TokenType::kLBrace, "to open dict"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kDict;
    e->line = line;
    if (!Check(TokenType::kRBrace)) {
      while (true) {
        if (!Check(TokenType::kIdent) && !Check(TokenType::kString)) {
          return Status::ParseError("expected dict key at line " +
                                    std::to_string(Peek().line));
        }
        std::string key = Advance().text;
        MLCS_RETURN_IF_ERROR(Expect(TokenType::kColon, "after dict key"));
        MLCS_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
        e->entries.emplace_back(std::move(key), std::move(value));
        if (!Match(TokenType::kComma)) break;
      }
    }
    MLCS_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "to close dict"));
    return e;
  }

  Result<ExprPtr> ParseIdentOrCall() {
    int line = Peek().line;
    std::string name = Advance().text;
    while (Match(TokenType::kDot)) {
      if (!Check(TokenType::kIdent)) {
        return Status::ParseError("expected identifier after '.' at line " +
                                  std::to_string(Peek().line));
      }
      name += ".";
      name += Advance().text;
    }
    if (Match(TokenType::kLParen)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCall;
      e->name = std::move(name);
      e->line = line;
      if (!Check(TokenType::kRParen)) {
        while (true) {
          MLCS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
          if (!Match(TokenType::kComma)) break;
        }
      }
      MLCS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "to close call"));
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kVariable;
    e->name = std::move(name);
    e->line = line;
    return e;
  }

  static ExprPtr MakeBinary(exec::BinOpKind op, ExprPtr left, ExprPtr right,
                            int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->bin_op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    e->line = line;
    return e;
  }

  static Result<ExprPtr> MakeLiteral(Value v, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v);
    e->line = line;
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  MLCS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

}  // namespace mlcs::vscript
