#include "vscript/vs_lexer.h"

#include <cctype>

namespace mlcs::vscript {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kInt:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kReturn:
      return "return";
    case TokenType::kIf:
      return "if";
    case TokenType::kElse:
      return "else";
    case TokenType::kWhile:
      return "while";
    case TokenType::kAnd:
      return "and";
    case TokenType::kOr:
      return "or";
    case TokenType::kNot:
      return "not";
    case TokenType::kTrue:
      return "true";
    case TokenType::kFalse:
      return "false";
    case TokenType::kNull:
      return "null";
    case TokenType::kAssign:
      return "=";
    case TokenType::kEq:
      return "==";
    case TokenType::kNe:
      return "!=";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kStar:
      return "*";
    case TokenType::kSlash:
      return "/";
    case TokenType::kPercent:
      return "%";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kLBrace:
      return "{";
    case TokenType::kRBrace:
      return "}";
    case TokenType::kComma:
      return ",";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kColon:
      return ":";
    case TokenType::kDot:
      return ".";
    case TokenType::kEof:
      return "<eof>";
  }
  return "?";
}

namespace {

TokenType KeywordOrIdent(const std::string& word) {
  if (word == "return") return TokenType::kReturn;
  if (word == "if") return TokenType::kIf;
  if (word == "else") return TokenType::kElse;
  if (word == "while") return TokenType::kWhile;
  if (word == "and") return TokenType::kAnd;
  if (word == "or") return TokenType::kOr;
  if (word == "not") return TokenType::kNot;
  if (word == "true") return TokenType::kTrue;
  if (word == "false") return TokenType::kFalse;
  if (word == "null" || word == "None") return TokenType::kNull;
  return TokenType::kIdent;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  auto push = [&](TokenType type, std::string text) {
    tokens.push_back(Token{type, std::move(text), line});
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // line comment
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      std::string word = source.substr(start, i - start);
      push(KeywordOrIdent(word), word);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.' || source[i] == 'e' || source[i] == 'E' ||
              ((source[i] == '+' || source[i] == '-') && i > start &&
               (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        if (source[i] == '.' || source[i] == 'e' || source[i] == 'E') {
          is_float = true;
        }
        ++i;
      }
      push(is_float ? TokenType::kFloat : TokenType::kInt,
           source.substr(start, i - start));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '\\' && i + 1 < source.size()) {
          char esc = source[i + 1];
          switch (esc) {
            case 'n':
              text.push_back('\n');
              break;
            case 't':
              text.push_back('\t');
              break;
            case '\\':
              text.push_back('\\');
              break;
            case '\'':
              text.push_back('\'');
              break;
            case '"':
              text.push_back('"');
              break;
            default:
              text.push_back(esc);
              break;
          }
          i += 2;
          continue;
        }
        if (source[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        if (source[i] == '\n') ++line;
        text.push_back(source[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      push(TokenType::kString, std::move(text));
      continue;
    }
    // Operators & punctuation.
    auto two = [&](char next) {
      return i + 1 < source.size() && source[i + 1] == next;
    };
    switch (c) {
      case '=':
        if (two('=')) {
          push(TokenType::kEq, "==");
          i += 2;
        } else {
          push(TokenType::kAssign, "=");
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenType::kNe, "!=");
          i += 2;
        } else {
          push(TokenType::kNot, "!");
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenType::kLe, "<=");
          i += 2;
        } else {
          push(TokenType::kLt, "<");
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenType::kGe, ">=");
          i += 2;
        } else {
          push(TokenType::kGt, ">");
          ++i;
        }
        break;
      case '+':
        push(TokenType::kPlus, "+");
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, "-");
        ++i;
        break;
      case '*':
        push(TokenType::kStar, "*");
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, "/");
        ++i;
        break;
      case '%':
        push(TokenType::kPercent, "%");
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, "(");
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, ")");
        ++i;
        break;
      case '{':
        push(TokenType::kLBrace, "{");
        ++i;
        break;
      case '}':
        push(TokenType::kRBrace, "}");
        ++i;
        break;
      case ',':
        push(TokenType::kComma, ",");
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, ";");
        ++i;
        break;
      case ':':
        push(TokenType::kColon, ":");
        ++i;
        break;
      case '.':
        push(TokenType::kDot, ".");
        ++i;
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
  }
  tokens.push_back(Token{TokenType::kEof, "", line});
  return tokens;
}

}  // namespace mlcs::vscript
