#ifndef MLCS_VSCRIPT_VS_AST_H_
#define MLCS_VSCRIPT_VS_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/kernels.h"
#include "types/value.h"

namespace mlcs::vscript {

/// VectorScript AST. The language is deliberately small — assignments,
/// arithmetic/comparisons over scalars and vectors, `if`/`while`, dotted
/// builtin calls (ml.*, pickle.*, vec.*) and `return` — enough to express
/// the paper's Listing 1/2 UDF bodies one-to-one.

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,     // number / string / bool / null
  kVariable,    // identifier
  kBinary,      // a op b
  kUnary,       // -a, not a
  kCall,        // dotted.name(args)
  kDict,        // {name: expr, ...}
};

struct Expr {
  ExprKind kind;
  int line = 1;

  // kLiteral
  Value literal;
  // kVariable / kCall (dotted name joined with '.')
  std::string name;
  // kBinary / kUnary
  exec::BinOpKind bin_op = exec::BinOpKind::kAdd;
  exec::UnOpKind un_op = exec::UnOpKind::kNeg;
  ExprPtr left;
  ExprPtr right;
  // kCall arguments
  std::vector<ExprPtr> args;
  // kDict entries (insertion order preserved → output column order)
  std::vector<std::pair<std::string, ExprPtr>> entries;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind { kAssign, kExpr, kReturn, kIf, kWhile };

struct Stmt {
  StmtKind kind;
  int line = 1;

  std::string target;          // kAssign
  ExprPtr expr;                // kAssign value / kExpr / kReturn / condition
  std::vector<StmtPtr> body;   // kIf then / kWhile body
  std::vector<StmtPtr> orelse; // kIf else
};

struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace mlcs::vscript

#endif  // MLCS_VSCRIPT_VS_AST_H_
