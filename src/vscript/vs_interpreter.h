#ifndef MLCS_VSCRIPT_VS_INTERPRETER_H_
#define MLCS_VSCRIPT_VS_INTERPRETER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "vscript/vs_ast.h"
#include "vscript/vs_value.h"

namespace mlcs::vscript {

/// Variable bindings (UDF parameters become the initial environment, with
/// columns bound by parameter name — exactly how MonetDB/Python exposes
/// input columns to the Python body).
using Environment = std::map<std::string, ScriptValue>;

struct InterpreterOptions {
  /// Hard cap on executed statements (defends against `while(true)`).
  size_t max_steps = 50'000'000;
};

/// Executes a parsed VectorScript program. The value of the first `return`
/// is the UDF result; running off the end returns null.
Result<ScriptValue> Execute(const Program& program, Environment env,
                            const InterpreterOptions& options = {});

/// Convenience: parse + execute.
Result<ScriptValue> ExecuteSource(const std::string& source, Environment env,
                                  const InterpreterOptions& options = {});

}  // namespace mlcs::vscript

#endif  // MLCS_VSCRIPT_VS_INTERPRETER_H_
