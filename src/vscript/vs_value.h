#ifndef MLCS_VSCRIPT_VS_VALUE_H_
#define MLCS_VSCRIPT_VS_VALUE_H_

#include <map>
#include <memory>
#include <string>
#include <variant>

#include "common/result.h"
#include "ml/model.h"
#include "storage/column.h"
#include "types/value.h"

namespace mlcs::vscript {

class ScriptValue;
using ScriptDict = std::map<std::string, ScriptValue>;

/// A VectorScript runtime value. The language is vector-first: whole
/// columns are ordinary values (like NumPy arrays in MonetDB/Python), and
/// ML models are first-class handles so `clf = ml.random_forest(8);
/// ml.fit(clf, data, classes);` works without serialization round-trips.
class ScriptValue {
 public:
  /// Null.
  ScriptValue() : payload_(Value::MakeNull(TypeId::kInt32)) {}
  /// Scalar (wraps an engine Value: bool/int/double/varchar/blob/null).
  explicit ScriptValue(Value v) : payload_(std::move(v)) {}
  /// Vector.
  explicit ScriptValue(ColumnPtr column) : payload_(std::move(column)) {}
  /// Model handle.
  explicit ScriptValue(ml::ModelPtr model) : payload_(std::move(model)) {}
  /// Dict (the `return {name: value}` table-building form of Listing 1).
  explicit ScriptValue(ScriptDict dict)
      : payload_(std::make_shared<ScriptDict>(std::move(dict))) {}

  bool is_scalar() const {
    return std::holds_alternative<Value>(payload_);
  }
  bool is_column() const {
    return std::holds_alternative<ColumnPtr>(payload_);
  }
  bool is_model() const {
    return std::holds_alternative<ml::ModelPtr>(payload_);
  }
  bool is_dict() const {
    return std::holds_alternative<std::shared_ptr<ScriptDict>>(payload_);
  }
  bool is_null() const { return is_scalar() && scalar().is_null(); }

  const Value& scalar() const { return std::get<Value>(payload_); }
  const ColumnPtr& column() const { return std::get<ColumnPtr>(payload_); }
  const ml::ModelPtr& model() const {
    return std::get<ml::ModelPtr>(payload_);
  }
  const ScriptDict& dict() const {
    return *std::get<std::shared_ptr<ScriptDict>>(payload_);
  }

  /// Scalar or length-1 column → Value; otherwise error.
  Result<Value> AsScalar() const;
  /// Column, or scalar broadcast to a length-1 column; models/dicts error.
  Result<ColumnPtr> AsColumn() const;
  /// Scalar truthiness for `if`/`while` conditions.
  Result<bool> AsBool() const;

  /// Debug rendering ("<column INT32[5]>", "<model random_forest>", ...).
  std::string ToString() const;

 private:
  std::variant<Value, ColumnPtr, ml::ModelPtr, std::shared_ptr<ScriptDict>>
      payload_;
};

}  // namespace mlcs::vscript

#endif  // MLCS_VSCRIPT_VS_VALUE_H_
