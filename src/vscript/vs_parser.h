#ifndef MLCS_VSCRIPT_VS_PARSER_H_
#define MLCS_VSCRIPT_VS_PARSER_H_

#include <string>

#include "common/result.h"
#include "vscript/vs_ast.h"

namespace mlcs::vscript {

/// Parses a VectorScript program (a UDF body). Errors carry line numbers.
Result<Program> Parse(const std::string& source);

}  // namespace mlcs::vscript

#endif  // MLCS_VSCRIPT_VS_PARSER_H_
