#include "vscript/vs_value.h"

namespace mlcs::vscript {

Result<Value> ScriptValue::AsScalar() const {
  if (is_scalar()) return scalar();
  if (is_column()) {
    if (column()->size() == 1) return column()->GetValue(0);
    return Status::TypeMismatch("column of length " +
                                std::to_string(column()->size()) +
                                " is not a scalar");
  }
  return Status::TypeMismatch("value is not a scalar");
}

Result<ColumnPtr> ScriptValue::AsColumn() const {
  if (is_column()) return column();
  if (is_scalar()) return Column::Constant(scalar(), 1);
  return Status::TypeMismatch(is_model() ? "model handle is not a column"
                                         : "dict is not a column");
}

Result<bool> ScriptValue::AsBool() const {
  MLCS_ASSIGN_OR_RETURN(Value v, AsScalar());
  return v.AsBool();
}

std::string ScriptValue::ToString() const {
  if (is_scalar()) return scalar().ToString();
  if (is_column()) {
    return std::string("<column ") + TypeIdToString(column()->type()) + "[" +
           std::to_string(column()->size()) + "]>";
  }
  if (is_model()) {
    return std::string("<model ") +
           (model() ? ml::ModelTypeToString(model()->type()) : "null") + ">";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : dict()) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + value.ToString();
  }
  out += "}";
  return out;
}

}  // namespace mlcs::vscript
