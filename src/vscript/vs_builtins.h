#ifndef MLCS_VSCRIPT_VS_BUILTINS_H_
#define MLCS_VSCRIPT_VS_BUILTINS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "vscript/vs_value.h"

namespace mlcs::vscript {

/// Dispatches a dotted builtin call. The builtin surface mirrors what the
/// paper's UDF bodies import from Python:
///
///   ml.random_forest(n_estimators [, max_depth [, seed]]) → model
///   ml.decision_tree([max_depth])                         → model
///   ml.logistic_regression([epochs [, learning_rate]])    → model
///   ml.naive_bayes()                                      → model
///   ml.knn([k])                                           → model
///   ml.fit(model, feat..., labels)                        → null
///   ml.predict(model, feat...)                            → INT column
///   ml.predict_proba(model, cls, feat...)                 → DOUBLE column
///   ml.confidence(model, feat...)                         → DOUBLE column
///   ml.accuracy(y_true, y_pred)                           → DOUBLE
///   pickle.dumps(model)                                   → BLOB scalar
///   pickle.loads(blob)                                    → model
///   vec.len(x) / vec.sum(x) / vec.avg(x) / vec.min(x) / vec.max(x)
///   vec.fill(value, n)                                    → column
///   vec.random(n [, seed])                                → DOUBLE column
///   vec.abs/log/exp/sqrt/round/floor/ceil(x)              → DOUBLE column
///   vec.where(cond, a, b)   (numpy.where)                 → column
///   vec.clip(x, lo, hi)                                   → DOUBLE column
///   vec.fillna(x, value)    (NULL/NaN → value)            → DOUBLE column
///   print(x)                                              → null (logs)
///
/// Unknown names report kNotFound so the interpreter can produce a good
/// error message with the script line.
Result<ScriptValue> CallBuiltin(const std::string& name,
                                const std::vector<ScriptValue>& args);

/// True if `name` is a known builtin (used for better error messages).
[[nodiscard]] bool IsBuiltin(const std::string& name);

}  // namespace mlcs::vscript

#endif  // MLCS_VSCRIPT_VS_BUILTINS_H_
