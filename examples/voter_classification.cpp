/// The paper's §4 use case end-to-end: classify (synthetic) North Carolina
/// voters inside the database — join voters with precinct results, generate
/// weighted-random labels, train a random forest via a table UDF, predict
/// the held-out half, and compare the per-precinct aggregated predictions
/// with the actual vote shares. Prints the timing decomposition that
/// Figure 1 plots (the gray "load + wrangle" share vs the total).
///
/// Usage: ./build/examples/voter_classification [num_voters]
#include <cstdio>
#include <cstdlib>

#include "io/voter_gen.h"
#include "pipeline/voter_pipeline.h"
#include "sql/database.h"

int main(int argc, char** argv) {
  mlcs::pipeline::PipelineConfig config;
  config.data.num_voters = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 50000;
  config.data.num_precincts = 400;
  config.n_estimators = 8;

  std::printf("Voter classification (in-database): %zu voters x %zu "
              "columns, %zu precincts\n",
              config.data.num_voters, config.data.num_columns,
              config.data.num_precincts);

  mlcs::Database db;
  auto load = mlcs::pipeline::LoadVoterData(&db, config);
  if (!load.ok()) {
    std::fprintf(stderr, "data load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  auto result = mlcs::pipeline::RunInDatabase(&db, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.ValueOrDie();
  std::printf("\n%-28s %10s %10s %10s %10s\n", "method", "wrangle(s)",
              "train(s)", "predict(s)", "total(s)");
  std::printf("%-28s %10.3f %10.3f %10.3f %10.3f\n", r.method.c_str(),
              r.load_wrangle_seconds, r.train_seconds, r.predict_seconds,
              r.total_seconds);
  std::printf("\nPredicted %zu test voters; per-precinct dem-share MAE "
              "vs. actual lean: %.4f\n",
              r.test_rows, r.precinct_share_mae);

  // Meta-analysis with plain SQL: which precincts does the model call
  // most Democratic?
  auto top = db.Query(
      "SELECT precinct_id, SUM(pred) AS pred_dem, COUNT(*) AS n "
      "FROM voter_predictions GROUP BY precinct_id "
      "ORDER BY pred_dem DESC LIMIT 5");
  if (top.ok()) {
    std::printf("\nTop-5 precincts by predicted Democratic votes:\n%s",
                top.ValueOrDie()->ToString().c_str());
  }
  std::printf("\nvoter_classification finished OK\n");
  return 0;
}
