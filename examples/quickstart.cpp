/// Quickstart: open an embedded mlcs database, create tables, run SQL, and
/// train + apply a machine-learning model entirely inside the database via
/// a vectorized UDF (the paper's core workflow, condensed).
///
/// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "sql/database.h"

namespace {

/// Dies with a message when a result is an error (examples keep error
/// handling terse; library code uses Status/Result throughout).
template <typename T>
T Unwrap(mlcs::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  mlcs::Database db;
  mlcs::Connection conn = db.Connect();

  // 1. Plain SQL: tables, inserts, queries.
  Unwrap(conn.Run(R"(
    CREATE TABLE measurements (sensor INTEGER, value DOUBLE);
    INSERT INTO measurements VALUES
      (1, 20.5), (1, 21.0), (1, 19.5),
      (2, 40.0), (2, 41.5), (2, 39.0);
  )"),
         "setup");
  auto summary = Unwrap(
      conn.Query("SELECT sensor, COUNT(*) AS n, AVG(value) AS mean "
                 "FROM measurements GROUP BY sensor ORDER BY sensor"),
      "aggregate query");
  std::printf("Per-sensor summary:\n%s\n", summary->ToString().c_str());

  // 2. A scripted UDF (CREATE FUNCTION ... LANGUAGE VSCRIPT): vectorized —
  //    the body sees whole columns, not rows.
  Unwrap(conn.Query(R"(
    CREATE FUNCTION celsius_to_f(value DOUBLE) RETURNS DOUBLE
    LANGUAGE VSCRIPT { return value * 1.8 + 32.0; }
  )"),
         "create scalar UDF");
  auto fahrenheit = Unwrap(
      conn.Query("SELECT sensor, celsius_to_f(value) AS f "
                 "FROM measurements LIMIT 3"),
      "scalar UDF query");
  std::printf("Converted via VectorScript UDF:\n%s\n",
              fahrenheit->ToString().c_str());

  // 3. In-database machine learning: train a model with a table UDF,
  //    store the pickled classifier in a BLOB, apply it with a scalar UDF
  //    — the paper's Listings 1 and 2.
  Unwrap(conn.Run(R"(
    CREATE TABLE training (feature INTEGER, class INTEGER);
    INSERT INTO training VALUES
      (5, 0), (8, 0), (12, 0), (15, 0), (22, 0),
      (55, 1), (61, 1), (70, 1), (82, 1), (95, 1);

    CREATE FUNCTION train(data INTEGER, classes INTEGER,
                          n_estimators INTEGER)
    RETURNS TABLE(classifier BLOB, estimators INTEGER)
    LANGUAGE PYTHON
    {
      clf = ml.random_forest(n_estimators);
      ml.fit(clf, data, classes);
      return { classifier: pickle.dumps(clf), estimators: n_estimators };
    };

    CREATE FUNCTION predict(data INTEGER, classifier BLOB)
    RETURNS INTEGER
    LANGUAGE PYTHON
    {
      classifier = pickle.loads(classifier);
      return ml.predict(classifier, data);
    };

    CREATE TABLE models AS
      SELECT * FROM train((SELECT feature, class FROM training), 8);
  )"),
         "train model in-database");

  auto predictions = Unwrap(
      conn.Query("SELECT f AS input, "
                 "predict(f, (SELECT classifier FROM models)) AS label "
                 "FROM (SELECT feature + 1 AS f FROM training) probe"),
      "predict with stored model");
  std::printf("Predictions from the stored model:\n%s\n",
              predictions->ToString().c_str());

  std::printf("quickstart finished OK\n");
  return 0;
}
