/// Ensemble learning (paper §3.3): train several model families on the
/// same data, persist them with their metadata in the model catalog, then
/// (a) meta-analyze them with SQL and (b) classify by picking, per row,
/// the model that reports the highest confidence.
///
/// Usage: ./build/examples/ensemble_learning
#include <cstdio>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/split.h"
#include "modelstore/ensemble.h"
#include "modelstore/model_store.h"
#include "sql/database.h"

namespace {

/// Three overlapping gaussian blobs — easy for some families, harder for
/// others, so the ensemble has something to arbitrate.
void MakeData(size_t n, mlcs::ml::Matrix* x, mlcs::ml::Labels* y) {
  mlcs::Rng rng(2024);
  *x = mlcs::ml::Matrix(n, 2);
  y->resize(n);
  const double cx[3] = {0.0, 3.0, 1.5};
  const double cy[3] = {0.0, 0.0, 2.6};
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(3));
    x->Set(i, 0, cx[cls] + rng.NextGaussian());
    x->Set(i, 1, cy[cls] + rng.NextGaussian());
    (*y)[i] = cls;
  }
}

}  // namespace

int main() {
  using namespace mlcs;

  ml::Matrix x;
  ml::Labels y;
  MakeData(3000, &x, &y);
  auto split = ml::TrainTestSplit(x.rows(), 0.3, 1).ValueOrDie();
  ml::Matrix x_train = x.SelectRows(split.train);
  ml::Matrix x_test = x.SelectRows(split.test);
  ml::Labels y_train, y_test;
  for (auto i : split.train) y_train.push_back(y[i]);
  for (auto i : split.test) y_test.push_back(y[i]);

  // Train three families and store each with its test accuracy.
  Database db;
  modelstore::ModelStore store(&db);
  if (!store.Init().ok()) return 1;

  std::vector<ml::ModelPtr> models;
  ml::RandomForestOptions rf_opt;
  rf_opt.n_estimators = 12;
  models.push_back(std::make_shared<ml::RandomForest>(rf_opt));
  models.push_back(std::make_shared<ml::LogisticRegression>());
  models.push_back(std::make_shared<ml::NaiveBayes>());
  const char* names[] = {"forest", "logreg", "bayes"};

  std::printf("%-10s %-22s %10s\n", "name", "algorithm", "accuracy");
  for (size_t m = 0; m < models.size(); ++m) {
    if (!models[m]->Fit(x_train, y_train).ok()) return 1;
    auto pred = models[m]->Predict(x_test).ValueOrDie();
    double acc = ml::Accuracy(y_test, pred).ValueOrDie();
    if (!store
             .SaveModel(names[m], *models[m], acc,
                        static_cast<int64_t>(x_train.rows()))
             .ok()) {
      return 1;
    }
    std::printf("%-10s %-22s %10.4f\n", names[m],
                ml::ModelTypeToString(models[m]->type()), acc);
  }

  // (a) Meta-analysis with SQL over the model catalog.
  auto best = db.Query(
      "SELECT name, accuracy FROM models ORDER BY accuracy DESC LIMIT 1");
  std::printf("\nBest stored model (via SQL): %s",
              best.ValueOrDie()->ToString().c_str());

  // (b) Ensemble strategies on the test set.
  auto by_confidence =
      modelstore::PredictHighestConfidence(models, x_test).ValueOrDie();
  auto by_vote =
      modelstore::PredictMajorityVote(models, x_test).ValueOrDie();
  std::printf("\nhighest-confidence ensemble accuracy: %.4f\n",
              ml::Accuracy(y_test, by_confidence).ValueOrDie());
  std::printf("majority-vote ensemble accuracy:      %.4f\n",
              ml::Accuracy(y_test, by_vote).ValueOrDie());

  // Which model "wins" how many rows under the confidence rule?
  auto winners = modelstore::WinningModelPerRow(models, x_test).ValueOrDie();
  size_t counts[3] = {0, 0, 0};
  for (size_t w : winners) ++counts[w];
  std::printf("\nrows won per model: forest=%zu logreg=%zu bayes=%zu\n",
              counts[0], counts[1], counts[2]);

  std::printf("\nensemble_learning finished OK\n");
  return 0;
}
