/// Model management inside the database (paper §2.2 / §3.3, the in-RDBMS
/// answer to ModelDB): every trained model is a row — BLOB + hyper-
/// parameters + quality metrics — so ordinary SQL tracks, compares and
/// selects models. This example sweeps hyperparameters with k-fold cross
/// validation, stores every candidate, then promotes the best one.
///
/// Usage: ./build/examples/model_management
#include <cstdio>

#include "common/random.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/split.h"
#include "modelstore/model_store.h"
#include "sql/database.h"

namespace {

void MakeData(size_t n, mlcs::ml::Matrix* x, mlcs::ml::Labels* y) {
  mlcs::Rng rng(7);
  *x = mlcs::ml::Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextDouble() * 2 - 1;
    double b = rng.NextDouble() * 2 - 1;
    double c = rng.NextGaussian() * 0.3;
    x->Set(i, 0, a);
    x->Set(i, 1, b);
    x->Set(i, 2, c);
    (*y)[i] = (a * b + c > 0) ? 1 : 0;
  }
}

}  // namespace

int main() {
  using namespace mlcs;

  ml::Matrix x;
  ml::Labels y;
  MakeData(2000, &x, &y);

  Database db;
  modelstore::ModelStore store(&db);
  if (!store.Init().ok()) return 1;

  // Hyperparameter sweep with 4-fold cross validation; every candidate is
  // persisted with its CV accuracy.
  std::printf("%-18s %8s\n", "candidate", "cv-acc");
  for (int n_estimators : {2, 4, 8, 16}) {
    for (int max_depth : {4, 8}) {
      auto folds = ml::KFold(x.rows(), 4, 11).ValueOrDie();
      double acc_sum = 0;
      for (const auto& fold : folds) {
        ml::RandomForestOptions opt;
        opt.n_estimators = n_estimators;
        opt.max_depth = max_depth;
        ml::RandomForest forest(opt);
        ml::Matrix x_train = x.SelectRows(fold.train);
        ml::Labels y_train;
        for (auto i : fold.train) y_train.push_back(y[i]);
        if (!forest.Fit(x_train, y_train).ok()) return 1;
        ml::Matrix x_test = x.SelectRows(fold.test);
        ml::Labels y_test;
        for (auto i : fold.test) y_test.push_back(y[i]);
        auto pred = forest.Predict(x_test).ValueOrDie();
        acc_sum += ml::Accuracy(y_test, pred).ValueOrDie();
      }
      double cv_acc = acc_sum / static_cast<double>(folds.size());

      // Refit on all data and store with the CV metric.
      ml::RandomForestOptions opt;
      opt.n_estimators = n_estimators;
      opt.max_depth = max_depth;
      ml::RandomForest final_model(opt);
      if (!final_model.Fit(x, y).ok()) return 1;
      std::string name = "rf_e" + std::to_string(n_estimators) + "_d" +
                         std::to_string(max_depth);
      if (!store
               .SaveModel(name, final_model, cv_acc,
                          static_cast<int64_t>(x.rows()))
               .ok()) {
        return 1;
      }
      std::printf("%-18s %8.4f\n", name.c_str(), cv_acc);
    }
  }

  // SQL meta-analysis over the sweep.
  std::printf("\nAll candidates with accuracy >= 0.9 (via SQL):\n%s",
              db.Query("SELECT name, params, accuracy FROM models "
                       "WHERE accuracy >= 0.9 ORDER BY accuracy DESC")
                  .ValueOrDie()
                  ->ToString()
                  .c_str());

  std::string champion = store.BestModelName().ValueOrDie();
  std::printf("\nchampion: %s\n", champion.c_str());

  // Load the champion back from its BLOB and sanity-check it.
  auto model = store.LoadModel(champion).ValueOrDie();
  auto pred = model->Predict(x).ValueOrDie();
  std::printf("champion training-set accuracy: %.4f\n",
              ml::Accuracy(y, pred).ValueOrDie());

  std::printf("\nmodel_management finished OK\n");
  return 0;
}
