/// Out-of-memory datasets (paper §5.1 future work, implemented): score a
/// dataset that is processed strictly chunk-at-a-time. The model is
/// trained in-memory on a sample; prediction then streams over an .h5b
/// file with only one chunk resident at a time, folding the per-precinct
/// aggregation incrementally.
///
/// Usage: ./build/examples/out_of_core_prediction [num_voters]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "io/h5b.h"
#include "io/voter_gen.h"
#include "ml/random_forest.h"
#include "pipeline/voter_pipeline.h"

int main(int argc, char** argv) {
  using namespace mlcs;
  io::VoterDataOptions data;
  data.num_voters = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  data.num_precincts = 500;
  data.num_columns = 32;

  // Stage the "larger than memory" file (here just larger than the chunk).
  auto voters = io::GenerateVoters(data);
  auto precincts = io::GeneratePrecincts(data);
  if (!voters.ok() || !precincts.ok()) return 1;
  const std::string path = "/tmp/mlcs_ooc_voters.h5b";
  io::H5bOptions h5opt;
  h5opt.chunk_rows = 16384;
  if (!io::WriteH5b(*voters.ValueOrDie(), path, h5opt).ok()) return 1;
  std::printf("staged %zu voters into %s (chunks of %zu rows)\n",
              data.num_voters, path.c_str(), h5opt.chunk_rows);

  // Train on an in-memory sample (first chunk's worth of rows).
  auto sample = voters.ValueOrDie()->SliceRows(
      0, std::min<size_t>(h5opt.chunk_rows, data.num_voters));
  auto vid = sample->ColumnByName("voter_id").ValueOrDie();
  // Labels from the true precinct shares via the shared pipeline helper.
  auto joined_dem = Column::Make(TypeId::kInt32);
  auto joined_rep = Column::Make(TypeId::kInt32);
  auto pid = sample->ColumnByName("precinct_id").ValueOrDie();
  auto pdem = precincts.ValueOrDie()->ColumnByName("dem_votes").ValueOrDie();
  auto prep = precincts.ValueOrDie()->ColumnByName("rep_votes").ValueOrDie();
  for (int32_t p : pid->i32_data()) {
    joined_dem->AppendInt32(pdem->i32_data()[p]);
    joined_rep->AppendInt32(prep->i32_data()[p]);
  }
  ColumnPtr labels =
      pipeline::GenerateLabelColumn(*vid, *joined_dem, *joined_rep, 42);

  std::vector<std::string> features;
  for (size_t c = 1; c < sample->num_columns(); ++c) {
    features.push_back(sample->schema().field(c).name);
  }
  auto x = ml::Matrix::FromTable(*sample, features).ValueOrDie();
  ml::RandomForestOptions opt;
  opt.n_estimators = 8;
  opt.max_depth = 10;
  ml::RandomForest forest(opt);
  if (!forest.Fit(x, labels->i32_data()).ok()) return 1;
  std::printf("trained forest on a %zu-row sample\n", x.rows());

  // Stream the full file chunk-at-a-time and fold the aggregate.
  auto reader_or = io::H5bChunkReader::Open(path);
  if (!reader_or.ok()) return 1;
  auto reader = std::move(reader_or).ValueOrDie();
  std::map<int32_t, std::pair<int64_t, int64_t>> per_precinct;  // dem, total
  size_t chunks = 0;
  while (reader.HasNext()) {
    auto chunk_or = reader.NextChunk();
    if (!chunk_or.ok()) {
      std::fprintf(stderr, "chunk read failed: %s\n",
                   chunk_or.status().ToString().c_str());
      return 1;
    }
    auto chunk = chunk_or.ValueOrDie();
    auto cx = ml::Matrix::FromTable(*chunk, features).ValueOrDie();
    auto pred = forest.Predict(cx).ValueOrDie();
    const auto& cpid =
        chunk->ColumnByName("precinct_id").ValueOrDie()->i32_data();
    for (size_t i = 0; i < pred.size(); ++i) {
      auto& [dem, total] = per_precinct[cpid[i]];
      dem += pred[i];
      ++total;
    }
    ++chunks;
  }
  std::printf("streamed %llu rows in %zu chunks\n",
              static_cast<unsigned long long>(reader.rows_read()), chunks);

  // Accuracy of the streamed aggregate vs the generator's true lean.
  double mae = 0;
  for (const auto& [precinct, counts] : per_precinct) {
    double share = static_cast<double>(counts.first) /
                   static_cast<double>(counts.second);
    mae += std::fabs(share - io::PrecinctDemShare(
                                 data.seed, static_cast<size_t>(precinct),
                                 data.num_precincts));
  }
  mae /= static_cast<double>(per_precinct.size());
  std::printf("per-precinct dem-share MAE (streamed): %.4f\n", mae);
  std::printf("\nout_of_core_prediction finished OK\n");
  return 0;
}
