/// Segment-then-specialize: cluster voters into behavioural segments with
/// k-means (in-UDF preprocessing, paper §3), train one specialist model
/// per segment, store all of them in the model catalog, and classify each
/// voter with its segment's specialist — then compare against one global
/// model. This composes the paper's §3 preprocessing story with the §3.3
/// "multiple specialized models" story.
///
/// Usage: ./build/examples/voter_segmentation
#include <cstdio>

#include "io/voter_gen.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/split.h"
#include "modelstore/model_store.h"
#include "pipeline/voter_pipeline.h"
#include "sql/database.h"

int main() {
  using namespace mlcs;

  io::VoterDataOptions data;
  data.num_voters = 30000;
  data.num_precincts = 300;
  data.num_columns = 24;
  auto voters = io::GenerateVoters(data).ValueOrDie();
  auto precincts = io::GeneratePrecincts(data).ValueOrDie();

  // Labels + features via the shared pipeline helpers.
  auto vid = voters->ColumnByName("voter_id").ValueOrDie();
  auto pid = voters->ColumnByName("precinct_id").ValueOrDie();
  auto pdem = precincts->ColumnByName("dem_votes").ValueOrDie();
  auto prep = precincts->ColumnByName("rep_votes").ValueOrDie();
  auto dem = Column::Make(TypeId::kInt32);
  auto rep = Column::Make(TypeId::kInt32);
  for (int32_t p : pid->i32_data()) {
    dem->AppendInt32(pdem->i32_data()[p]);
    rep->AppendInt32(prep->i32_data()[p]);
  }
  ColumnPtr labels = pipeline::GenerateLabelColumn(*vid, *dem, *rep, 7);
  ml::Labels y(labels->i32_data());

  std::vector<std::string> features;
  for (size_t c = 1; c < voters->num_columns(); ++c) {
    features.push_back(voters->schema().field(c).name);
  }
  auto x = ml::Matrix::FromTable(*voters, features).ValueOrDie();

  // 1. Segment with k-means on the demographic features.
  ml::KMeansOptions kopt;
  kopt.k = 4;
  ml::KMeans segments(kopt);
  if (!segments.Fit(x).ok()) return 1;
  auto segment_of = segments.Assign(x).ValueOrDie();
  size_t per_segment[4] = {0, 0, 0, 0};
  for (int32_t s : segment_of) ++per_segment[s];
  std::printf("k-means segments (k=4, %d iterations): sizes",
              segments.iterations_run());
  for (size_t s = 0; s < 4; ++s) std::printf(" %zu", per_segment[s]);
  std::printf("; inertia %.0f\n", segments.inertia());

  // 2. One specialist per segment, persisted in the model catalog.
  Database db;
  modelstore::ModelStore store(&db);
  if (!store.Init().ok()) return 1;
  auto split = ml::TrainTestSplit(x.rows(), 0.5, 7).ValueOrDie();
  std::vector<uint8_t> is_train(x.rows(), 0);
  for (auto i : split.train) is_train[i] = 1;

  std::vector<ml::ModelPtr> specialists(4);
  for (size_t s = 0; s < 4; ++s) {
    std::vector<uint32_t> rows;
    ml::Labels ys;
    for (size_t i = 0; i < x.rows(); ++i) {
      if (static_cast<size_t>(segment_of[i]) == s && is_train[i]) {
        rows.push_back(static_cast<uint32_t>(i));
        ys.push_back(y[i]);
      }
    }
    ml::RandomForestOptions opt;
    opt.n_estimators = 6;
    opt.max_depth = 8;
    auto model = std::make_shared<ml::RandomForest>(opt);
    if (!model->Fit(x.SelectRows(rows), ys).ok()) return 1;
    specialists[s] = model;
    if (!store
             .SaveModel("segment_" + std::to_string(s), *model,
                        /*accuracy=*/0, static_cast<int64_t>(rows.size()))
             .ok()) {
      return 1;
    }
  }
  std::printf("stored %zu specialist models; catalog:\n%s",
              specialists.size(),
              db.Query("SELECT name, trained_rows FROM models ORDER BY name")
                  .ValueOrDie()
                  ->ToString()
                  .c_str());

  // 3. Route each test voter to its segment's specialist.
  ml::Labels routed(x.rows(), 0), y_test;
  std::vector<uint32_t> test_rows;
  for (size_t i = 0; i < x.rows(); ++i) {
    if (!is_train[i]) test_rows.push_back(static_cast<uint32_t>(i));
  }
  ml::Matrix x_test = x.SelectRows(test_rows);
  auto test_segments = segments.Assign(x_test).ValueOrDie();
  ml::Labels routed_pred(test_rows.size());
  for (size_t s = 0; s < 4; ++s) {
    std::vector<uint32_t> seg_rows;
    for (size_t i = 0; i < test_rows.size(); ++i) {
      if (static_cast<size_t>(test_segments[i]) == s) {
        seg_rows.push_back(static_cast<uint32_t>(i));
      }
    }
    if (seg_rows.empty()) continue;
    auto pred = specialists[s]->Predict(x_test.SelectRows(seg_rows));
    if (!pred.ok()) return 1;
    for (size_t i = 0; i < seg_rows.size(); ++i) {
      routed_pred[seg_rows[i]] = pred.ValueOrDie()[i];
    }
  }
  for (auto i : test_rows) y_test.push_back(y[i]);

  // 4. Compare with a single global model of the same total capacity.
  ml::RandomForestOptions gopt;
  gopt.n_estimators = 24;
  gopt.max_depth = 8;
  ml::RandomForest global(gopt);
  ml::Labels y_train;
  for (auto i : split.train) y_train.push_back(y[i]);
  if (!global.Fit(x.SelectRows(split.train), y_train).ok()) return 1;
  auto global_pred = global.Predict(x_test).ValueOrDie();

  std::printf("\nrouted specialists accuracy: %.4f\n",
              ml::Accuracy(y_test, routed_pred).ValueOrDie());
  std::printf("single global model accuracy: %.4f\n",
              ml::Accuracy(y_test, global_pred).ValueOrDie());
  std::printf("\nvoter_segmentation finished OK\n");
  return 0;
}
