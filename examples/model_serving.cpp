/// Online inference serving (the request-path complement to the paper's
/// in-database training): a model trained and stored as a table row is
/// served over the network by the micro-batching InferenceServer, and a
/// client predicts against it with the columnar wire layout.
///
/// The walk-through shows the serving contract end to end — normal
/// predictions, what an unknown model answers, and how explicit
/// backpressure (`overloaded`) looks from the client side.
///
/// Usage: ./build/examples/model_serving
#include <cstdio>
#include <string>
#include <vector>

#include "client/inference_client.h"
#include "common/random.h"
#include "ml/logistic_regression.h"
#include "modelstore/model_store.h"
#include "serve/inference_server.h"
#include "sql/database.h"

namespace {

constexpr size_t kFeatures = 4;

mlcs::ml::Matrix MakeGaussianRows(size_t n, int cls, uint64_t seed) {
  mlcs::Rng rng(seed);
  mlcs::ml::Matrix x(n, kFeatures);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < kFeatures; ++c) {
      x.Set(r, c, rng.NextGaussian() + cls * 2.0);
    }
  }
  return x;
}

}  // namespace

int main() {
  using namespace mlcs;

  // 1. Train a classifier and store it as a row in the model table —
  //    exactly what the training examples do; serving starts from there.
  Database db;
  modelstore::ModelStore store(&db);
  if (!store.Init().ok()) {
    std::fprintf(stderr, "model store init failed\n");
    return 1;
  }
  {
    ml::Matrix x(256, kFeatures);
    ml::Labels y(256);
    Rng rng(11);
    for (size_t r = 0; r < 256; ++r) {
      int cls = static_cast<int>(r % 2);
      for (size_t c = 0; c < kFeatures; ++c) {
        x.Set(r, c, rng.NextGaussian() + cls * 2.0);
      }
      y[r] = cls;
    }
    ml::LogisticRegression model;
    if (!model.Fit(x, y).ok() ||
        !store.SaveModel("churn_lr", model, 0.97, 256).ok()) {
      std::fprintf(stderr, "train/save failed\n");
      return 1;
    }
  }
  std::printf("trained and stored model 'churn_lr'\n");

  // 2. Start the inference server on an ephemeral loopback port. Requests
  //    arriving within the linger window coalesce into one vectorized
  //    Predict call; the bounded queue turns overload into explicit
  //    `overloaded` answers instead of unbounded latency.
  serve::InferenceServer server(&db, &store);
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  std::printf("inference server listening on 127.0.0.1:%u\n", server.port());

  // 3. Predict over the columnar layout (the default — contiguous
  //    per-column doubles, decoded server-side by bulk copy).
  client::InferenceClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  ml::Matrix class1 = MakeGaussianRows(5, 1, 21);
  auto labels = client.Predict("churn_lr", class1);
  if (!labels.ok()) {
    std::fprintf(stderr, "predict failed: %s\n",
                 labels.status().ToString().c_str());
    return 1;
  }
  std::printf("predicted labels for 5 class-1 rows:");
  for (int32_t l : labels.ValueOrDie()) std::printf(" %d", l);
  std::printf("\n");

  // 4. The error surface is part of the protocol: an unknown model is a
  //    `model_not_found` answer, not a dropped connection.
  auto missing = client.Call("no_such_model", class1);
  if (!missing.ok()) {
    std::fprintf(stderr, "call failed: %s\n",
                 missing.status().ToString().c_str());
    return 1;
  }
  std::printf("asking for an unknown model answers: %s (%s)\n",
              serve::ServeCodeToString(missing.ValueOrDie().code),
              missing.ValueOrDie().message.c_str());

  server.Stop();
  auto stats = server.stats();
  std::printf("served %llu ok responses in %llu vectorized batches\n",
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.batches_executed));
  std::printf("model_serving finished OK\n");
  return 0;
}
