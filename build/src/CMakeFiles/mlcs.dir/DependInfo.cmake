
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/client.cc" "src/CMakeFiles/mlcs.dir/client/client.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/client/client.cc.o.d"
  "/root/repo/src/client/net_util.cc" "src/CMakeFiles/mlcs.dir/client/net_util.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/client/net_util.cc.o.d"
  "/root/repo/src/client/protocol.cc" "src/CMakeFiles/mlcs.dir/client/protocol.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/client/protocol.cc.o.d"
  "/root/repo/src/client/server.cc" "src/CMakeFiles/mlcs.dir/client/server.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/client/server.cc.o.d"
  "/root/repo/src/client/sqlite_like.cc" "src/CMakeFiles/mlcs.dir/client/sqlite_like.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/client/sqlite_like.cc.o.d"
  "/root/repo/src/common/byte_buffer.cc" "src/CMakeFiles/mlcs.dir/common/byte_buffer.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/common/byte_buffer.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mlcs.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mlcs.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/mlcs.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/mlcs.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/dataframe/dataframe.cc" "src/CMakeFiles/mlcs.dir/dataframe/dataframe.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/dataframe/dataframe.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/mlcs.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/mlcs.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/mlcs.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/mlcs.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/kernels.cc" "src/CMakeFiles/mlcs.dir/exec/kernels.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/exec/kernels.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/mlcs.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/exec/sort.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/mlcs.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/io/csv.cc.o.d"
  "/root/repo/src/io/h5b.cc" "src/CMakeFiles/mlcs.dir/io/h5b.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/io/h5b.cc.o.d"
  "/root/repo/src/io/npy.cc" "src/CMakeFiles/mlcs.dir/io/npy.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/io/npy.cc.o.d"
  "/root/repo/src/io/voter_gen.cc" "src/CMakeFiles/mlcs.dir/io/voter_gen.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/io/voter_gen.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/mlcs.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/mlcs.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/CMakeFiles/mlcs.dir/ml/knn.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/knn.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/mlcs.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/mlcs.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/mlcs.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/model_common.cc" "src/CMakeFiles/mlcs.dir/ml/model_common.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/model_common.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/mlcs.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/pickle.cc" "src/CMakeFiles/mlcs.dir/ml/pickle.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/pickle.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/mlcs.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/split.cc" "src/CMakeFiles/mlcs.dir/ml/split.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/ml/split.cc.o.d"
  "/root/repo/src/modelstore/ensemble.cc" "src/CMakeFiles/mlcs.dir/modelstore/ensemble.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/modelstore/ensemble.cc.o.d"
  "/root/repo/src/modelstore/model_cache.cc" "src/CMakeFiles/mlcs.dir/modelstore/model_cache.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/modelstore/model_cache.cc.o.d"
  "/root/repo/src/modelstore/model_store.cc" "src/CMakeFiles/mlcs.dir/modelstore/model_store.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/modelstore/model_store.cc.o.d"
  "/root/repo/src/pipeline/voter_pipeline.cc" "src/CMakeFiles/mlcs.dir/pipeline/voter_pipeline.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/pipeline/voter_pipeline.cc.o.d"
  "/root/repo/src/sql/database.cc" "src/CMakeFiles/mlcs.dir/sql/database.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/sql/database.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/CMakeFiles/mlcs.dir/sql/executor.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/sql/executor.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/mlcs.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/mlcs.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/mlcs.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/mlcs.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/mlcs.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/table_io.cc" "src/CMakeFiles/mlcs.dir/storage/table_io.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/storage/table_io.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/mlcs.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/mlcs.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/mlcs.dir/types/value.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/types/value.cc.o.d"
  "/root/repo/src/udf/parallel.cc" "src/CMakeFiles/mlcs.dir/udf/parallel.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/udf/parallel.cc.o.d"
  "/root/repo/src/udf/udf.cc" "src/CMakeFiles/mlcs.dir/udf/udf.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/udf/udf.cc.o.d"
  "/root/repo/src/vscript/vs_builtins.cc" "src/CMakeFiles/mlcs.dir/vscript/vs_builtins.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/vscript/vs_builtins.cc.o.d"
  "/root/repo/src/vscript/vs_interpreter.cc" "src/CMakeFiles/mlcs.dir/vscript/vs_interpreter.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/vscript/vs_interpreter.cc.o.d"
  "/root/repo/src/vscript/vs_lexer.cc" "src/CMakeFiles/mlcs.dir/vscript/vs_lexer.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/vscript/vs_lexer.cc.o.d"
  "/root/repo/src/vscript/vs_parser.cc" "src/CMakeFiles/mlcs.dir/vscript/vs_parser.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/vscript/vs_parser.cc.o.d"
  "/root/repo/src/vscript/vs_value.cc" "src/CMakeFiles/mlcs.dir/vscript/vs_value.cc.o" "gcc" "src/CMakeFiles/mlcs.dir/vscript/vs_value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
