file(REMOVE_RECURSE
  "libmlcs.a"
)
