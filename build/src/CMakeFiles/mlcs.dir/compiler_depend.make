# Empty compiler generated dependencies file for mlcs.
# This may be replaced when dependencies are built.
