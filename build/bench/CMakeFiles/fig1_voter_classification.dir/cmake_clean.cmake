file(REMOVE_RECURSE
  "CMakeFiles/fig1_voter_classification.dir/fig1_voter_classification.cc.o"
  "CMakeFiles/fig1_voter_classification.dir/fig1_voter_classification.cc.o.d"
  "fig1_voter_classification"
  "fig1_voter_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_voter_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
