# Empty compiler generated dependencies file for fig1_voter_classification.
# This may be replaced when dependencies are built.
