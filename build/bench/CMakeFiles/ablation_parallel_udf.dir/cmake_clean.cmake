file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_udf.dir/ablation_parallel_udf.cc.o"
  "CMakeFiles/ablation_parallel_udf.dir/ablation_parallel_udf.cc.o.d"
  "ablation_parallel_udf"
  "ablation_parallel_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
