# Empty compiler generated dependencies file for ablation_parallel_udf.
# This may be replaced when dependencies are built.
