# Empty dependencies file for ablation_udf_vectorization.
# This may be replaced when dependencies are built.
