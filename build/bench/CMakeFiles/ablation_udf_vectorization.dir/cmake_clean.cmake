file(REMOVE_RECURSE
  "CMakeFiles/ablation_udf_vectorization.dir/ablation_udf_vectorization.cc.o"
  "CMakeFiles/ablation_udf_vectorization.dir/ablation_udf_vectorization.cc.o.d"
  "ablation_udf_vectorization"
  "ablation_udf_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_udf_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
