# Empty dependencies file for ablation_tree_splitter.
# This may be replaced when dependencies are built.
