file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_splitter.dir/ablation_tree_splitter.cc.o"
  "CMakeFiles/ablation_tree_splitter.dir/ablation_tree_splitter.cc.o.d"
  "ablation_tree_splitter"
  "ablation_tree_splitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
