file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_serialization.dir/ablation_model_serialization.cc.o"
  "CMakeFiles/ablation_model_serialization.dir/ablation_model_serialization.cc.o.d"
  "ablation_model_serialization"
  "ablation_model_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
