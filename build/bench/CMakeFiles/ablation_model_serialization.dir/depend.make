# Empty dependencies file for ablation_model_serialization.
# This may be replaced when dependencies are built.
