file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_prediction.dir/out_of_core_prediction.cpp.o"
  "CMakeFiles/out_of_core_prediction.dir/out_of_core_prediction.cpp.o.d"
  "out_of_core_prediction"
  "out_of_core_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
