# Empty compiler generated dependencies file for out_of_core_prediction.
# This may be replaced when dependencies are built.
