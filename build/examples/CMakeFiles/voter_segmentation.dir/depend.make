# Empty dependencies file for voter_segmentation.
# This may be replaced when dependencies are built.
