file(REMOVE_RECURSE
  "CMakeFiles/voter_segmentation.dir/voter_segmentation.cpp.o"
  "CMakeFiles/voter_segmentation.dir/voter_segmentation.cpp.o.d"
  "voter_segmentation"
  "voter_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voter_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
