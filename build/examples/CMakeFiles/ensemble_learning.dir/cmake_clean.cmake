file(REMOVE_RECURSE
  "CMakeFiles/ensemble_learning.dir/ensemble_learning.cpp.o"
  "CMakeFiles/ensemble_learning.dir/ensemble_learning.cpp.o.d"
  "ensemble_learning"
  "ensemble_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
