# Empty dependencies file for ensemble_learning.
# This may be replaced when dependencies are built.
