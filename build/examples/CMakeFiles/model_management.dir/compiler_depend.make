# Empty compiler generated dependencies file for model_management.
# This may be replaced when dependencies are built.
