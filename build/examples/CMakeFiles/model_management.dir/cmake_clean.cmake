file(REMOVE_RECURSE
  "CMakeFiles/model_management.dir/model_management.cpp.o"
  "CMakeFiles/model_management.dir/model_management.cpp.o.d"
  "model_management"
  "model_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
