# Empty compiler generated dependencies file for voter_classification.
# This may be replaced when dependencies are built.
