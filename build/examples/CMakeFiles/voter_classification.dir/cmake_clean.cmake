file(REMOVE_RECURSE
  "CMakeFiles/voter_classification.dir/voter_classification.cpp.o"
  "CMakeFiles/voter_classification.dir/voter_classification.cpp.o.d"
  "voter_classification"
  "voter_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voter_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
