# Empty dependencies file for linear_models_test.
# This may be replaced when dependencies are built.
