# Empty compiler generated dependencies file for voter_gen_test.
# This may be replaced when dependencies are built.
