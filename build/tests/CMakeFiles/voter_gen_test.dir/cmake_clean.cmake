file(REMOVE_RECURSE
  "CMakeFiles/voter_gen_test.dir/voter_gen_test.cc.o"
  "CMakeFiles/voter_gen_test.dir/voter_gen_test.cc.o.d"
  "voter_gen_test"
  "voter_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voter_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
