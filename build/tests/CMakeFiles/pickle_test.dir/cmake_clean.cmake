file(REMOVE_RECURSE
  "CMakeFiles/pickle_test.dir/pickle_test.cc.o"
  "CMakeFiles/pickle_test.dir/pickle_test.cc.o.d"
  "pickle_test"
  "pickle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pickle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
