# Empty compiler generated dependencies file for pickle_test.
# This may be replaced when dependencies are built.
