# Empty dependencies file for sql_listings_test.
# This may be replaced when dependencies are built.
