file(REMOVE_RECURSE
  "CMakeFiles/sql_listings_test.dir/sql_listings_test.cc.o"
  "CMakeFiles/sql_listings_test.dir/sql_listings_test.cc.o.d"
  "sql_listings_test"
  "sql_listings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_listings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
