file(REMOVE_RECURSE
  "CMakeFiles/vscript_test.dir/vscript_test.cc.o"
  "CMakeFiles/vscript_test.dir/vscript_test.cc.o.d"
  "vscript_test"
  "vscript_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
