# Empty compiler generated dependencies file for vscript_test.
# This may be replaced when dependencies are built.
