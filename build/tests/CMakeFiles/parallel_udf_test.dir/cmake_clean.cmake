file(REMOVE_RECURSE
  "CMakeFiles/parallel_udf_test.dir/parallel_udf_test.cc.o"
  "CMakeFiles/parallel_udf_test.dir/parallel_udf_test.cc.o.d"
  "parallel_udf_test"
  "parallel_udf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_udf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
