file(REMOVE_RECURSE
  "CMakeFiles/vscript_builtins_test.dir/vscript_builtins_test.cc.o"
  "CMakeFiles/vscript_builtins_test.dir/vscript_builtins_test.cc.o.d"
  "vscript_builtins_test"
  "vscript_builtins_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscript_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
