# Empty compiler generated dependencies file for vscript_builtins_test.
# This may be replaced when dependencies are built.
