file(REMOVE_RECURSE
  "CMakeFiles/npy_test.dir/npy_test.cc.o"
  "CMakeFiles/npy_test.dir/npy_test.cc.o.d"
  "npy_test"
  "npy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
