# Empty dependencies file for npy_test.
# This may be replaced when dependencies are built.
