file(REMOVE_RECURSE
  "CMakeFiles/model_cache_test.dir/model_cache_test.cc.o"
  "CMakeFiles/model_cache_test.dir/model_cache_test.cc.o.d"
  "model_cache_test"
  "model_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
