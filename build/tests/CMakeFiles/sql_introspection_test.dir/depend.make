# Empty dependencies file for sql_introspection_test.
# This may be replaced when dependencies are built.
