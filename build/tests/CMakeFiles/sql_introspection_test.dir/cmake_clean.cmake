file(REMOVE_RECURSE
  "CMakeFiles/sql_introspection_test.dir/sql_introspection_test.cc.o"
  "CMakeFiles/sql_introspection_test.dir/sql_introspection_test.cc.o.d"
  "sql_introspection_test"
  "sql_introspection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_introspection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
