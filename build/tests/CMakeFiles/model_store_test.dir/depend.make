# Empty dependencies file for model_store_test.
# This may be replaced when dependencies are built.
