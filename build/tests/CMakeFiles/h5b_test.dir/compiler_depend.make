# Empty compiler generated dependencies file for h5b_test.
# This may be replaced when dependencies are built.
