file(REMOVE_RECURSE
  "CMakeFiles/h5b_test.dir/h5b_test.cc.o"
  "CMakeFiles/h5b_test.dir/h5b_test.cc.o.d"
  "h5b_test"
  "h5b_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h5b_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
