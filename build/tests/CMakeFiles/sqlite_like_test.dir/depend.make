# Empty dependencies file for sqlite_like_test.
# This may be replaced when dependencies are built.
