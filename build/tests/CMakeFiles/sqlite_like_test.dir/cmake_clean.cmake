file(REMOVE_RECURSE
  "CMakeFiles/sqlite_like_test.dir/sqlite_like_test.cc.o"
  "CMakeFiles/sqlite_like_test.dir/sqlite_like_test.cc.o.d"
  "sqlite_like_test"
  "sqlite_like_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlite_like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
