#!/usr/bin/env bash
# Auto-vectorization gate for the exec hot loops (DESIGN.md §13).
#
# Compiles src/exec/kernels.cc the way the Release build does (g++ -O3)
# with -fopt-info-vec-optimized and asserts that GCC attributes at least
# MLCS_MIN_VECTORIZED_LOOPS "loop vectorized" reports to kernels.cc
# itself. The kernel loops are deliberately flat (typed buffers, no
# per-row virtual calls, branch-free bodies) so the vectorizer can take
# them; this gate catches regressions that reintroduce per-row branches
# or indirect calls. Skips loudly when g++ is unavailable — the opt-info
# format is GCC-specific.
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_VECTORIZED="${MLCS_MIN_VECTORIZED_LOOPS:-20}"
CXX_BIN="${CXX:-g++}"

if ! command -v "$CXX_BIN" >/dev/null 2>&1; then
  echo "check_vectorization: $CXX_BIN not found; SKIPPING vectorization gate"
  exit 0
fi
if ! "$CXX_BIN" --version 2>/dev/null | head -n 1 | grep -qiE 'g\+\+|gcc'; then
  echo "check_vectorization: $CXX_BIN is not GCC; SKIPPING vectorization gate"
  exit 0
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

"$CXX_BIN" -std=c++20 -O3 -Wall -Wextra -fopt-info-vec-optimized \
  -I . -I src -c src/exec/kernels.cc -o "$tmp_dir/kernels.o" \
  2>"$tmp_dir/opt_info.txt" || {
  echo "check_vectorization: FAILED to compile src/exec/kernels.cc"
  cat "$tmp_dir/opt_info.txt"
  exit 1
}

count="$(grep -cE 'kernels\.cc:[0-9]+:[0-9]+: optimized: loop vectorized' \
  "$tmp_dir/opt_info.txt" || true)"

echo "check_vectorization: $count vectorized loops in src/exec/kernels.cc" \
  "(minimum $MIN_VECTORIZED)"
if [ "$count" -lt "$MIN_VECTORIZED" ]; then
  echo "check_vectorization: FAILED — the kernel hot loops stopped" \
    "auto-vectorizing; diff the loop bodies against the flat-buffer idiom"
  grep -E 'kernels\.cc' "$tmp_dir/opt_info.txt" | head -n 40 || true
  exit 1
fi
echo "check_vectorization: OK"
