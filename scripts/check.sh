#!/usr/bin/env bash
# Correctness gate for every change.
#
#   scripts/check.sh --quick   Release build + ctest + lint.py + clang-tidy
#                              (tier-1; the default)
#   scripts/check.sh --full    --quick, then ASan+UBSan and TSan builds each
#                              running the full test suite (tier-2)
#
# clang-tidy is skipped with a notice when not installed (the custom rules
# in tools/lint.py always run). Build trees: build/ (plain), build-asan/,
# build-tsan/ — all git-ignored.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="quick"
case "${1:---quick}" in
  --quick) MODE="quick" ;;
  --full)  MODE="full" ;;
  *) echo "usage: $0 [--quick|--full]" >&2; exit 2 ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

build_and_test() {
  local dir="$1"; shift
  cmake -B "$dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

step "plain build + tests"
build_and_test build

step "repo lint (tools/lint.py)"
python3 tools/lint.py src/ tests/

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # The concurrency- and Status-discipline-critical directories are the
  # minimum bar; widen as runtime allows.
  clang-tidy -p build --quiet \
    src/common/*.cc src/udf/*.cc src/modelstore/*.cc
else
  echo "clang-tidy not installed; skipped (tools/lint.py covers the custom rules)"
fi

if [[ "$MODE" == "full" ]]; then
  step "ASan + UBSan build + tests"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    build_and_test build-asan -DMLCS_SANITIZE=address

  step "TSan build + tests (includes sanitizer_stress_test)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}" \
    build_and_test build-tsan -DMLCS_SANITIZE=thread
fi

step "all checks passed (${MODE})"
