#!/usr/bin/env bash
# Correctness gate for every change.
#
#   scripts/check.sh --quick        Release build + ctest + lint.py +
#                                   clang-tidy + thread-safety analysis
#                                   (tier-1; the default)
#   scripts/check.sh --analyze      Static analysis only, no build: lint.py
#                                   + clang -Wthread-safety over src/.
#                                   Seconds, not minutes — run it on every
#                                   locking change.
#   scripts/check.sh --bench-smoke  --quick, then every bench binary at tiny
#                                   scale; each must exit 0 and write valid
#                                   BENCH_<name>.json
#   scripts/check.sh --full         --quick + bench smoke, then ASan+UBSan
#                                   and TSan builds each running the full
#                                   test suite (tier-2)
#
# clang-tidy and the clang thread-safety pass are skipped with a notice
# when clang is not installed (the custom rules in tools/lint.py always
# run; CI provides a clang runner). Build trees: build/ (plain),
# build-asan/, build-tsan/ — all git-ignored.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="quick"
case "${1:---quick}" in
  --quick)       MODE="quick" ;;
  --analyze)     MODE="analyze" ;;
  --bench-smoke) MODE="bench-smoke" ;;
  --full)        MODE="full" ;;
  *) echo "usage: $0 [--quick|--analyze|--bench-smoke|--full]" >&2; exit 2 ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

build_and_test() {
  local dir="$1"; shift
  cmake -B "$dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_lint() {
  python3 tools/lint.py src/ tests/
}

thread_safety_analysis() {
  # clang's -Wthread-safety checks the MLCS_GUARDED_BY / MLCS_REQUIRES /
  # MLCS_ACQUIRE annotations (common/annotations.h) for real; g++ compiles
  # them away. Syntax-only, so it needs no build tree and runs in seconds.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not installed; thread-safety analysis skipped" \
         "(annotations are inert under g++ — CI runs this on a clang runner)"
    return 0
  fi
  local cc_files
  mapfile -t cc_files < <(find src -name '*.cc' | sort)
  clang++ -std=c++20 -fsyntax-only -Isrc \
    -Wthread-safety -Werror=thread-safety "${cc_files[@]}"
  echo "thread-safety analysis clean (${#cc_files[@]} files)"
}

if [[ "$MODE" == "analyze" ]]; then
  step "repo lint (tools/lint.py)"
  run_lint
  step "clang thread-safety analysis (-Wthread-safety)"
  thread_safety_analysis
  step "all checks passed (analyze)"
  exit 0
fi

step "plain build + tests"
build_and_test build

step "repo lint (tools/lint.py)"
run_lint

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # The concurrency- and Status-discipline-critical directories are the
  # minimum bar; widen as runtime allows. --warnings-as-errors promotes
  # every enabled check so findings actually fail the gate (clang-tidy
  # exits 0 on plain warnings otherwise).
  clang-tidy -p build --quiet --warnings-as-errors='*' \
    src/common/*.cc src/udf/*.cc src/modelstore/*.cc
else
  echo "clang-tidy not installed; skipped (tools/lint.py covers the custom rules)"
fi

step "clang thread-safety analysis (-Wthread-safety)"
thread_safety_analysis

step "auto-vectorization gate (exec/kernels.cc, g++ -fopt-info-vec)"
bash scripts/check_vectorization.sh

assert_metrics_block() {
  # Every BENCH_<name>.json must carry the metrics-registry snapshot
  # ("mlcs_metrics", at top level for the custom harnesses or inside the
  # google-benchmark context block) with at least one series in it, and the
  # snapshot must surface histogram quantiles (.p50) rather than raw
  # bucket rows — a regression there silently degrades every dashboard
  # built on the bench JSON.
  python3 - "$1" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
block = doc.get("mlcs_metrics", doc.get("context", {}).get("mlcs_metrics"))
assert isinstance(block, dict) and block, \
    f"{sys.argv[1]}: missing or empty mlcs_metrics block"
assert any(k.endswith(".p50") for k in block), \
    f"{sys.argv[1]}: mlcs_metrics block has no .p50 quantile series"
assert not any(".le_" in k for k in block), \
    f"{sys.argv[1]}: mlcs_metrics block leaks raw .le_ bucket rows"
PYEOF
}

bench_smoke() {
  # Run every bench binary at tiny scale from a scratch directory; each
  # must exit 0 and leave a parseable BENCH_<name>.json behind (with its
  # mlcs_metrics block). Catches bit-rot in the bench layer without paying
  # full benchmark runtimes.
  local root scratch
  root="$(pwd)"
  scratch="$(mktemp -d /tmp/mlcs-bench-smoke.XXXXXX)"
  trap 'rm -rf "$scratch"' RETURN
  pushd "$scratch" >/dev/null
  local b
  for b in "$root"/build/bench/ablation_*; do
    [[ -x "$b" ]] || continue
    echo "-- $(basename "$b")"
    MLCS_BENCH_MIN_TIME=0.01 \
    MLCS_SERVE_BENCH_REQUESTS=400 MLCS_SERVE_BENCH_CLIENTS=2 \
    MLCS_SERVE_BENCH_STRICT=0 \
    MLCS_OBS_BENCH_QUERIES=12 MLCS_OBS_BENCH_THREADS=2 \
    MLCS_OBS_BENCH_ROWS=2000 MLCS_OBS_BENCH_REPS=2 \
    MLCS_OBS_BENCH_STRICT=0 \
    MLCS_STORAGE_ROWS=2000 MLCS_STORAGE_COLS=16 MLCS_BLOCK_ROWS=256 \
      "$b" >/dev/null
    python3 -m json.tool "BENCH_$(basename "$b").json" >/dev/null
    assert_metrics_block "BENCH_$(basename "$b").json"
  done
  echo "-- fig1_voter_classification"
  MLCS_FIG1_ROWS=2000 MLCS_FIG1_COLS=16 MLCS_FIG1_PRECINCTS=50 \
  MLCS_FIG1_TREES=2 MLCS_FIG1_REPS=1 \
    "$root"/build/bench/fig1_voter_classification >/dev/null
  python3 -m json.tool BENCH_fig1_voter_classification.json >/dev/null
  assert_metrics_block BENCH_fig1_voter_classification.json
  popd >/dev/null
}

if [[ "$MODE" == "bench-smoke" || "$MODE" == "full" ]]; then
  step "bench smoke (tiny scale, JSON validated)"
  bench_smoke
fi

if [[ "$MODE" == "full" ]]; then
  step "ASan + UBSan build + tests"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    build_and_test build-asan -DMLCS_SANITIZE=address

  step "TSan build + tests (includes sanitizer_stress_test)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}" \
    build_and_test build-tsan -DMLCS_SANITIZE=thread
fi

step "all checks passed (${MODE})"
