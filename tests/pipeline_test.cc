/// Integration tests for the voter-classification pipeline (the Figure 1
/// workload): every channel must be runnable and — given identical seeds —
/// produce byte-identical per-precinct aggregate predictions, since they
/// run the same logical pipeline over the same data.
#include "pipeline/voter_pipeline.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include "client/server.h"
#include "exec/sort.h"
#include "io/csv.h"
#include "io/h5b.h"
#include "io/npy.h"
#include "ml/training_source.h"

namespace mlcs::pipeline {
namespace {

PipelineConfig SmallConfig() {
  PipelineConfig config;
  config.data.num_voters = 4000;
  config.data.num_precincts = 40;
  config.data.num_columns = 24;  // scaled-down width for test speed
  config.data.seed = 5;
  config.n_estimators = 4;
  config.max_depth = 8;
  config.seed = 5;
  return config;
}

std::string TempDirFor(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  mkdir(dir.c_str(), 0755);
  return dir;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = SmallConfig();
    voters_ = io::GenerateVoters(config_.data).ValueOrDie();
    precincts_ = io::GeneratePrecincts(config_.data).ValueOrDie();
  }

  void CheckResult(const PipelineResult& result) {
    EXPECT_GT(result.test_rows, 1000u);
    EXPECT_GT(result.total_seconds, 0);
    EXPECT_GE(result.total_seconds, result.load_wrangle_seconds);
    // The model must beat noise: predicted precinct shares track the true
    // lean far better than a coin flip would (~0.17 MAE for this data).
    EXPECT_LT(result.precinct_share_mae, 0.12);
    ASSERT_NE(result.precinct_predictions, nullptr);
    EXPECT_EQ(result.precinct_predictions->num_rows(),
              config_.data.num_precincts);
  }

  PipelineConfig config_;
  TablePtr voters_;
  TablePtr precincts_;
};

TEST_F(PipelineTest, LabelAndSplitAreDeterministic) {
  auto ids = Column::FromInt32({0, 1, 2, 3, 4});
  auto dem = Column::FromInt32({80, 80, 80, 80, 80});
  auto rep = Column::FromInt32({20, 20, 20, 20, 20});
  auto a = GenerateLabelColumn(*ids, *dem, *rep, 7);
  auto b = GenerateLabelColumn(*ids, *dem, *rep, 7);
  EXPECT_TRUE(a->Equals(*b));
  auto c = GenerateLabelColumn(*ids, *dem, *rep, 8);
  EXPECT_FALSE(a->Equals(*c));  // seed-sensitive

  auto m1 = SplitMaskColumn(*ids, 7, 0.5);
  auto m2 = SplitMaskColumn(*ids, 7, 0.5);
  EXPECT_TRUE(m1->Equals(*m2));
}

TEST_F(PipelineTest, LabelFollowsShare) {
  // All-dem precinct → all labels 1; all-rep → all 0.
  std::vector<int32_t> ids(1000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  auto id_col = Column::FromInt32(std::move(ids));
  auto all_dem = GenerateLabelColumn(
      *id_col, *Column::Constant(Value::Int32(100), 1000),
      *Column::Constant(Value::Int32(0), 1000), 1);
  auto all_rep = GenerateLabelColumn(
      *id_col, *Column::Constant(Value::Int32(0), 1000),
      *Column::Constant(Value::Int32(100), 1000), 1);
  int dem_count = 0, rep_count = 0;
  for (size_t i = 0; i < 1000; ++i) {
    dem_count += all_dem->i32_data()[i];
    rep_count += all_rep->i32_data()[i];
  }
  EXPECT_EQ(dem_count, 1000);
  EXPECT_EQ(rep_count, 0);
}

TEST_F(PipelineTest, SplitFractionApproximatelyHonored) {
  std::vector<int32_t> ids(20000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  auto id_col = Column::FromInt32(std::move(ids));
  auto mask = SplitMaskColumn(*id_col, 3, 0.3);
  size_t train = 0;
  for (uint8_t m : mask->bool_data()) train += m;
  EXPECT_NEAR(static_cast<double>(train) / 20000.0, 0.3, 0.02);
}

TEST_F(PipelineTest, InDatabaseChannelWorks) {
  Database db;
  ASSERT_TRUE(LoadVoterData(&db, config_).ok());
  auto result = RunInDatabase(&db, config_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckResult(result.ValueOrDie());
}

TEST_F(PipelineTest, AllChannelsAgreeOnPredictions) {
  // Stage the file-based inputs.
  std::string dir = TempDirFor("pipeline_channels");
  std::string voters_csv = dir + "/voters.csv";
  std::string precincts_csv = dir + "/precincts.csv";
  ASSERT_TRUE(io::WriteCsv(*voters_, voters_csv).ok());
  ASSERT_TRUE(io::WriteCsv(*precincts_, precincts_csv).ok());
  std::string voters_npy = TempDirFor("pipeline_channels/voters_npy");
  std::string precincts_npy = TempDirFor("pipeline_channels/precincts_npy");
  ASSERT_TRUE(io::SaveTableAsNpyDir(*voters_, voters_npy).ok());
  ASSERT_TRUE(io::SaveTableAsNpyDir(*precincts_, precincts_npy).ok());
  std::string voters_h5b = dir + "/voters.h5b";
  std::string precincts_h5b = dir + "/precincts.h5b";
  ASSERT_TRUE(io::WriteH5b(*voters_, voters_h5b).ok());
  ASSERT_TRUE(io::WriteH5b(*precincts_, precincts_h5b).ok());

  // Server-backed channels share one database.
  Database server_db;
  ASSERT_TRUE(LoadVoterData(&server_db, config_).ok());
  ASSERT_TRUE(RegisterVoterUdfs(&server_db).ok());
  client::TableServer server(&server_db);
  ASSERT_TRUE(server.Start(0).ok());

  std::vector<PipelineResult> results;
  {
    Database db;
    ASSERT_TRUE(LoadVoterData(&db, config_).ok());
    auto r = RunInDatabase(&db, config_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).ValueOrDie());
  }
  {
    auto r = RunFromCsv(voters_csv, precincts_csv, config_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).ValueOrDie());
  }
  {
    auto r = RunFromNpyDir(voters_npy, precincts_npy, config_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).ValueOrDie());
  }
  {
    auto r = RunFromH5b(voters_h5b, precincts_h5b, config_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).ValueOrDie());
  }
  for (client::WireProtocol protocol :
       {client::WireProtocol::kPgText, client::WireProtocol::kMyBinary}) {
    auto r = RunFromSocket("127.0.0.1", server.port(), protocol, config_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).ValueOrDie());
  }
  {
    Database db;
    ASSERT_TRUE(LoadVoterData(&db, config_).ok());
    auto r = RunSqliteLike(&db, config_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).ValueOrDie());
  }
  server.Stop();

  ASSERT_EQ(results.size(), 7u);
  for (const auto& result : results) CheckResult(result);

  // Equivalence: identical aggregated predictions across all channels.
  // (Sort by precinct to normalize group emission order.)
  auto normalized = [](const PipelineResult& r) {
    auto sorted = exec::SortTable(*r.precinct_predictions,
                                  {{"precinct_id", false}});
    EXPECT_TRUE(sorted.ok());
    return sorted.ValueOrDie();
  };
  auto reference = normalized(results[0]);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(reference->Equals(*normalized(results[i])))
        << results[i].method << " diverges from " << results[0].method;
  }
}

TEST_F(PipelineTest, FactorizedLabelsMatchJoinedLabels) {
  // Share LUT gathered through precinct codes vs per-row vote columns.
  auto ids = Column::FromInt32({7, 8, 9, 10, 11, 12});
  auto precinct = Column::FromInt32({0, 1, 2, 0, 1, 2});
  auto dem = Column::FromInt32({80, 0, 33, 80, 0, 33});
  auto rep = Column::FromInt32({20, 0, 67, 20, 0, 67});
  std::vector<double> share = {80.0 / (80.0 + 20.0), 0.5,
                               33.0 / (33.0 + 67.0)};
  auto joined = GenerateLabelColumn(*ids, *dem, *rep, 42);
  auto factorized = GenerateLabelColumnFactorized(*ids, *precinct, share, 42);
  EXPECT_TRUE(joined->Equals(*factorized));
}

TEST_F(PipelineTest, FactorizedWrangleMatchesJoinedWrangle) {
  // The in-database channel must produce bit-identical aggregated
  // predictions (and the same registered voter_joined content) whether the
  // wrangle runs factorized (label-share LUT, no join materialization) or
  // through the SQL join.
  auto run = [&](bool factorized) {
    bool prev = ml::SetFactorizedEnabled(factorized);
    Database db;
    EXPECT_TRUE(LoadVoterData(&db, config_).ok());
    auto r = RunInDatabase(&db, config_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    PipelineResult result = std::move(r).ValueOrDie();
    auto joined = db.catalog().GetTable("voter_joined");
    EXPECT_TRUE(joined.ok());
    ml::SetFactorizedEnabled(prev);
    return std::make_pair(std::move(result),
                          joined.ok() ? joined.ValueOrDie() : nullptr);
  };
  auto [fac, fac_joined] = run(true);
  auto [mat, mat_joined] = run(false);
  CheckResult(fac);
  CheckResult(mat);
  ASSERT_NE(fac_joined, nullptr);
  ASSERT_NE(mat_joined, nullptr);
  EXPECT_TRUE(fac_joined->Equals(*mat_joined));
  EXPECT_EQ(fac.test_rows, mat.test_rows);
  EXPECT_EQ(fac.precinct_share_mae, mat.precinct_share_mae);
  auto normalize = [](const PipelineResult& r) {
    return exec::SortTable(*r.precinct_predictions, {{"precinct_id", false}})
        .ValueOrDie();
  };
  EXPECT_TRUE(normalize(fac)->Equals(*normalize(mat)));
}

TEST_F(PipelineTest, WranglingSqlIsValid) {
  Database db;
  ASSERT_TRUE(LoadVoterData(&db, config_).ok());
  ASSERT_TRUE(RegisterVoterUdfs(&db).ok());
  auto r = db.Query(WranglingSql(config_));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto t = r.ValueOrDie();
  EXPECT_EQ(t->num_rows(), config_.data.num_voters);
  EXPECT_TRUE(t->schema().FieldIndex("label").has_value());
  EXPECT_TRUE(t->schema().FieldIndex("is_train").has_value());
}

}  // namespace
}  // namespace mlcs::pipeline
