#include "types/value.h"

#include <gtest/gtest.h>

namespace mlcs {
namespace {

TEST(ValueTest, FactoriesSetTypeAndPayload) {
  EXPECT_EQ(Value::Bool(true).type(), TypeId::kBool);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int32(-5).int32_value(), -5);
  EXPECT_EQ(Value::Int64(1LL << 40).int64_value(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Varchar("hi").string_value(), "hi");
  EXPECT_EQ(Value::Blob("\x01\x02").blob_value(), "\x01\x02");
}

TEST(ValueTest, NullHandling) {
  Value v = Value::MakeNull(TypeId::kDouble);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_FALSE(v.AsDouble().ok());
}

TEST(ValueTest, NumericCoercions) {
  EXPECT_EQ(Value::Int32(7).AsInt64().ValueOrDie(), 7);
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsDouble().ValueOrDie(), 3.0);
  EXPECT_EQ(Value::Double(2.9).AsInt64().ValueOrDie(), 2);
  EXPECT_TRUE(Value::Int32(1).AsBool().ValueOrDie());
  EXPECT_FALSE(Value::Int32(0).AsBool().ValueOrDie());
  EXPECT_EQ(Value::Varchar("12").AsInt64().ValueOrDie(), 12);
  EXPECT_FALSE(Value::Blob("x").AsInt64().ok());
}

TEST(ValueTest, CastPreservesNull) {
  Value v = Value::MakeNull(TypeId::kInt32);
  Value cast = v.CastTo(TypeId::kDouble).ValueOrDie();
  EXPECT_TRUE(cast.is_null());
  EXPECT_EQ(cast.type(), TypeId::kDouble);
}

TEST(ValueTest, CastInt32OverflowDetected) {
  Value v = Value::Int64(1LL << 40);
  auto r = v.CastTo(TypeId::kInt32);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ValueTest, CastStringToNumber) {
  Value v = Value::Varchar("3.5");
  EXPECT_DOUBLE_EQ(v.CastTo(TypeId::kDouble).ValueOrDie().double_value(),
                   3.5);
  EXPECT_FALSE(Value::Varchar("zzz").CastTo(TypeId::kDouble).ok());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int32(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Varchar("abc").ToString(), "abc");
  EXPECT_EQ(Value::Blob(std::string("\x00\xff", 2)).ToString(), "\\x00ff");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int32(1), Value::Int32(1));
  EXPECT_NE(Value::Int32(1), Value::Int32(2));
  EXPECT_NE(Value::Int32(1), Value::Int64(1));  // type-sensitive
  EXPECT_EQ(Value::MakeNull(TypeId::kInt32), Value::MakeNull(TypeId::kInt32));
  EXPECT_NE(Value::MakeNull(TypeId::kInt32), Value::Int32(0));
}

class ValueSerializationTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueSerializationTest, RoundTrips) {
  const Value& v = GetParam();
  ByteWriter w;
  v.Serialize(&w);
  ByteReader r(w.data());
  Value back = Value::Deserialize(&r).ValueOrDie();
  EXPECT_EQ(v, back);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueSerializationTest,
    ::testing::Values(
        Value::Bool(true), Value::Bool(false), Value::Int32(-123),
        Value::Int64(1LL << 50), Value::Double(-0.75),
        Value::Varchar(""), Value::Varchar("hello world"),
        Value::Blob(std::string("\x00\x01\x02", 3)),
        Value::MakeNull(TypeId::kBool), Value::MakeNull(TypeId::kInt32),
        Value::MakeNull(TypeId::kInt64), Value::MakeNull(TypeId::kDouble),
        Value::MakeNull(TypeId::kVarchar), Value::MakeNull(TypeId::kBlob)));

TEST(ValueTest, DeserializeRejectsBadTypeTag) {
  ByteWriter w;
  w.WriteU8(0x7F);
  w.WriteBool(false);
  ByteReader r(w.data());
  EXPECT_FALSE(Value::Deserialize(&r).ok());
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (TypeId t : {TypeId::kBool, TypeId::kInt32, TypeId::kInt64,
                   TypeId::kDouble, TypeId::kVarchar, TypeId::kBlob}) {
    EXPECT_EQ(TypeIdFromString(TypeIdToString(t)).ValueOrDie(), t);
  }
}

TEST(DataTypeTest, Aliases) {
  EXPECT_EQ(TypeIdFromString("int").ValueOrDie(), TypeId::kInt32);
  EXPECT_EQ(TypeIdFromString("TEXT").ValueOrDie(), TypeId::kVarchar);
  EXPECT_EQ(TypeIdFromString("real").ValueOrDie(), TypeId::kDouble);
  EXPECT_EQ(TypeIdFromString("bytea").ValueOrDie(), TypeId::kBlob);
  EXPECT_FALSE(TypeIdFromString("frobnicator").ok());
}

TEST(DataTypeTest, NumericPromotion) {
  EXPECT_EQ(CommonNumericType(TypeId::kInt32, TypeId::kInt32).ValueOrDie(),
            TypeId::kInt32);
  EXPECT_EQ(CommonNumericType(TypeId::kInt32, TypeId::kInt64).ValueOrDie(),
            TypeId::kInt64);
  EXPECT_EQ(CommonNumericType(TypeId::kInt64, TypeId::kDouble).ValueOrDie(),
            TypeId::kDouble);
  EXPECT_EQ(CommonNumericType(TypeId::kBool, TypeId::kBool).ValueOrDie(),
            TypeId::kBool);
  EXPECT_FALSE(CommonNumericType(TypeId::kVarchar, TypeId::kInt32).ok());
}

}  // namespace
}  // namespace mlcs
