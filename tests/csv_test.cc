#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"

namespace mlcs::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TablePtr MixedTable() {
  Schema s;
  s.AddField("id", TypeId::kInt64);
  s.AddField("name", TypeId::kVarchar);
  s.AddField("score", TypeId::kDouble);
  s.AddField("flag", TypeId::kBool);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int64(1), Value::Varchar("plain"),
                            Value::Double(0.5), Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(t->AppendRow({Value::Int64(2), Value::Varchar("has,comma"),
                            Value::Double(-1.25), Value::Bool(false)})
                  .ok());
  EXPECT_TRUE(t->AppendRow({Value::Int64(3), Value::Varchar("has\"quote"),
                            Value::MakeNull(TypeId::kDouble),
                            Value::Bool(true)})
                  .ok());
  return t;
}

TEST(CsvTest, RoundTripWithQuotingAndNulls) {
  std::string path = TempPath("roundtrip.csv");
  auto t = MixedTable();
  ASSERT_TRUE(WriteCsv(*t, path).ok());
  auto back = ReadCsv(path, t->schema()).ValueOrDie();
  ASSERT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->GetValue(1, 1).ValueOrDie(), Value::Varchar("has,comma"));
  EXPECT_EQ(back->GetValue(2, 1).ValueOrDie(), Value::Varchar("has\"quote"));
  EXPECT_TRUE(back->GetValue(2, 2).ValueOrDie().is_null());
  EXPECT_EQ(back->GetValue(0, 3).ValueOrDie(), Value::Bool(true));
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderlessAndCustomDelimiter) {
  std::string path = TempPath("tsv.csv");
  CsvOptions opt;
  opt.delimiter = '\t';
  opt.has_header = false;
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kInt32);
  auto t = Table::Make(s);
  ASSERT_TRUE(t->AppendRow({Value::Int32(1), Value::Int32(2)}).ok());
  ASSERT_TRUE(WriteCsv(*t, path, opt).ok());
  auto back = ReadCsv(path, s, opt).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_EQ(back->GetValue(0, 1).ValueOrDie(), Value::Int32(2));
  std::remove(path.c_str());
}

TEST(CsvTest, TypeInference) {
  std::string path = TempPath("infer.csv");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("i,d,s\n1,1.5,abc\n2,2.5,def\n", f);
  fclose(f);
  auto t = ReadCsvInferred(path).ValueOrDie();
  EXPECT_EQ(t->schema().field(0).type, TypeId::kInt64);
  EXPECT_EQ(t->schema().field(1).type, TypeId::kDouble);
  EXPECT_EQ(t->schema().field(2).type, TypeId::kVarchar);
  EXPECT_EQ(t->num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, FieldCountMismatchReported) {
  std::string path = TempPath("ragged.csv");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("a,b\n1,2\n3\n", f);
  fclose(f);
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kInt32);
  EXPECT_FALSE(ReadCsv(path, s).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, BadNumberReported) {
  std::string path = TempPath("badnum.csv");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("a\nxyz\n", f);
  fclose(f);
  Schema s;
  s.AddField("a", TypeId::kInt32);
  EXPECT_FALSE(ReadCsv(path, s).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReported) {
  Schema s;
  s.AddField("a", TypeId::kInt32);
  EXPECT_FALSE(ReadCsv("/no/such/file.csv", s).ok());
  EXPECT_FALSE(WriteCsv(*Table::Make(s), "/no/such/dir/file.csv").ok());
}

TEST(CsvTest, BlobRejected) {
  Schema s;
  s.AddField("b", TypeId::kBlob);
  auto t = Table::Make(s);
  ASSERT_TRUE(t->AppendRow({Value::Blob("x")}).ok());
  EXPECT_FALSE(WriteCsv(*t, TempPath("blob.csv")).ok());
}

/// Property: random numeric tables round-trip exactly.
TEST(CsvTest, RandomizedNumericRoundTrip) {
  Rng rng(55);
  Schema s;
  s.AddField("i", TypeId::kInt64);
  s.AddField("d", TypeId::kDouble);
  auto t = Table::Make(s);
  for (int r = 0; r < 500; ++r) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(static_cast<int64_t>(
                                  rng.NextU64() >> rng.NextBounded(40))),
                              Value::Double(rng.NextGaussian())})
                    .ok());
  }
  std::string path = TempPath("random.csv");
  ASSERT_TRUE(WriteCsv(*t, path).ok());
  auto back = ReadCsv(path, s).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlcs::io
