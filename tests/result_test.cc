#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mlcs {
namespace {

Result<std::string> MakeString(bool ok) {
  if (!ok) return Status::NotFound("no string for you");
  return std::string("payload");
}

TEST(ResultTest, OkCarriesValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, ErrorCarriesStatus) {
  Result<int> r = Status::IoError("disk on fire");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.status().message(), "disk on fire");
}

TEST(ResultTest, CopyPreservesValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  Result<std::vector<int>> copy = r;
  ASSERT_TRUE(copy.ok());
  ASSERT_TRUE(r.ok());  // source untouched by the copy
  EXPECT_EQ(copy.ValueOrDie(), r.ValueOrDie());
}

TEST(ResultTest, CopyPreservesError) {
  Result<int> r = Status::Internal("boom");
  Result<int> copy = r;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.status(), r.status());
}

TEST(ResultTest, MoveTransfersValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  Result<std::unique_ptr<int>> moved = std::move(r);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved.ValueOrDie(), 9);
}

TEST(ResultTest, RvalueValueOrDieMovesOut) {
  auto r = MakeString(true);
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, MutableValueOrDieAllowsInPlaceEdit) {
  Result<std::string> r = std::string("abc");
  ASSERT_TRUE(r.ok());
  r.ValueOrDie() += "def";
  EXPECT_EQ(r.ValueOrDie(), "abcdef");
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  EXPECT_EQ(MakeString(true).ValueOr("fallback"), "payload");
  EXPECT_EQ(MakeString(false).ValueOr("fallback"), "fallback");
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_DEATH((void)r.ValueOrDie(), "");  // lint:allow(naked-valueordie)
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  // A Result without a value must carry an error; OK is a programming bug.
  EXPECT_DEATH(Result<int>{Status::OK()}, "");
}

TEST(ResultDeathTest, CheckOkAbortsWithLocationAndMessage) {
  EXPECT_DEATH(MLCS_CHECK_OK(Status::IoError("flaky disk")),
               "MLCS_CHECK_OK.*IO error: flaky disk");
}

TEST(ResultTest, CheckOkPassesThroughOk) {
  MLCS_CHECK_OK(Status::OK());  // must not abort
}

Result<int> Double(Result<int> in) {
  MLCS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto bad = Double(Status::ParseError("not a number"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  auto good = Double(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.ValueOrDie(), 42);
}

Status FailWhen(bool fail) {
  if (fail) return Status::OutOfRange("past the end");
  return Status::OK();
}

Status Propagate(bool fail) {
  MLCS_RETURN_IF_ERROR(FailWhen(fail));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagate(false).ok());
  EXPECT_EQ(Propagate(true).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mlcs
