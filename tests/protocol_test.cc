#include "client/protocol.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "client/client.h"
#include "client/net_util.h"
#include "client/server.h"
#include "common/random.h"

namespace mlcs::client {
namespace {

TablePtr MixedTable() {
  Schema s;
  s.AddField("i", TypeId::kInt32);
  s.AddField("l", TypeId::kInt64);
  s.AddField("d", TypeId::kDouble);
  s.AddField("b", TypeId::kBool);
  s.AddField("v", TypeId::kVarchar);
  s.AddField("blob", TypeId::kBlob);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(-1), Value::Int64(1LL << 40),
                            Value::Double(2.5), Value::Bool(true),
                            Value::Varchar("hello"),
                            Value::Blob(std::string("\x01\x02", 2))})
                  .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::MakeNull(TypeId::kInt32),
                    Value::MakeNull(TypeId::kInt64),
                    Value::MakeNull(TypeId::kDouble),
                    Value::MakeNull(TypeId::kBool),
                    Value::MakeNull(TypeId::kVarchar),
                    Value::MakeNull(TypeId::kBlob)})
          .ok());
  return t;
}

class ProtocolRoundTripTest : public ::testing::TestWithParam<WireProtocol> {
};

/// Property: encode → decode is the identity for every protocol. (Note the
/// pg-text protocol is lossless here because FormatDouble is shortest-
/// round-trip, like PostgreSQL's extra_float_digits=3.)
TEST_P(ProtocolRoundTripTest, MixedTableRoundTrips) {
  WireProtocol protocol = GetParam();
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, protocol, 0, t->num_rows(), &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, protocol).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
}

TEST_P(ProtocolRoundTripTest, RandomizedNumericRoundTrip) {
  WireProtocol protocol = GetParam();
  Schema s;
  s.AddField("x", TypeId::kInt64);
  s.AddField("y", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextDouble() < 0.02) {
      ASSERT_TRUE(t->AppendRow({Value::MakeNull(TypeId::kInt64),
                                Value::MakeNull(TypeId::kDouble)})
                      .ok());
    } else {
      ASSERT_TRUE(
          t->AppendRow({Value::Int64(static_cast<int64_t>(rng.NextU64())),
                        Value::Double(rng.NextGaussian())})
              .ok());
    }
  }
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, protocol, 0, t->num_rows(), &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, protocol).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProtocolRoundTripTest,
                         ::testing::Values(WireProtocol::kPgText,
                                           WireProtocol::kMyBinary,
                                           WireProtocol::kColumnar));

TEST(ProtocolTest, TextIsLargerThanBinaryForWideInts) {
  Schema s;
  s.AddField("x", TypeId::kInt64);
  auto t = Table::Make(std::move(s));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        t->AppendRow({Value::Int64(1234567890123456789LL)}).ok());
  }
  ByteWriter text, binary;
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kPgText, 0, 1000, &text).ok());
  ASSERT_TRUE(
      EncodeRows(*t, WireProtocol::kMyBinary, 0, 1000, &binary).ok());
  EXPECT_GT(text.size(), binary.size());
}

/// The columnar block drops the per-row marker and per-row NULL bitmap, so
/// for all-valid fixed-width data it beats the mysql-style binary rows.
TEST(ProtocolTest, ColumnarIsSmallerThanBinaryRows) {
  Schema s;
  s.AddField("x", TypeId::kInt64);
  s.AddField("y", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        t->AppendRow({Value::Int64(i), Value::Double(i * 0.5)}).ok());
  }
  ByteWriter binary, columnar;
  ASSERT_TRUE(
      EncodeRows(*t, WireProtocol::kMyBinary, 0, 1000, &binary).ok());
  ASSERT_TRUE(
      EncodeRows(*t, WireProtocol::kColumnar, 0, 1000, &columnar).ok());
  EXPECT_LT(columnar.size(), binary.size());
}

TEST(ProtocolTest, ColumnarPartialRangeRoundTrips) {
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kColumnar, 1, 1, &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, WireProtocol::kColumnar).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_TRUE(back->GetValue(0, 0).ValueOrDie().is_null());
}

/// Two columnar blocks appended to one result set decode correctly even
/// when the first block introduces NULLs (the bulk fast path must detect
/// the column already carries a validity vector).
TEST(ProtocolTest, ColumnarMultipleBlocksWithNulls) {
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kColumnar, 1, 1, &out).ok());
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kColumnar, 0, 1, &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, WireProtocol::kColumnar).ValueOrDie();
  ASSERT_EQ(back->num_rows(), 2u);
  EXPECT_TRUE(back->GetValue(0, 0).ValueOrDie().is_null());
  EXPECT_EQ(back->GetValue(1, 0).ValueOrDie(), Value::Int32(-1));
}

TEST(ProtocolTest, ColumnarTruncatedBlockRejected) {
  Schema s;
  s.AddField("x", TypeId::kInt64);
  auto t = Table::Make(std::move(s));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(i)}).ok());
  }
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kColumnar, 0, 100, &out).ok());
  ByteReader in(out.data().data(), out.size() / 2);
  EXPECT_FALSE(DecodeResultSet(&in, WireProtocol::kColumnar).ok());
}

/// A block header may declare an absurd row count; the decoder must reject
/// it before sizing any buffer from the wire value.
TEST(ProtocolTest, ColumnarOversizedBlockCountRejected) {
  ByteWriter out;
  out.WriteU16(1);
  out.WriteString("x");
  out.WriteU8(static_cast<uint8_t>(TypeId::kInt64));
  out.WriteU8('B');
  out.WriteU32(0xFFFFFFFFu);  // declared rows far beyond the payload
  out.WriteU8(0);             // no nulls
  ByteReader in(out.data());
  EXPECT_FALSE(DecodeResultSet(&in, WireProtocol::kColumnar).ok());
}

TEST(ProtocolTest, PartialRangeEncoding) {
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kMyBinary, 1, 1, &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, WireProtocol::kMyBinary).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_TRUE(back->GetValue(0, 0).ValueOrDie().is_null());
}

TEST(ProtocolTest, RangeOverflowRejected) {
  auto t = MixedTable();
  ByteWriter out;
  EXPECT_FALSE(EncodeRows(*t, WireProtocol::kPgText, 1, 5, &out).ok());
}

TEST(ProtocolTest, CorruptStreamRejected) {
  ByteWriter out;
  out.WriteU16(1);
  out.WriteString("x");
  out.WriteU8(static_cast<uint8_t>(TypeId::kInt32));
  out.WriteU8('Z');  // bogus marker
  ByteReader in(out.data());
  EXPECT_FALSE(DecodeResultSet(&in, WireProtocol::kPgText).ok());
}

TEST(ProtocolTest, TruncatedStreamRejected) {
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kPgText, 0, 2, &out).ok());
  // No end marker and half the bytes.
  ByteReader in(out.data().data(), out.size() / 2);
  EXPECT_FALSE(DecodeResultSet(&in, WireProtocol::kPgText).ok());
}

// ---------------------------------------------------------------------------
// Negative paths over a real socket: malformed frames must produce clean
// Status errors on the peer that caused them — never a hang, crash, or a
// poisoned server. Each test drives TableServer with raw bytes.
// ---------------------------------------------------------------------------

class MalformedFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE TABLE t (x INTEGER);"
                        "INSERT INTO t VALUES (1), (2);")
                    .ok());
    server_ = std::make_unique<TableServer>(&db_);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override { server_->Stop(); }

  /// Raw client socket, no protocol smarts.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  /// The server must still serve a well-formed client after whatever abuse
  /// the test inflicted — proof one bad peer cannot poison it.
  void ExpectServerStillHealthy() {
    TableClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto r = client.Query("SELECT COUNT(*) FROM t", WireProtocol::kColumnar);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie()->GetValue(0, 0).ValueOrDie(), Value::Int64(2));
  }

  Database db_;
  std::unique_ptr<TableServer> server_;
};

TEST_F(MalformedFrameTest, TruncatedLengthPrefixDisconnect) {
  int fd = RawConnect();
  // Protocol byte plus only 2 of the 4 length bytes, then hang up.
  const uint8_t partial[] = {0, 0x10, 0x00};
  ASSERT_TRUE(net::WriteAll(fd, partial, sizeof(partial)));
  ::close(fd);
  ExpectServerStillHealthy();
}

TEST_F(MalformedFrameTest, OversizedDeclaredLengthAnswered) {
  int fd = RawConnect();
  uint8_t protocol_byte = 0;
  uint32_t absurd_len = 0xF0000000u;  // ~4 GB claimed, nothing sent
  ASSERT_TRUE(net::WriteAll(fd, &protocol_byte, 1));
  ASSERT_TRUE(net::WriteAll(fd, &absurd_len, sizeof(absurd_len)));
  // The server must answer with an error frame (not silently hang up, and
  // certainly not allocate 4 GB).
  uint64_t frame_len = 0;
  ASSERT_TRUE(net::ReadExact(fd, &frame_len, sizeof(frame_len)));
  std::vector<uint8_t> frame(frame_len);
  ASSERT_TRUE(net::ReadExact(fd, frame.data(), frame.size()));
  ByteReader reader(frame);
  EXPECT_EQ(reader.ReadU8().ValueOrDie(), 1);  // error flag
  std::string message = reader.ReadString().ValueOrDie();
  EXPECT_NE(message.find("frame cap"), std::string::npos);
  ::close(fd);
  ExpectServerStillHealthy();
}

TEST_F(MalformedFrameTest, UnknownProtocolByteAnswered) {
  int fd = RawConnect();
  uint8_t protocol_byte = 0x7F;
  std::string sql = "SELECT 1";
  uint32_t sql_len = static_cast<uint32_t>(sql.size());
  ASSERT_TRUE(net::WriteAll(fd, &protocol_byte, 1));
  ASSERT_TRUE(net::WriteAll(fd, &sql_len, sizeof(sql_len)));
  ASSERT_TRUE(net::WriteAll(fd, sql.data(), sql.size()));
  uint64_t frame_len = 0;
  ASSERT_TRUE(net::ReadExact(fd, &frame_len, sizeof(frame_len)));
  std::vector<uint8_t> frame(frame_len);
  ASSERT_TRUE(net::ReadExact(fd, frame.data(), frame.size()));
  ByteReader reader(frame);
  EXPECT_EQ(reader.ReadU8().ValueOrDie(), 1);
  EXPECT_NE(reader.ReadString().ValueOrDie().find("bad protocol"),
            std::string::npos);
  ::close(fd);
  ExpectServerStillHealthy();
}

TEST_F(MalformedFrameTest, MidFrameDisconnect) {
  int fd = RawConnect();
  uint8_t protocol_byte = 1;
  uint32_t sql_len = 1000;  // promise 1000 bytes ...
  ASSERT_TRUE(net::WriteAll(fd, &protocol_byte, 1));
  ASSERT_TRUE(net::WriteAll(fd, &sql_len, sizeof(sql_len)));
  ASSERT_TRUE(net::WriteAll(fd, "SELECT", 6));  // ... deliver 6, vanish
  ::close(fd);
  ExpectServerStillHealthy();
}

/// Regression for the unbounded connection_threads_ growth: after many
/// sequential connections the tracked-thread count must stay O(concurrent
/// connections), not O(total connections ever accepted).
TEST_F(MalformedFrameTest, ConnectionThreadsAreReaped) {
  for (int i = 0; i < 32; ++i) {
    TableClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(
        client.Query("SELECT COUNT(*) FROM t", WireProtocol::kMyBinary)
            .ok());
    client.Disconnect();
  }
  // Each new connection reaps previously finished threads; give the last
  // disconnect a moment to land, then connect once more to trigger a reap.
  TableClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(
      client.Query("SELECT COUNT(*) FROM t", WireProtocol::kMyBinary).ok());
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (server_->tracked_connection_threads() <= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(server_->tracked_connection_threads(), 4u);
}

}  // namespace
}  // namespace mlcs::client
