#include "client/protocol.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mlcs::client {
namespace {

TablePtr MixedTable() {
  Schema s;
  s.AddField("i", TypeId::kInt32);
  s.AddField("l", TypeId::kInt64);
  s.AddField("d", TypeId::kDouble);
  s.AddField("b", TypeId::kBool);
  s.AddField("v", TypeId::kVarchar);
  s.AddField("blob", TypeId::kBlob);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(-1), Value::Int64(1LL << 40),
                            Value::Double(2.5), Value::Bool(true),
                            Value::Varchar("hello"),
                            Value::Blob(std::string("\x01\x02", 2))})
                  .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::MakeNull(TypeId::kInt32),
                    Value::MakeNull(TypeId::kInt64),
                    Value::MakeNull(TypeId::kDouble),
                    Value::MakeNull(TypeId::kBool),
                    Value::MakeNull(TypeId::kVarchar),
                    Value::MakeNull(TypeId::kBlob)})
          .ok());
  return t;
}

class ProtocolRoundTripTest : public ::testing::TestWithParam<WireProtocol> {
};

/// Property: encode → decode is the identity for every protocol. (Note the
/// pg-text protocol is lossless here because FormatDouble is shortest-
/// round-trip, like PostgreSQL's extra_float_digits=3.)
TEST_P(ProtocolRoundTripTest, MixedTableRoundTrips) {
  WireProtocol protocol = GetParam();
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, protocol, 0, t->num_rows(), &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, protocol).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
}

TEST_P(ProtocolRoundTripTest, RandomizedNumericRoundTrip) {
  WireProtocol protocol = GetParam();
  Schema s;
  s.AddField("x", TypeId::kInt64);
  s.AddField("y", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextDouble() < 0.02) {
      ASSERT_TRUE(t->AppendRow({Value::MakeNull(TypeId::kInt64),
                                Value::MakeNull(TypeId::kDouble)})
                      .ok());
    } else {
      ASSERT_TRUE(
          t->AppendRow({Value::Int64(static_cast<int64_t>(rng.NextU64())),
                        Value::Double(rng.NextGaussian())})
              .ok());
    }
  }
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, protocol, 0, t->num_rows(), &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, protocol).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProtocolRoundTripTest,
                         ::testing::Values(WireProtocol::kPgText,
                                           WireProtocol::kMyBinary));

TEST(ProtocolTest, TextIsLargerThanBinaryForWideInts) {
  Schema s;
  s.AddField("x", TypeId::kInt64);
  auto t = Table::Make(std::move(s));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        t->AppendRow({Value::Int64(1234567890123456789LL)}).ok());
  }
  ByteWriter text, binary;
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kPgText, 0, 1000, &text).ok());
  ASSERT_TRUE(
      EncodeRows(*t, WireProtocol::kMyBinary, 0, 1000, &binary).ok());
  EXPECT_GT(text.size(), binary.size());
}

TEST(ProtocolTest, PartialRangeEncoding) {
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kMyBinary, 1, 1, &out).ok());
  EncodeEnd(&out);
  ByteReader in(out.data());
  auto back = DecodeResultSet(&in, WireProtocol::kMyBinary).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_TRUE(back->GetValue(0, 0).ValueOrDie().is_null());
}

TEST(ProtocolTest, RangeOverflowRejected) {
  auto t = MixedTable();
  ByteWriter out;
  EXPECT_FALSE(EncodeRows(*t, WireProtocol::kPgText, 1, 5, &out).ok());
}

TEST(ProtocolTest, CorruptStreamRejected) {
  ByteWriter out;
  out.WriteU16(1);
  out.WriteString("x");
  out.WriteU8(static_cast<uint8_t>(TypeId::kInt32));
  out.WriteU8('Z');  // bogus marker
  ByteReader in(out.data());
  EXPECT_FALSE(DecodeResultSet(&in, WireProtocol::kPgText).ok());
}

TEST(ProtocolTest, TruncatedStreamRejected) {
  auto t = MixedTable();
  ByteWriter out;
  EncodeHeader(t->schema(), &out);
  ASSERT_TRUE(EncodeRows(*t, WireProtocol::kPgText, 0, 2, &out).ok());
  // No end marker and half the bytes.
  ByteReader in(out.data().data(), out.size() / 2);
  EXPECT_FALSE(DecodeResultSet(&in, WireProtocol::kPgText).ok());
}

}  // namespace
}  // namespace mlcs::client
