// Tests for the inference serving subsystem (src/serve/): the bounded
// admission queue, the request/response wire protocol in both layouts, and
// the full server — micro-batching, admission control, deadlines, and
// drain-then-stop shutdown — over real sockets.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "client/inference_client.h"
#include "client/net_util.h"
#include "common/random.h"
#include "ml/logistic_regression.h"
#include "modelstore/model_cache.h"
#include "modelstore/model_store.h"
#include "serve/bounded_queue.h"
#include "serve/inference_server.h"
#include "serve/serve_protocol.h"
#include "sql/database.h"

namespace mlcs::serve {
namespace {

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.PopWait().value(), 1);
  EXPECT_TRUE(q.TryPush(3));  // space again
}

TEST(BoundedQueueTest, CloseRejectsPushesButDrains) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_FALSE(q.TryPush(3));
  // Drain-then-stop: queued items survive Close.
  EXPECT_EQ(q.PopWait().value(), 1);
  EXPECT_EQ(q.PopWait().value(), 2);
  EXPECT_FALSE(q.PopWait().has_value());  // closed and empty
}

TEST(BoundedQueueTest, PopUntilTimesOut) {
  BoundedQueue<int> q(4);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_FALSE(q.PopUntil(deadline).has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&q] {
    EXPECT_FALSE(q.PopWait().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 200;
  std::atomic<int> accepted{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.TryPush(i)) std::this_thread::yield();
        accepted.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (q.PopWait().has_value()) popped.fetch_add(1);
    });
  }
  for (int p = 0; p < 3; ++p) threads[p].join();
  q.Close();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(accepted.load(), 3 * kPerProducer);
  EXPECT_EQ(popped.load(), 3 * kPerProducer);
}

// ---------------------------------------------------------------------------
// Serve wire protocol
// ---------------------------------------------------------------------------

ml::Matrix TestMatrix(size_t rows, size_t cols) {
  ml::Matrix x(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      x.Set(r, c, static_cast<double>(r) * 10 + static_cast<double>(c));
    }
  }
  return x;
}

class ServeProtocolTest : public ::testing::TestWithParam<Layout> {};

TEST_P(ServeProtocolTest, RequestRoundTrips) {
  PredictRequest request;
  request.request_id = 77;
  request.deadline_ms = 250;
  request.model_name = "voter_lr";
  request.features = TestMatrix(5, 3);
  ByteWriter out;
  EncodePredictRequest(request, GetParam(), &out);
  ByteReader in(out.data());
  auto back = DecodePredictRequest(&in).ValueOrDie();
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.deadline_ms, 250u);
  EXPECT_EQ(back.model_name, "voter_lr");
  ASSERT_EQ(back.features.rows(), 5u);
  ASSERT_EQ(back.features.cols(), 3u);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(back.features.At(r, c), request.features.At(r, c));
    }
  }
  EXPECT_TRUE(in.AtEnd());
}

TEST_P(ServeProtocolTest, TruncatedPayloadRejectedBeforeAllocation) {
  PredictRequest request;
  request.request_id = 1;
  request.model_name = "m";
  request.features = TestMatrix(8, 2);
  ByteWriter out;
  EncodePredictRequest(request, GetParam(), &out);
  // Half the frame: the declared 8x2 payload is not present.
  ByteReader in(out.data().data(), out.size() / 2);
  auto result = DecodePredictRequest(&in);
  ASSERT_FALSE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(Layouts, ServeProtocolTest,
                         ::testing::Values(Layout::kRowMajor,
                                           Layout::kColumnar));

TEST(ServeProtocolTest2, ColumnarFrameIsIdenticalSizeButCheaperToDecode) {
  // Both layouts carry the same doubles; the columnar one simply lands in
  // matrix order. Sizes match — the win is the decode path, not bytes.
  PredictRequest request;
  request.model_name = "m";
  request.features = TestMatrix(16, 4);
  ByteWriter row_major, columnar;
  EncodePredictRequest(request, Layout::kRowMajor, &row_major);
  EncodePredictRequest(request, Layout::kColumnar, &columnar);
  EXPECT_EQ(row_major.size(), columnar.size());
}

TEST(ServeProtocolTest2, OversizedRowCountRejected) {
  ByteWriter out;
  out.WriteU8('P');
  out.WriteU64(9);
  out.WriteU32(0);
  out.WriteString("m");
  out.WriteU8(0);                    // row-major
  out.WriteU32(kMaxRequestRows + 1); // rows above cap
  out.WriteU16(1);
  ByteReader in(out.data());
  auto result = DecodePredictRequest(&in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cap"), std::string::npos);
}

TEST(ServeProtocolTest2, UnknownLayoutByteRejected) {
  ByteWriter out;
  out.WriteU8('P');
  out.WriteU64(9);
  out.WriteU32(0);
  out.WriteString("m");
  out.WriteU8(9);  // bogus layout
  ByteReader in(out.data());
  EXPECT_FALSE(DecodePredictRequest(&in).ok());
}

TEST(ServeProtocolTest2, PeekRequestIdSurvivesGarbage) {
  ByteWriter out;
  out.WriteU8('P');
  out.WriteU64(424242);
  out.WriteU32(0);
  // Truncated right after the id: full decode fails, peek still works.
  ByteReader in(out.data());
  EXPECT_FALSE(DecodePredictRequest(&in).ok());
  EXPECT_EQ(PeekRequestId(out.data().data(), out.size()), 424242u);
  uint8_t junk[3] = {1, 2, 3};
  EXPECT_EQ(PeekRequestId(junk, sizeof(junk)), 0u);
}

TEST(ServeProtocolTest2, ResponseRoundTripsOkAndError) {
  PredictResponse ok;
  ok.request_id = 5;
  ok.code = ServeCode::kOk;
  ok.labels = {1, 0, 2, 1};
  ByteWriter out;
  EncodePredictResponse(ok, &out);
  ByteReader in(out.data());
  auto back = DecodePredictResponse(&in).ValueOrDie();
  EXPECT_EQ(back.request_id, 5u);
  EXPECT_EQ(back.labels, ok.labels);

  PredictResponse err;
  err.request_id = 6;
  err.code = ServeCode::kOverloaded;
  err.message = "queue full";
  ByteWriter out2;
  EncodePredictResponse(err, &out2);
  ByteReader in2(out2.data());
  auto back2 = DecodePredictResponse(&in2).ValueOrDie();
  EXPECT_EQ(back2.code, ServeCode::kOverloaded);
  EXPECT_EQ(back2.message, "queue full");
  EXPECT_FALSE(ServeCodeToStatus(back2.code, back2.message).ok());
}

// ---------------------------------------------------------------------------
// End-to-end server
// ---------------------------------------------------------------------------

/// Fits a small two-class logistic regression and returns the matrix the
/// tests predict on plus the labels the fitted model itself produces (the
/// server must agree with a direct local Predict).
class InferenceServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<modelstore::ModelStore>(&db_);
    ASSERT_TRUE(store_->Init().ok());
    Rng rng(7);
    ml::Matrix train(64, 2);
    ml::Labels labels(64);
    for (size_t r = 0; r < 64; ++r) {
      int cls = static_cast<int>(r % 2);
      train.Set(r, 0, rng.NextGaussian() + cls * 4.0);
      train.Set(r, 1, rng.NextGaussian() - cls * 4.0);
      labels[r] = cls;
    }
    ml::LogisticRegression model{ml::LogisticRegressionOptions{}};
    ASSERT_TRUE(model.Fit(train, labels).ok());
    ASSERT_TRUE(store_->SaveModel("m", model, 0.99, 64).ok());
    query_ = TestQueryMatrix(12);
    expected_ = model.Predict(query_).ValueOrDie();
    cache_ = std::make_unique<modelstore::ModelCache>(4);
  }

  static ml::Matrix TestQueryMatrix(size_t rows) {
    Rng rng(21);
    ml::Matrix x(rows, 2);
    for (size_t r = 0; r < rows; ++r) {
      int cls = static_cast<int>(r % 2);
      x.Set(r, 0, rng.NextGaussian() + cls * 4.0);
      x.Set(r, 1, rng.NextGaussian() - cls * 4.0);
    }
    return x;
  }

  std::unique_ptr<InferenceServer> MakeServer(InferenceServerOptions opts) {
    if (opts.model_cache == nullptr) opts.model_cache = cache_.get();
    auto server =
        std::make_unique<InferenceServer>(&db_, store_.get(), opts);
    EXPECT_TRUE(server->Start(0).ok());
    EXPECT_GT(server->port(), 0);
    return server;
  }

  Database db_;
  std::unique_ptr<modelstore::ModelStore> store_;
  std::unique_ptr<modelstore::ModelCache> cache_;
  ml::Matrix query_;
  ml::Labels expected_;
};

TEST_F(InferenceServerTest, PredictsOverBothLayouts) {
  auto server = MakeServer({});
  for (Layout layout : {Layout::kRowMajor, Layout::kColumnar}) {
    client::InferenceClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    client::InferenceCallOptions opts;
    opts.layout = layout;
    auto labels = client.Predict("m", query_, opts).ValueOrDie();
    EXPECT_EQ(labels, expected_) << LayoutToString(layout);
  }
  EXPECT_EQ(server->stats().responses_ok, 2u);
  // The per-instance counters mirror into the global registry (DESIGN.md
  // §10): the serving series must be visible on the one snapshot path.
  uint64_t global_ok = obs::MetricsRegistry::Global()
                           .GetCounter("mlcs.serve.responses_ok")
                           ->Value();
  EXPECT_GE(global_ok, 2u);
}

TEST_F(InferenceServerTest, MetricsAndTraceExportFrames) {
  auto server = MakeServer({});
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  // A predict first, so the scrape reflects real serving work.
  ASSERT_TRUE(client.Predict("m", query_).ok());

  auto metrics = client.FetchMetricsText();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.ValueOrDie().find("# TYPE "), std::string::npos);
  EXPECT_NE(metrics.ValueOrDie().find("mlcs_serve_responses_ok"),
            std::string::npos);

  auto trace = client.FetchChromeTrace(0);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace.ValueOrDie().find("{\"traceEvents\":["), 0u);

  // Export frames interleave with predicts on one connection.
  EXPECT_EQ(client.Predict("m", query_).ValueOrDie(), expected_);
}

TEST_F(InferenceServerTest, UnknownModelAnswersModelNotFound) {
  auto server = MakeServer({});
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  auto response = client.Call("no_such_model", query_).ValueOrDie();
  EXPECT_EQ(response.code, ServeCode::kModelNotFound);
}

TEST_F(InferenceServerTest, MalformedFrameAnswersBadRequest) {
  auto server = MakeServer({});
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  // Hand-build a frame whose body is garbage but carries a request id.
  ByteWriter body;
  body.WriteU8('P');
  body.WriteU64(31337);
  ASSERT_TRUE(WriteFrame(client.fd(), body).ok());
  auto response = client.Receive().ValueOrDie();
  EXPECT_EQ(response.code, ServeCode::kBadRequest);
  EXPECT_EQ(response.request_id, 31337u);
  // The same connection still serves well-formed requests.
  auto labels = client.Predict("m", query_).ValueOrDie();
  EXPECT_EQ(labels, expected_);
  EXPECT_EQ(server->stats().rejected_bad_request, 1u);
}

TEST_F(InferenceServerTest, WrongFeatureCountAnswersBadRequest) {
  auto server = MakeServer({});
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  auto response = client.Call("m", TestMatrix(3, 7)).ValueOrDie();
  EXPECT_EQ(response.code, ServeCode::kBadRequest);
}

TEST_F(InferenceServerTest, MicroBatcherCoalescesConcurrentRequests) {
  // Hold every batch until the admission queue has all requests, so one
  // batch must carry all of them.
  constexpr int kRequests = 6;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  InferenceServerOptions opts;
  opts.batch_linger = std::chrono::microseconds(200000);
  opts.test_batch_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  auto server = MakeServer(opts);

  std::vector<std::thread> threads;
  std::atomic<int> correct{0};
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([this, &server, &correct] {
      client::InferenceClient client;
      if (!client.Connect("127.0.0.1", server->port()).ok()) return;
      auto labels = client.Predict("m", query_);
      if (labels.ok() && labels.ValueOrDie() == expected_) {
        correct.fetch_add(1);
      }
    });
  }
  // Wait until all requests are queued, then release the batcher. The
  // first request may already be held by the batch thread, so the queue
  // holds at least kRequests - 1.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    if (server->stats().requests_accepted >= kRequests) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (auto& t : threads) t.join();
  EXPECT_EQ(correct.load(), kRequests);
  auto stats = server->stats();
  EXPECT_EQ(stats.responses_ok, static_cast<uint64_t>(kRequests));
  // Coalescing happened: far fewer batches than requests, and at least one
  // batch carried several requests.
  EXPECT_LT(stats.batches_executed, stats.batched_requests);
  EXPECT_GE(stats.peak_batch_requests, 2u);
}

TEST_F(InferenceServerTest, OverloadAnswersOverloadedWithBoundedQueue) {
  // Queue capacity 2 and a batcher frozen by the hook: the first request
  // is held by the batcher, two sit in the queue, every further request
  // must be answered kOverloaded immediately.
  std::mutex mu;
  std::condition_variable cv;
  bool held = false;
  bool release = false;
  InferenceServerOptions opts;
  opts.max_queue_requests = 2;
  opts.test_batch_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    held = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto server = MakeServer(opts);

  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  constexpr int kTotal = 8;
  // First request; wait until the batcher has taken it and is frozen, so
  // the admissions below are deterministic: 2 queued, the rest rejected.
  ASSERT_TRUE(client.Send("m", query_).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return held; });
  }
  for (int i = 1; i < kTotal; ++i) {
    ASSERT_TRUE(client.Send("m", query_).ok());
  }
  // The rejections are sent synchronously by the I/O thread, so they come
  // back while the batcher is still frozen.
  int overloaded = 0;
  std::vector<serve::PredictResponse> early;
  for (int i = 0; i < kTotal - 3; ++i) {
    early.push_back(client.Receive().ValueOrDie());
  }
  for (const auto& r : early) {
    ASSERT_EQ(r.code, ServeCode::kOverloaded) << r.request_id;
    ++overloaded;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // The held request plus the two queued ones now complete.
  int ok = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = client.Receive().ValueOrDie();
    EXPECT_EQ(r.code, ServeCode::kOk) << r.request_id;
    if (r.code == ServeCode::kOk) ++ok;
  }
  EXPECT_EQ(overloaded, kTotal - 3);
  EXPECT_EQ(ok, 3);
  auto stats = server->stats();
  EXPECT_EQ(stats.rejected_overload, static_cast<uint64_t>(kTotal - 3));
  EXPECT_LE(stats.peak_queue_depth, 2u);  // the admission bound held
}

TEST_F(InferenceServerTest, ExpiredDeadlineAnswersDeadlineExceeded) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  InferenceServerOptions opts;
  opts.test_batch_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  auto server = MakeServer(opts);
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  client::InferenceCallOptions call;
  call.deadline_ms = 1;  // expires while the batcher is frozen
  ASSERT_TRUE(client.Send("m", query_, call).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  auto response = client.Receive().ValueOrDie();
  EXPECT_EQ(response.code, ServeCode::kDeadlineExceeded);
  EXPECT_EQ(server->stats().expired_deadline, 1u);
}

TEST_F(InferenceServerTest, UnbatchedModeStillAnswersEverything) {
  InferenceServerOptions opts;
  opts.batching_enabled = false;
  auto server = MakeServer(opts);
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  for (int i = 0; i < 5; ++i) {
    auto labels = client.Predict("m", query_).ValueOrDie();
    EXPECT_EQ(labels, expected_);
  }
  auto stats = server->stats();
  EXPECT_EQ(stats.responses_ok, 5u);
  // No coalescing in the baseline: one batch per request.
  EXPECT_EQ(stats.batches_executed, 5u);
}

TEST_F(InferenceServerTest, DrainThenStopAnswersQueuedRequests) {
  // Freeze the batcher, queue requests, then Stop() from another thread:
  // every queued request must still be answered kOk (drained), and the
  // responses arrive even though the server is shutting down.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool held = false;
  InferenceServerOptions opts;
  opts.batch_linger = std::chrono::microseconds(0);
  opts.test_batch_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    held = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto server = MakeServer(opts);
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  constexpr int kQueued = 4;
  for (int i = 0; i < kQueued; ++i) {
    ASSERT_TRUE(client.Send("m", query_).ok());
  }
  // Wait until the batcher holds the first batch and the rest are queued.
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return held; });
  }
  for (int attempt = 0; attempt < 1000; ++attempt) {
    if (server->stats().requests_accepted >= kQueued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::thread stopper([&server] { server->Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  stopper.join();
  int ok = 0;
  for (int i = 0; i < kQueued; ++i) {
    auto r = client.Receive();
    if (r.ok() && r.ValueOrDie().code == ServeCode::kOk) ++ok;
  }
  EXPECT_EQ(ok, kQueued);
  EXPECT_FALSE(server->running());
}

TEST_F(InferenceServerTest, RequestsAfterDrainAnswerShuttingDown) {
  // A frame that arrives while the server drains is answered with
  // kShuttingDown, not silently dropped. Freeze the batcher so Stop()
  // stays in its drain phase while the probe request arrives.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  InferenceServerOptions opts;
  opts.test_batch_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  auto server = MakeServer(opts);
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(client.Send("m", query_).ok());  // occupies the batcher
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread stopper([&server] { server->Stop(); });
  // Wait until draining has begun (Stop closes the listen socket first).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(client.Send("m", query_).ok());
  auto response = client.Receive().ValueOrDie();
  EXPECT_EQ(response.code, ServeCode::kShuttingDown);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  stopper.join();
  // The held request was still answered during the drain.
  auto drained = client.Receive().ValueOrDie();
  EXPECT_EQ(drained.code, ServeCode::kOk);
  EXPECT_GE(server->stats().rejected_shutdown, 1u);
}

TEST_F(InferenceServerTest, MidFrameClientDisconnectIsHarmless) {
  auto server = MakeServer({});
  {
    client::InferenceClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    // A length prefix promising a frame that never comes.
    uint32_t len = 100;
    ASSERT_TRUE(
        client::net::WriteAll(client.fd(), &len, sizeof(len)));
    client.Disconnect();
  }
  // Server still healthy for the next client.
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  EXPECT_EQ(client.Predict("m", query_).ValueOrDie(), expected_);
}

TEST_F(InferenceServerTest, OversizedFrameClosesOffendingConnection) {
  auto server = MakeServer({});
  client::InferenceClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", server->port()).ok());
  uint32_t absurd = kMaxFrameBytes + 1;
  ASSERT_TRUE(client::net::WriteAll(bad.fd(), &absurd, sizeof(absurd)));
  auto response = bad.Receive().ValueOrDie();
  EXPECT_EQ(response.code, ServeCode::kBadRequest);
  // After the error response the server hangs up on the bad client.
  EXPECT_FALSE(bad.Receive().ok());
  // Other clients are unaffected.
  client::InferenceClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server->port()).ok());
  EXPECT_EQ(good.Predict("m", query_).ValueOrDie(), expected_);
}

TEST_F(InferenceServerTest, StopIsIdempotentAndRestartable) {
  auto server = MakeServer({});
  server->Stop();
  server->Stop();
  EXPECT_FALSE(server->running());
  ASSERT_TRUE(server->Start(0).ok());
  client::InferenceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  EXPECT_EQ(client.Predict("m", query_).ValueOrDie(), expected_);
  server->Stop();
}

}  // namespace
}  // namespace mlcs::serve
