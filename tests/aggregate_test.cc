#include "exec/aggregate.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "exec/sort.h"

namespace mlcs::exec {
namespace {

TablePtr VotesTable() {
  Schema s;
  s.AddField("precinct", TypeId::kInt32);
  s.AddField("party", TypeId::kVarchar);
  s.AddField("votes", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(
      t->AppendRow({Value::Int32(1), Value::Varchar("D"), Value::Int32(10)})
          .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::Int32(1), Value::Varchar("R"), Value::Int32(5)})
          .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::Int32(2), Value::Varchar("D"), Value::Int32(7)})
          .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::Int32(1), Value::Varchar("D"), Value::Int32(3)})
          .ok());
  return t;
}

TEST(AggregateTest, GlobalAggregates) {
  auto t = VotesTable();
  auto out = HashGroupBy(*t, {},
                         {{AggOp::kCountStar, "", "n"},
                          {AggOp::kSum, "votes", "total"},
                          {AggOp::kAvg, "votes", "mean"},
                          {AggOp::kMin, "votes", "lo"},
                          {AggOp::kMax, "votes", "hi"}})
                 .ValueOrDie();
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->GetValue(0, 0).ValueOrDie(), Value::Int64(4));
  EXPECT_EQ(out->GetValue(0, 1).ValueOrDie(), Value::Int64(25));
  EXPECT_DOUBLE_EQ(out->GetValue(0, 2).ValueOrDie().double_value(), 6.25);
  EXPECT_EQ(out->GetValue(0, 3).ValueOrDie(), Value::Int32(3));
  EXPECT_EQ(out->GetValue(0, 4).ValueOrDie(), Value::Int32(10));
}

TEST(AggregateTest, GroupBySingleKey) {
  auto t = VotesTable();
  auto out = HashGroupBy(*t, {"precinct"},
                         {{AggOp::kSum, "votes", "total"}})
                 .ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2u);
  std::map<int32_t, int64_t> got;
  for (size_t i = 0; i < 2; ++i) {
    got[out->column(0)->i32_data()[i]] = out->column(1)->i64_data()[i];
  }
  EXPECT_EQ(got[1], 18);
  EXPECT_EQ(got[2], 7);
}

TEST(AggregateTest, GroupByMultiKey) {
  auto t = VotesTable();
  auto out = HashGroupBy(*t, {"precinct", "party"},
                         {{AggOp::kCountStar, "", "n"}})
                 .ValueOrDie();
  EXPECT_EQ(out->num_rows(), 3u);  // (1,D), (1,R), (2,D)
}

TEST(AggregateTest, FirstSeenGroupOrder) {
  auto t = VotesTable();
  auto out =
      HashGroupBy(*t, {"precinct"}, {{AggOp::kCountStar, "", "n"}})
          .ValueOrDie();
  EXPECT_EQ(out->column(0)->i32_data()[0], 1);
  EXPECT_EQ(out->column(0)->i32_data()[1], 2);
}

TEST(AggregateTest, CountSkipsNullsCountStarDoesNot) {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  ASSERT_TRUE(t->AppendRow({Value::Int32(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::MakeNull(TypeId::kInt32)}).ok());
  auto out = HashGroupBy(*t, {},
                         {{AggOp::kCountStar, "", "all"},
                          {AggOp::kCount, "x", "nonnull"}})
                 .ValueOrDie();
  EXPECT_EQ(out->GetValue(0, 0).ValueOrDie(), Value::Int64(2));
  EXPECT_EQ(out->GetValue(0, 1).ValueOrDie(), Value::Int64(1));
}

TEST(AggregateTest, AllNullGroupYieldsNullSum) {
  Schema s;
  s.AddField("g", TypeId::kInt32);
  s.AddField("x", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  ASSERT_TRUE(t->AppendRow({Value::Int32(1), Value::MakeNull(TypeId::kInt32)})
                  .ok());
  auto out =
      HashGroupBy(*t, {"g"}, {{AggOp::kSum, "x", "s"}}).ValueOrDie();
  EXPECT_TRUE(out->GetValue(0, 1).ValueOrDie().is_null());
}

TEST(AggregateTest, VarcharMinMax) {
  auto t = VotesTable();
  auto out = HashGroupBy(*t, {},
                         {{AggOp::kMin, "party", "lo"},
                          {AggOp::kMax, "party", "hi"}})
                 .ValueOrDie();
  EXPECT_EQ(out->GetValue(0, 0).ValueOrDie(), Value::Varchar("D"));
  EXPECT_EQ(out->GetValue(0, 1).ValueOrDie(), Value::Varchar("R"));
}

TEST(AggregateTest, DoubleSumStaysDouble) {
  Schema s;
  s.AddField("x", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  ASSERT_TRUE(t->AppendRow({Value::Double(0.5)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Double(0.25)}).ok());
  auto out = HashGroupBy(*t, {}, {{AggOp::kSum, "x", "s"}}).ValueOrDie();
  EXPECT_EQ(out->schema().field(0).type, TypeId::kDouble);
  EXPECT_DOUBLE_EQ(out->GetValue(0, 0).ValueOrDie().double_value(), 0.75);
}

TEST(AggregateTest, SumOnVarcharRejected) {
  auto t = VotesTable();
  EXPECT_FALSE(HashGroupBy(*t, {}, {{AggOp::kSum, "party", "s"}}).ok());
}

TEST(AggregateTest, AggOpFromName) {
  EXPECT_EQ(AggOpFromName("COUNT", true).ValueOrDie(), AggOp::kCountStar);
  EXPECT_EQ(AggOpFromName("count", false).ValueOrDie(), AggOp::kCount);
  EXPECT_EQ(AggOpFromName("Sum", false).ValueOrDie(), AggOp::kSum);
  EXPECT_FALSE(AggOpFromName("sum", true).ok());
  EXPECT_FALSE(AggOpFromName("median", false).ok());
}

/// Property: group-by sums match a std::map oracle on random data.
TEST(AggregateTest, RandomizedAgainstMapOracle) {
  Rng rng(31);
  Schema s;
  s.AddField("g", TypeId::kInt32);
  s.AddField("x", TypeId::kInt64);
  auto t = Table::Make(std::move(s));
  std::map<int32_t, std::pair<int64_t, int64_t>> oracle;  // g -> (count,sum)
  for (int i = 0; i < 5000; ++i) {
    int32_t g = static_cast<int32_t>(rng.NextBounded(97));
    int64_t x = rng.NextInt(-100, 100);
    ASSERT_TRUE(t->AppendRow({Value::Int32(g), Value::Int64(x)}).ok());
    oracle[g].first += 1;
    oracle[g].second += x;
  }
  auto out = HashGroupBy(*t, {"g"},
                         {{AggOp::kCountStar, "", "n"},
                          {AggOp::kSum, "x", "s"}})
                 .ValueOrDie();
  ASSERT_EQ(out->num_rows(), oracle.size());
  for (size_t i = 0; i < out->num_rows(); ++i) {
    int32_t g = out->column(0)->i32_data()[i];
    EXPECT_EQ(out->column(1)->i64_data()[i], oracle[g].first);
    EXPECT_EQ(out->column(2)->i64_data()[i], oracle[g].second);
  }
}

}  // namespace
}  // namespace mlcs::exec
