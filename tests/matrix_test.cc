#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlcs::ml {
namespace {

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  m.Set(1, 0, 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(MatrixTest, FromColumnsConvertsNumericTypes) {
  std::vector<ColumnPtr> cols = {Column::FromInt32({1, 2, 3}),
                                 Column::FromDouble({0.5, 1.5, 2.5}),
                                 Column::FromBool({1, 0, 1})};
  Matrix m = Matrix::FromColumns(cols).ValueOrDie();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 1.5);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
}

TEST(MatrixTest, FromColumnsRejectsStrings) {
  std::vector<ColumnPtr> cols = {Column::FromStrings({"a"})};
  EXPECT_FALSE(Matrix::FromColumns(cols).ok());
}

TEST(MatrixTest, NullsBecomeNaN) {
  Column col(TypeId::kInt32);
  col.AppendInt32(1);
  col.AppendNull();
  Matrix m = Matrix::FromColumns({std::make_shared<Column>(col)})
                 .ValueOrDie();
  EXPECT_TRUE(std::isnan(m.At(1, 0)));
}

TEST(MatrixTest, FromTableByFeatureNames) {
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  ASSERT_TRUE(t->AppendRow({Value::Int32(1), Value::Double(9.0)}).ok());
  Matrix m = Matrix::FromTable(*t, {"b"}).ValueOrDie();
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 9.0);
  EXPECT_FALSE(Matrix::FromTable(*t, {"zzz"}).ok());
}

TEST(MatrixTest, AddColumnLengthChecked) {
  Matrix m;
  ASSERT_TRUE(m.AddColumn({1.0, 2.0}).ok());
  EXPECT_FALSE(m.AddColumn({1.0}).ok());
  ASSERT_TRUE(m.AddColumn({3.0, 4.0}).ok());
  EXPECT_EQ(m.cols(), 2u);
}

TEST(MatrixTest, SelectRows) {
  Matrix m(4, 1);
  for (size_t r = 0; r < 4; ++r) m.Set(r, 0, static_cast<double>(r));
  Matrix sel = m.SelectRows({3, 1});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel.At(1, 0), 1.0);
}

}  // namespace
}  // namespace mlcs::ml
