#include "modelstore/ensemble.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"

namespace mlcs::modelstore {
namespace {

/// Two specialists: model A is trained only on region x<0, model B only on
/// x>0. Individually each is weak on the other half; highest-confidence
/// selection should recover most of the combined signal (paper §3.3).
class EnsembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    x_ = ml::Matrix(800, 2);
    y_.resize(800);
    for (size_t i = 0; i < 800; ++i) {
      double a = rng.NextDouble() * 10 - 5;
      double b = rng.NextDouble() * 10 - 5;
      x_.Set(i, 0, a);
      x_.Set(i, 1, b);
      // Different rule per half-space.
      y_[i] = a < 0 ? (b > 1 ? 1 : 0) : (b < -1 ? 1 : 0);
    }
  }

  ml::Matrix x_;
  ml::Labels y_;
};

TEST_F(EnsembleTest, MajorityVoteAggregates) {
  std::vector<ml::ModelPtr> models;
  for (uint64_t seed : {1u, 2u, 3u}) {
    ml::DecisionTreeOptions opt;
    opt.seed = seed;
    opt.max_features = 1;
    auto tree = std::make_shared<ml::DecisionTree>(opt);
    ASSERT_TRUE(tree->Fit(x_, y_).ok());
    models.push_back(tree);
  }
  auto vote = PredictMajorityVote(models, x_).ValueOrDie();
  EXPECT_GT(ml::Accuracy(y_, vote).ValueOrDie(), 0.8);
}

TEST_F(EnsembleTest, HighestConfidenceBeatsWeakSpecialists) {
  // Train one specialist per half-space. Each specialist also sees a thin
  // sample of the foreign half so its (depth-limited) leaves are impure
  // there — i.e. its confidence is calibrated: high at home, low abroad.
  // That's the paper's §3.3 setting: pick the model that is most
  // confident for each row.
  std::vector<uint32_t> left_rows, right_rows;
  Rng rng(4);
  for (size_t i = 0; i < x_.rows(); ++i) {
    bool left = x_.At(i, 0) < 0;
    if (left || rng.NextDouble() < 0.15) {
      left_rows.push_back(static_cast<uint32_t>(i));
    }
    if (!left || rng.NextDouble() < 0.15) {
      right_rows.push_back(static_cast<uint32_t>(i));
    }
  }
  ml::Matrix xl = x_.SelectRows(left_rows), xr = x_.SelectRows(right_rows);
  ml::Labels yl, yr;
  for (auto i : left_rows) yl.push_back(y_[i]);
  for (auto i : right_rows) yr.push_back(y_[i]);

  ml::DecisionTreeOptions depth_limited;
  depth_limited.max_depth = 4;
  auto left_model = std::make_shared<ml::DecisionTree>(depth_limited);
  auto right_model = std::make_shared<ml::DecisionTree>(depth_limited);
  ASSERT_TRUE(left_model->Fit(xl, yl).ok());
  ASSERT_TRUE(right_model->Fit(xr, yr).ok());
  std::vector<ml::ModelPtr> models = {left_model, right_model};

  auto combined = PredictHighestConfidence(models, x_).ValueOrDie();
  double acc_combined = ml::Accuracy(y_, combined).ValueOrDie();
  double acc_left =
      ml::Accuracy(y_, left_model->Predict(x_).ValueOrDie()).ValueOrDie();
  double acc_right =
      ml::Accuracy(y_, right_model->Predict(x_).ValueOrDie()).ValueOrDie();
  EXPECT_GT(acc_combined, 0.7);
  // The ensemble should not be worse than the better single specialist by
  // more than noise.
  EXPECT_GE(acc_combined + 0.05, std::max(acc_left, acc_right));
}

TEST_F(EnsembleTest, WinningModelPerRowIndexesValid) {
  auto a = std::make_shared<ml::NaiveBayes>();
  auto b = std::make_shared<ml::LogisticRegression>();
  ASSERT_TRUE(a->Fit(x_, y_).ok());
  ASSERT_TRUE(b->Fit(x_, y_).ok());
  auto winners =
      WinningModelPerRow({a, b}, x_).ValueOrDie();
  ASSERT_EQ(winners.size(), x_.rows());
  for (size_t w : winners) EXPECT_LT(w, 2u);
}

TEST_F(EnsembleTest, ValidationErrors) {
  EXPECT_FALSE(PredictMajorityVote({}, x_).ok());
  auto unfitted = std::make_shared<ml::NaiveBayes>();
  EXPECT_FALSE(PredictHighestConfidence({unfitted}, x_).ok());
  std::vector<ml::ModelPtr> with_null = {nullptr};
  EXPECT_FALSE(PredictMajorityVote(with_null, x_).ok());
}

TEST_F(EnsembleTest, SingleModelEnsembleEqualsModel) {
  auto tree = std::make_shared<ml::DecisionTree>();
  ASSERT_TRUE(tree->Fit(x_, y_).ok());
  auto direct = tree->Predict(x_).ValueOrDie();
  EXPECT_EQ(PredictMajorityVote({tree}, x_).ValueOrDie(), direct);
  EXPECT_EQ(PredictHighestConfidence({tree}, x_).ValueOrDie(), direct);
}

}  // namespace
}  // namespace mlcs::modelstore
