#include "modelstore/model_cache.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "ml/naive_bayes.h"
#include "ml/pickle.h"
#include "pipeline/voter_pipeline.h"
#include "sql/database.h"

namespace mlcs::modelstore {
namespace {

std::string FittedBlob(uint64_t seed) {
  Rng rng(seed);
  ml::Matrix x(100, 2);
  ml::Labels y(100);
  for (size_t i = 0; i < 100; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    x.Set(i, 0, cls * 3.0 + rng.NextGaussian());
    x.Set(i, 1, cls * 3.0 + rng.NextGaussian());
    y[i] = cls;
  }
  ml::NaiveBayes nb;
  EXPECT_TRUE(nb.Fit(x, y).ok());
  return ml::pickle::Dumps(nb);
}

TEST(ModelCacheTest, HitReturnsSameObject) {
  ModelCache cache(4);
  std::string blob = FittedBlob(1);
  auto a = cache.Get(blob).ValueOrDie();
  auto b = cache.Get(blob).ValueOrDie();
  EXPECT_EQ(a.get(), b.get());  // identical snapshot, no re-deserialize
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ModelCacheTest, DifferentBlobsAreDistinct) {
  ModelCache cache(4);
  auto a = cache.Get(FittedBlob(1)).ValueOrDie();
  auto b = cache.Get(FittedBlob(2)).ValueOrDie();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ModelCacheTest, LruEviction) {
  ModelCache cache(2);
  std::string b1 = FittedBlob(1), b2 = FittedBlob(2), b3 = FittedBlob(3);
  (void)cache.Get(b1).ValueOrDie();
  (void)cache.Get(b2).ValueOrDie();
  (void)cache.Get(b1).ValueOrDie();  // b1 now most recent
  (void)cache.Get(b3).ValueOrDie();  // evicts b2
  EXPECT_EQ(cache.size(), 2u);
  uint64_t misses_before = cache.misses();
  (void)cache.Get(b1).ValueOrDie();  // still cached
  EXPECT_EQ(cache.misses(), misses_before);
  (void)cache.Get(b2).ValueOrDie();  // was evicted → miss
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(ModelCacheTest, GarbageBytesReported) {
  ModelCache cache(2);
  EXPECT_FALSE(cache.Get("not a model").ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ModelCacheTest, ClearResets) {
  ModelCache cache(4);
  (void)cache.Get(FittedBlob(1)).ValueOrDie();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ModelCacheTest, ThreadSafeGets) {
  ModelCache cache(4);
  std::string blob = FittedBlob(7);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (!cache.Get(blob).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ModelCacheTest, CachedSqlPredictMatchesFresh) {
  // End-to-end: the cached UDF (§5.1 optimization) must agree with the
  // Listing-2 deserialize-per-call UDF.
  pipeline::PipelineConfig config;
  config.data.num_voters = 2000;
  config.data.num_precincts = 20;
  config.data.num_columns = 12;
  Database db;
  ASSERT_TRUE(pipeline::LoadVoterData(&db, config).ok());
  ASSERT_TRUE(pipeline::RegisterVoterUdfs(&db).ok());
  ASSERT_TRUE(
      db.Query("CREATE TABLE m AS SELECT * FROM train_voter_rf(4, 6, 1, "
               "(SELECT precinct_id, age, "
               "gen_label(voter_id, 60, 40, 1) AS label FROM voters JOIN "
               "precincts ON precinct_id = precinct_id))")
          .ok());
  auto fresh = db.Query(
      "SELECT predict_voter_rf((SELECT classifier FROM m), precinct_id, "
      "age) AS p FROM voters");
  auto cached = db.Query(
      "SELECT predict_voter_rf_cached((SELECT classifier FROM m), "
      "precinct_id, age) AS p FROM voters");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_TRUE(fresh.ValueOrDie()->Equals(*cached.ValueOrDie()));
  // Run again: the second cached call must be a hit.
  uint64_t hits_before = ModelCache::Global().hits();
  ASSERT_TRUE(db.Query("SELECT predict_voter_rf_cached((SELECT classifier "
                       "FROM m), precinct_id, age) FROM voters")
                  .ok());
  EXPECT_GT(ModelCache::Global().hits(), hits_before);
}

}  // namespace
}  // namespace mlcs::modelstore
