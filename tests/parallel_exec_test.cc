/// Serial-vs-parallel parity for the morselized relational operators.
///
/// The engine's determinism invariant (common/parallel_for.h): morsel
/// boundaries depend only on (row count, morsel_rows), never on the thread
/// count, and every operator merges per-morsel partials in morsel order.
/// Consequence: output — including floating-point aggregates and stable
/// sort order — is bit-identical at every degree of parallelism. These
/// tests pin that down by running each operator under a one-morsel serial
/// reference policy and under small-morsel policies on 2- and 7-thread
/// pools, over sizes chosen to straddle morsel boundaries, and requiring
/// exact Column/Table equality (nulls included).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/random.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/kernels.h"
#include "exec/sort.h"

namespace mlcs::exec {
namespace {

/// Small enough that the 10000-row input splits into ~40 morsels, and that
/// the aggregate's internally widened morsels (16x this) still split it.
constexpr size_t kTestMorselRows = 256;

ThreadPool& PoolOf(size_t n) {
  static ThreadPool* pool1 = new ThreadPool(1);
  static ThreadPool* pool2 = new ThreadPool(2);
  static ThreadPool* pool7 = new ThreadPool(7);
  switch (n) {
    case 1:
      return *pool1;
    case 2:
      return *pool2;
    default:
      return *pool7;
  }
}

/// One morsel spanning any test-sized input, executed inline on the caller:
/// the serial reference path.
MorselPolicy SerialPolicy() {
  MorselPolicy policy;
  policy.pool = &PoolOf(1);
  policy.morsel_rows = size_t{1} << 30;
  return policy;
}

MorselPolicy ParallelPolicy(size_t threads) {
  MorselPolicy policy;
  policy.pool = &PoolOf(threads);
  policy.morsel_rows = kTestMorselRows;
  return policy;
}

/// The same morsel plan as ParallelPolicy but executed inline on one
/// thread. This is the reference the determinism invariant is stated
/// against: fixed morsel width, varying thread count. (Comparing against
/// a *different* width is only valid for operators with no accumulation
/// order — floating-point aggregate partials legitimately round
/// differently when the morsel grouping changes.)
MorselPolicy OneThreadPolicy() { return ParallelPolicy(1); }

const std::vector<size_t>& TestSizes() {
  // 0 and 1 (degenerate), 3 (sub-morsel), then one-off-each-side of the
  // element-wise morsel boundary (256) and of the aggregate's scaled
  // boundary (4096), plus a many-morsel size.
  static const std::vector<size_t> sizes = {0,    1,    3,    255,  256,
                                            257,  4095, 4096, 4097, 10000};
  return sizes;
}

const std::vector<size_t>& ThreadGrid() {
  static const std::vector<size_t> threads = {2, 7};
  return threads;
}

/// (key i32 nullable, votes i64, weight f64 nullable, name varchar) —
/// deterministic per size, with duplicate keys and periodic NULLs.
TablePtr MakeFacts(size_t n) {
  Rng rng(1000 + n);
  Schema s;
  s.AddField("key", TypeId::kInt32);
  s.AddField("votes", TypeId::kInt64);
  s.AddField("weight", TypeId::kDouble);
  s.AddField("name", TypeId::kVarchar);
  auto t = Table::Make(std::move(s));
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      t->column(0)->AppendNull();
    } else {
      t->column(0)->AppendInt32(static_cast<int32_t>(rng.NextBounded(50)));
    }
    t->column(1)->AppendInt64(rng.NextInt(-1000, 1000));
    if (i % 11 == 5) {
      t->column(2)->AppendNull();
    } else {
      t->column(2)->AppendDouble(rng.NextDouble());
    }
    t->column(3)->AppendString(std::string(1 + i % 3, 'a' + i % 26));
  }
  return t;
}

/// (key i32, attr i32) with two rows per even key — duplicate build keys
/// exercise the join's deterministic chain order.
TablePtr MakeDimension() {
  Schema s;
  s.AddField("key", TypeId::kInt32);
  s.AddField("attr", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  for (int32_t k = 0; k < 50; ++k) {
    EXPECT_TRUE(
        t->AppendRow({Value::Int32(k), Value::Int32(k * 10)}).ok());
    if (k % 2 == 0) {
      EXPECT_TRUE(
          t->AppendRow({Value::Int32(k), Value::Int32(k * 10 + 1)}).ok());
    }
  }
  return t;
}

ColumnPtr MakeMask(size_t n) {
  Rng rng(2000 + n);
  auto mask = Column::Make(TypeId::kBool);
  for (size_t i = 0; i < n; ++i) {
    if (i % 13 == 6) {
      mask->AppendNull();  // NULL predicate must drop the row everywhere
    } else {
      mask->AppendBool(rng.NextBounded(2) == 1);
    }
  }
  return mask;
}

TEST(ParallelExecTest, BinaryKernelParity) {
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    auto serial = BinaryKernel(BinOpKind::kMul, *t->column(1), *t->column(2),
                               SerialPolicy());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : ThreadGrid()) {
      auto par = BinaryKernel(BinOpKind::kMul, *t->column(1), *t->column(2),
                              ParallelPolicy(threads));
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelExecTest, BinaryKernelBroadcastParity) {
  // Length-1 operand broadcasts against every morsel of the long side.
  auto scalar = Column::FromDouble({2.5});
  for (size_t n : {size_t{257}, size_t{10000}}) {
    auto t = MakeFacts(n);
    auto serial = BinaryKernel(BinOpKind::kAdd, *t->column(2), *scalar,
                               SerialPolicy());
    ASSERT_TRUE(serial.ok());
    for (size_t threads : ThreadGrid()) {
      auto par = BinaryKernel(BinOpKind::kAdd, *t->column(2), *scalar,
                              ParallelPolicy(threads));
      ASSERT_TRUE(par.ok());
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie())) << n;
    }
  }
}

TEST(ParallelExecTest, UnaryKernelParity) {
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    auto serial = UnaryKernel(UnOpKind::kNeg, *t->column(2), SerialPolicy());
    ASSERT_TRUE(serial.ok());
    for (size_t threads : ThreadGrid()) {
      auto par =
          UnaryKernel(UnOpKind::kNeg, *t->column(2), ParallelPolicy(threads));
      ASSERT_TRUE(par.ok());
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelExecTest, FilterParity) {
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    auto mask = MakeMask(n);
    auto serial = FilterTable(*t, *mask, SerialPolicy());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : ThreadGrid()) {
      auto par = FilterTable(*t, *mask, ParallelPolicy(threads));
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelExecTest, HashJoinParity) {
  auto dim = MakeDimension();
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    for (JoinType type : {JoinType::kInner, JoinType::kLeft}) {
      auto serial =
          HashJoin(*t, *dim, {"key"}, {"key"}, type, SerialPolicy());
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (size_t threads : ThreadGrid()) {
        auto par =
            HashJoin(*t, *dim, {"key"}, {"key"}, type, ParallelPolicy(threads));
        ASSERT_TRUE(par.ok()) << par.status().ToString();
        EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
            << "n=" << n << " threads=" << threads
            << " type=" << (type == JoinType::kInner ? "inner" : "left");
      }
    }
  }
}

TEST(ParallelExecTest, AggregateParity) {
  // Doubles summed in per-morsel partials merged in morsel order must be
  // bit-identical to the serial result, not merely close; VARCHAR MIN/MAX
  // and nullable inputs ride along. Group order (first-seen) must match too.
  std::vector<AggSpec> aggs = {{AggOp::kCountStar, "", "n"},
                               {AggOp::kSum, "weight", "wsum"},
                               {AggOp::kAvg, "weight", "wavg"},
                               {AggOp::kStdDev, "weight", "wsd"},
                               {AggOp::kMin, "votes", "vmin"},
                               {AggOp::kMax, "votes", "vmax"},
                               {AggOp::kMin, "name", "nmin"},
                               {AggOp::kMax, "name", "nmax"},
                               {AggOp::kCount, "weight", "wn"}};
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    auto serial = HashGroupBy(*t, {"key"}, aggs, OneThreadPolicy());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : ThreadGrid()) {
      auto par = HashGroupBy(*t, {"key"}, aggs, ParallelPolicy(threads));
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelExecTest, GlobalAggregateParity) {
  // Empty GROUP BY takes the single-group path: one row out, partials
  // still merged per morsel.
  std::vector<AggSpec> aggs = {{AggOp::kSum, "weight", "wsum"},
                               {AggOp::kCountStar, "", "n"}};
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    auto serial = HashGroupBy(*t, {}, aggs, OneThreadPolicy());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : ThreadGrid()) {
      auto par = HashGroupBy(*t, {}, aggs, ParallelPolicy(threads));
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelExecTest, SortParity) {
  // Stable multi-key sort: duplicate (key, votes) pairs make stability
  // observable, and the stable permutation is unique, so run-sort + binary
  // merge must reproduce the serial order exactly.
  std::vector<SortKey> keys = {{"key", false}, {"votes", true}};
  for (size_t n : TestSizes()) {
    auto t = MakeFacts(n);
    auto serial = SortTable(*t, keys, SerialPolicy());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : ThreadGrid()) {
      auto par = SortTable(*t, keys, ParallelPolicy(threads));
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_TRUE(serial.ValueOrDie()->Equals(*par.ValueOrDie()))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelExecTest, SingleThreadPoolMatchesSerialReference) {
  // nthreads == 1 with small morsels runs the morselized path inline; it
  // must still agree with the one-morsel reference (and with itself).
  MorselPolicy one_thread;
  one_thread.pool = &PoolOf(1);
  one_thread.morsel_rows = kTestMorselRows;
  auto t = MakeFacts(4097);
  auto mask = MakeMask(4097);
  auto serial = FilterTable(*t, *mask, SerialPolicy());
  auto inline_morsels = FilterTable(*t, *mask, one_thread);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(inline_morsels.ok());
  EXPECT_TRUE(serial.ValueOrDie()->Equals(*inline_morsels.ValueOrDie()));
}

TEST(ParallelExecTest, ParallelMorselsErrorPropagation) {
  MorselPolicy policy = ParallelPolicy(7);
  // 40 morsels; morsel 11 fails. The call must surface a failure (the
  // first one recorded) and later morsels may be cancelled — but the count
  // of executed morsels never exceeds the total.
  std::atomic<size_t> executed{0};
  Status st = ParallelMorsels(policy, 10000,
                              [&](size_t m, size_t begin, size_t end) {
                                EXPECT_LT(begin, end);
                                executed.fetch_add(1);
                                if (m == 11) {
                                  return Status::Internal("morsel 11 failed");
                                }
                                return Status::OK();
                              });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_LE(executed.load(), NumMorsels(policy, 10000));
}

TEST(ParallelExecTest, ParallelItemsErrorPropagation) {
  MorselPolicy policy = ParallelPolicy(2);
  Status st = ParallelItems(policy, 17, [&](size_t i) {
    if (i == 5) return Status::InvalidArgument("item 5 rejected");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ParallelExecTest, MorselBoundariesIgnoreThreadCount) {
  // The determinism invariant itself: boundaries recorded at 7 threads
  // must be exactly the fixed-width split, independent of scheduling.
  MorselPolicy policy = ParallelPolicy(7);
  constexpr size_t kCount = 4097;
  size_t morsels = NumMorsels(policy, kCount);
  std::vector<std::pair<size_t, size_t>> bounds(morsels);
  Status st = ParallelMorsels(policy, kCount,
                              [&](size_t m, size_t begin, size_t end) {
                                bounds[m] = {begin, end};
                                return Status::OK();
                              });
  ASSERT_TRUE(st.ok());
  for (size_t m = 0; m < morsels; ++m) {
    EXPECT_EQ(bounds[m].first, m * kTestMorselRows);
    EXPECT_EQ(bounds[m].second,
              std::min(kCount, (m + 1) * kTestMorselRows));
  }
}

}  // namespace
}  // namespace mlcs::exec
