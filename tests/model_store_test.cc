#include "modelstore/model_store.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace mlcs::modelstore {
namespace {

void MakeBlobs(size_t n, ml::Matrix* x, ml::Labels* y) {
  Rng rng(11);
  *x = ml::Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    x->Set(i, 0, cls * 4.0 + rng.NextGaussian());
    x->Set(i, 1, cls * 4.0 + rng.NextGaussian());
    (*y)[i] = cls;
  }
}

class ModelStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<ModelStore>(&db_);
    ASSERT_TRUE(store_->Init().ok());
    MakeBlobs(200, &x_, &y_);
  }

  ml::ModelPtr FittedForest(int trees) {
    ml::RandomForestOptions opt;
    opt.n_estimators = trees;
    auto m = std::make_shared<ml::RandomForest>(opt);
    EXPECT_TRUE(m->Fit(x_, y_).ok());
    return m;
  }

  Database db_;
  std::unique_ptr<ModelStore> store_;
  ml::Matrix x_;
  ml::Labels y_;
};

TEST_F(ModelStoreTest, SaveLoadRoundTrip) {
  auto model = FittedForest(4);
  ASSERT_TRUE(store_->SaveModel("rf", *model, 0.93, 200).ok());
  auto back = store_->LoadModel("rf").ValueOrDie();
  EXPECT_EQ(back->type(), ml::ModelType::kRandomForest);
  EXPECT_EQ(back->Predict(x_).ValueOrDie(), model->Predict(x_).ValueOrDie());
}

TEST_F(ModelStoreTest, MetadataRecorded) {
  ASSERT_TRUE(store_->SaveModel("rf", *FittedForest(4), 0.93, 200).ok());
  auto info = store_->GetInfo("rf").ValueOrDie();
  EXPECT_EQ(info.algorithm, "random_forest");
  EXPECT_DOUBLE_EQ(info.accuracy, 0.93);
  EXPECT_EQ(info.trained_rows, 200);
  EXPECT_NE(info.params.find("n_estimators=4"), std::string::npos);
}

TEST_F(ModelStoreTest, SaveReplacesExisting) {
  ASSERT_TRUE(store_->SaveModel("m", *FittedForest(2), 0.8, 100).ok());
  ASSERT_TRUE(store_->SaveModel("m", *FittedForest(6), 0.9, 150).ok());
  EXPECT_EQ(store_->ListModels().ValueOrDie().size(), 1u);
  EXPECT_DOUBLE_EQ(store_->GetInfo("m").ValueOrDie().accuracy, 0.9);
}

TEST_F(ModelStoreTest, BestModelByAccuracy) {
  ASSERT_TRUE(store_->SaveModel("weak", *FittedForest(1), 0.7, 100).ok());
  ASSERT_TRUE(store_->SaveModel("strong", *FittedForest(8), 0.95, 100).ok());
  ml::NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x_, y_).ok());
  ASSERT_TRUE(store_->SaveModel("nb", nb, 0.85, 100).ok());
  EXPECT_EQ(store_->BestModelName().ValueOrDie(), "strong");
  EXPECT_EQ(store_->ListModels().ValueOrDie().size(), 3u);
}

TEST_F(ModelStoreTest, DeleteModel) {
  ASSERT_TRUE(store_->SaveModel("m", *FittedForest(2), 0.8, 100).ok());
  ASSERT_TRUE(store_->DeleteModel("m").ok());
  EXPECT_FALSE(store_->LoadModel("m").ok());
  EXPECT_FALSE(store_->DeleteModel("m").ok());
}

TEST_F(ModelStoreTest, UnfittedModelRejected) {
  ml::NaiveBayes unfitted;
  EXPECT_FALSE(store_->SaveModel("u", unfitted, 0, 0).ok());
}

TEST_F(ModelStoreTest, MissingModelReported) {
  EXPECT_FALSE(store_->LoadModel("ghost").ok());
  EXPECT_FALSE(store_->GetInfo("ghost").ok());
  EXPECT_FALSE(store_->BestModelName().ok());
}

TEST_F(ModelStoreTest, QueryableViaSql) {
  // The whole point of §3.3: stored models are relational data.
  ASSERT_TRUE(store_->SaveModel("a", *FittedForest(2), 0.8, 100).ok());
  ASSERT_TRUE(store_->SaveModel("b", *FittedForest(4), 0.9, 100).ok());
  auto t = db_.Query("SELECT name FROM models WHERE accuracy > 0.85")
               .ValueOrDie();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Varchar("b"));
}

}  // namespace
}  // namespace mlcs::modelstore
