/// Integration test: the paper's Listing 1 (train) and Listing 2 (predict)
/// run as SQL against the engine, with the model stored in a BLOB column
/// and applied through a scalar-subquery argument — the full §3 workflow.
#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/database.h"

namespace mlcs {
namespace {

class SqlListingsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Annotated data: class = data > 50, 400 rows.
    ASSERT_TRUE(
        db_.Query("CREATE TABLE train_set (data INTEGER, classes INTEGER)")
            .ok());
    auto table = db_.catalog().GetTable("train_set").ValueOrDie();
    Rng rng(99);
    for (int i = 0; i < 400; ++i) {
      int32_t v = static_cast<int32_t>(rng.NextBounded(100));
      ASSERT_TRUE(
          table->AppendRow({Value::Int32(v), Value::Int32(v > 50 ? 1 : 0)})
              .ok());
    }
    ASSERT_TRUE(db_.Run("CREATE TABLE test_set (data INTEGER);"
                        "INSERT INTO test_set VALUES (5), (95), (20), (80);")
                    .ok());
  }

  Database db_;
};

constexpr const char* kListing1 = R"(
  CREATE FUNCTION train(data INTEGER, classes INTEGER,
                        n_estimators INTEGER)
  RETURNS TABLE(classifier BLOB, estimators INTEGER)
  LANGUAGE PYTHON
  {
    clf = ml.random_forest(n_estimators);
    ml.fit(clf, data, classes);
    return { classifier: pickle.dumps(clf), estimators: n_estimators };
  }
)";

constexpr const char* kListing2 = R"(
  CREATE FUNCTION predict(data INTEGER, classifier BLOB)
  RETURNS INTEGER
  LANGUAGE PYTHON
  {
    classifier = pickle.loads(classifier);
    return ml.predict(classifier, data);
  }
)";

TEST_F(SqlListingsTest, FullPaperWorkflow) {
  // §3.1 — create and run the training UDF, storing the model.
  ASSERT_TRUE(db_.Query(kListing1).ok());
  ASSERT_TRUE(db_.Query(kListing2).ok());
  auto create = db_.Query(
      "CREATE TABLE models AS SELECT * FROM "
      "train((SELECT data, classes FROM train_set), 8)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();

  // The models table holds one BLOB row plus metadata.
  auto models = db_.Query("SELECT * FROM models").ValueOrDie();
  ASSERT_EQ(models->num_rows(), 1u);
  EXPECT_EQ(models->schema().field(0).type, TypeId::kBlob);
  EXPECT_EQ(models->GetValue(0, 1).ValueOrDie(), Value::Int32(8));
  EXPECT_GT(models->GetValue(0, 0).ValueOrDie().blob_value().size(), 100u);

  // §3.2 — classify the test set using the stored model.
  auto pred = db_.Query(
      "SELECT data, predict(data, "
      "(SELECT classifier FROM models)) AS label FROM test_set");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  auto t = pred.ValueOrDie();
  ASSERT_EQ(t->num_rows(), 4u);
  // data = 5, 95, 20, 80 → labels 0, 1, 0, 1.
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Int32(0));
  EXPECT_EQ(t->GetValue(1, 1).ValueOrDie(), Value::Int32(1));
  EXPECT_EQ(t->GetValue(2, 1).ValueOrDie(), Value::Int32(0));
  EXPECT_EQ(t->GetValue(3, 1).ValueOrDie(), Value::Int32(1));
}

TEST_F(SqlListingsTest, TrainDirectlyFeedsPredictWithoutStorage) {
  // The paper notes the trained model can be used "directly as input to
  // another function ... if no persistent storage is necessary".
  ASSERT_TRUE(db_.Query(kListing1).ok());
  ASSERT_TRUE(db_.Query(kListing2).ok());
  auto pred = db_.Query(
      "SELECT predict(data, (SELECT classifier FROM "
      "train((SELECT data, classes FROM train_set), 4))) AS label "
      "FROM test_set");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_EQ(pred.ValueOrDie()->num_rows(), 4u);
}

TEST_F(SqlListingsTest, VscriptSyntaxErrorSurfacesAtCreateTime) {
  auto r = db_.Query(
      "CREATE FUNCTION broken(x INTEGER) RETURNS INTEGER "
      "LANGUAGE VSCRIPT { return x + ; }");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(SqlListingsTest, UnsupportedLanguageRejected) {
  auto r = db_.Query(
      "CREATE FUNCTION nope(x INTEGER) RETURNS INTEGER "
      "LANGUAGE COBOL { return x; }");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST_F(SqlListingsTest, DuplicateFunctionNeedsOrReplace) {
  ASSERT_TRUE(db_.Query(kListing2).ok());
  EXPECT_FALSE(db_.Query(kListing2).ok());
  ASSERT_TRUE(db_.Query(
                    "CREATE OR REPLACE FUNCTION predict(data INTEGER, "
                    "classifier BLOB) RETURNS INTEGER LANGUAGE VSCRIPT "
                    "{ return data; }")
                  .ok());
}

TEST_F(SqlListingsTest, ScalarVscriptUdfOverColumns) {
  ASSERT_TRUE(db_.Query(
                    "CREATE FUNCTION norm(x INTEGER) RETURNS DOUBLE "
                    "LANGUAGE VSCRIPT { return x / 100.0; }")
                  .ok());
  auto t = db_.Query("SELECT norm(data) AS d FROM test_set").ValueOrDie();
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).ValueOrDie().double_value(), 0.05);
  EXPECT_DOUBLE_EQ(t->GetValue(1, 0).ValueOrDie().double_value(), 0.95);
}

TEST_F(SqlListingsTest, TableFunctionWithAggregatedMetadata) {
  // Train, then meta-analyze via plain SQL (paper §3.3 motivation).
  ASSERT_TRUE(db_.Query(kListing1).ok());
  ASSERT_TRUE(db_.Query(
                    "CREATE TABLE models AS SELECT * FROM "
                    "train((SELECT data, classes FROM train_set), 16)")
                  .ok());
  auto t = db_.Query("SELECT COUNT(*) AS n, MAX(estimators) AS max_est "
                     "FROM models")
               .ValueOrDie();
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(1));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Int32(16));
}

}  // namespace
}  // namespace mlcs
