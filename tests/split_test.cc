#include "ml/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mlcs::ml {
namespace {

TEST(SplitTest, TrainTestPartitionIsExact) {
  auto split = TrainTestSplit(100, 0.3, 1).ValueOrDie();
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.size(), 70u);
  std::set<uint32_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.rbegin(), 99u);
}

TEST(SplitTest, Deterministic) {
  auto a = TrainTestSplit(50, 0.5, 7).ValueOrDie();
  auto b = TrainTestSplit(50, 0.5, 7).ValueOrDie();
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  auto c = TrainTestSplit(50, 0.5, 8).ValueOrDie();
  EXPECT_NE(a.train, c.train);
}

TEST(SplitTest, IsShuffled) {
  auto split = TrainTestSplit(1000, 0.5, 3).ValueOrDie();
  // The first 500 indices should not be exactly 0..499.
  bool sorted = std::is_sorted(split.test.begin(), split.test.end());
  EXPECT_FALSE(sorted);
}

TEST(SplitTest, DegenerateFractionsRejected) {
  EXPECT_FALSE(TrainTestSplit(10, 0.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(10, 1.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(0, 0.5, 1).ok());
}

TEST(SplitTest, TinyInputsStillGetBothSides) {
  auto split = TrainTestSplit(2, 0.01, 1).ValueOrDie();
  EXPECT_EQ(split.test.size(), 1u);
  EXPECT_EQ(split.train.size(), 1u);
}

TEST(SplitTest, KFoldPartitions) {
  auto folds = KFold(103, 5, 2).ValueOrDie();
  ASSERT_EQ(folds.size(), 5u);
  std::set<uint32_t> seen;
  size_t total = 0;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 103u);
    total += fold.test.size();
    for (uint32_t i : fold.test) {
      EXPECT_TRUE(seen.insert(i).second) << "fold test sets overlap";
    }
    // Train and test are disjoint within a fold.
    std::set<uint32_t> train(fold.train.begin(), fold.train.end());
    for (uint32_t i : fold.test) EXPECT_EQ(train.count(i), 0u);
  }
  EXPECT_EQ(total, 103u);
}

TEST(SplitTest, KFoldValidation) {
  EXPECT_FALSE(KFold(10, 1, 1).ok());
  EXPECT_FALSE(KFold(3, 5, 1).ok());
}

TEST(SplitTest, GroupedSplitKeepsKeysTogether) {
  // 20 keys, ragged group sizes (key k appears k+1 times).
  std::vector<uint32_t> keys;
  for (uint32_t k = 0; k < 20; ++k) {
    for (uint32_t c = 0; c <= k; ++c) keys.push_back(k);
  }
  auto split = GroupedTrainTestSplit(keys, 20, 0.3, 9).ValueOrDie();
  EXPECT_EQ(split.train.size() + split.test.size(), keys.size());
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.test.empty());
  // No key straddles the sides.
  std::set<uint32_t> test_keys;
  for (uint32_t r : split.test) test_keys.insert(keys[r]);
  for (uint32_t r : split.train) EXPECT_EQ(test_keys.count(keys[r]), 0u);
  // Row order is preserved within each side.
  EXPECT_TRUE(std::is_sorted(split.train.begin(), split.train.end()));
  EXPECT_TRUE(std::is_sorted(split.test.begin(), split.test.end()));
  // The test side lands near the requested fraction (group granularity).
  double frac =
      static_cast<double>(split.test.size()) / static_cast<double>(keys.size());
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.45);
  // Deterministic in the seed.
  auto again = GroupedTrainTestSplit(keys, 20, 0.3, 9).ValueOrDie();
  EXPECT_EQ(split.test, again.test);
}

TEST(SplitTest, GroupedSplitValidation) {
  std::vector<uint32_t> keys = {0, 1, 0, 1};
  EXPECT_FALSE(GroupedTrainTestSplit({}, 4, 0.5, 1).ok());
  EXPECT_FALSE(GroupedTrainTestSplit(keys, 1, 0.5, 1).ok());
  EXPECT_FALSE(GroupedTrainTestSplit(keys, 2, 0.0, 1).ok());
  EXPECT_FALSE(GroupedTrainTestSplit({0, 5}, 2, 0.5, 1).ok());  // key range
}

}  // namespace
}  // namespace mlcs::ml
