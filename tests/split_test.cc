#include "ml/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mlcs::ml {
namespace {

TEST(SplitTest, TrainTestPartitionIsExact) {
  auto split = TrainTestSplit(100, 0.3, 1).ValueOrDie();
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.size(), 70u);
  std::set<uint32_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.rbegin(), 99u);
}

TEST(SplitTest, Deterministic) {
  auto a = TrainTestSplit(50, 0.5, 7).ValueOrDie();
  auto b = TrainTestSplit(50, 0.5, 7).ValueOrDie();
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  auto c = TrainTestSplit(50, 0.5, 8).ValueOrDie();
  EXPECT_NE(a.train, c.train);
}

TEST(SplitTest, IsShuffled) {
  auto split = TrainTestSplit(1000, 0.5, 3).ValueOrDie();
  // The first 500 indices should not be exactly 0..499.
  bool sorted = std::is_sorted(split.test.begin(), split.test.end());
  EXPECT_FALSE(sorted);
}

TEST(SplitTest, DegenerateFractionsRejected) {
  EXPECT_FALSE(TrainTestSplit(10, 0.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(10, 1.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(0, 0.5, 1).ok());
}

TEST(SplitTest, TinyInputsStillGetBothSides) {
  auto split = TrainTestSplit(2, 0.01, 1).ValueOrDie();
  EXPECT_EQ(split.test.size(), 1u);
  EXPECT_EQ(split.train.size(), 1u);
}

TEST(SplitTest, KFoldPartitions) {
  auto folds = KFold(103, 5, 2).ValueOrDie();
  ASSERT_EQ(folds.size(), 5u);
  std::set<uint32_t> seen;
  size_t total = 0;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 103u);
    total += fold.test.size();
    for (uint32_t i : fold.test) {
      EXPECT_TRUE(seen.insert(i).second) << "fold test sets overlap";
    }
    // Train and test are disjoint within a fold.
    std::set<uint32_t> train(fold.train.begin(), fold.train.end());
    for (uint32_t i : fold.test) EXPECT_EQ(train.count(i), 0u);
  }
  EXPECT_EQ(total, 103u);
}

TEST(SplitTest, KFoldValidation) {
  EXPECT_FALSE(KFold(10, 1, 1).ok());
  EXPECT_FALSE(KFold(3, 5, 1).ok());
}

}  // namespace
}  // namespace mlcs::ml
