#include "storage/table.h"

#include <gtest/gtest.h>

namespace mlcs {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddField("id", TypeId::kInt32);
  s.AddField("name", TypeId::kVarchar);
  return s;
}

TablePtr SampleTable() {
  auto t = Table::Make(TwoColSchema());
  EXPECT_TRUE(t->AppendRow({Value::Int32(1), Value::Varchar("alice")}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(2), Value::Varchar("bob")}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(3), Value::Varchar("carol")}).ok());
  return t;
}

TEST(TableTest, EmptyTableHasSchemaColumns) {
  Table t(TwoColSchema());
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TableTest, AppendRowAndRead) {
  auto t = SampleTable();
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(1, 1).ValueOrDie(), Value::Varchar("bob"));
  EXPECT_EQ(t->GetValue(2, 0).ValueOrDie(), Value::Int32(3));
}

TEST(TableTest, AppendRowWrongArityFails) {
  auto t = Table::Make(TwoColSchema());
  EXPECT_FALSE(t->AppendRow({Value::Int32(1)}).ok());
}

TEST(TableTest, AppendRowCasts) {
  auto t = Table::Make(TwoColSchema());
  ASSERT_TRUE(t->AppendRow({Value::Int64(5), Value::Varchar("x")}).ok());
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(5));
}

TEST(TableTest, ColumnByName) {
  auto t = SampleTable();
  EXPECT_EQ(t->ColumnByName("NAME").ValueOrDie()->size(), 3u);
  EXPECT_FALSE(t->ColumnByName("missing").ok());
}

TEST(TableTest, ValidateCatchesTypeDrift) {
  Schema s = TwoColSchema();
  std::vector<ColumnPtr> cols = {Column::FromDouble({1.0}),
                                 Column::FromStrings({"a"})};
  Table t(std::move(s), std::move(cols));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, ValidateCatchesLengthMismatch) {
  Schema s = TwoColSchema();
  std::vector<ColumnPtr> cols = {Column::FromInt32({1, 2}),
                                 Column::FromStrings({"a"})};
  Table t(std::move(s), std::move(cols));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, AppendTable) {
  auto a = SampleTable();
  auto b = SampleTable();
  ASSERT_TRUE(a->AppendTable(*b).ok());
  EXPECT_EQ(a->num_rows(), 6u);
  EXPECT_EQ(a->GetValue(4, 1).ValueOrDie(), Value::Varchar("bob"));
}

TEST(TableTest, AddColumn) {
  auto t = SampleTable();
  ASSERT_TRUE(t->AddColumn("score", Column::FromDouble({1.0, 2.0, 3.0})).ok());
  EXPECT_EQ(t->num_columns(), 3u);
  EXPECT_EQ(t->schema().field(2).name, "score");
  EXPECT_FALSE(t->AddColumn("bad", Column::FromDouble({1.0})).ok());
}

TEST(TableTest, ProjectSharesColumns) {
  auto t = SampleTable();
  auto p = t->Project({1});
  EXPECT_EQ(p->num_columns(), 1u);
  EXPECT_EQ(p->schema().field(0).name, "name");
  EXPECT_EQ(p->column(0).get(), t->column(1).get());  // shared buffer
}

TEST(TableTest, TakeRowsAndSlice) {
  auto t = SampleTable();
  auto taken = t->TakeRows({2, 0});
  EXPECT_EQ(taken->GetValue(0, 1).ValueOrDie(), Value::Varchar("carol"));
  EXPECT_EQ(taken->GetValue(1, 0).ValueOrDie(), Value::Int32(1));
  auto slice = t->SliceRows(1, 2);
  EXPECT_EQ(slice->num_rows(), 2u);
  EXPECT_EQ(slice->GetValue(0, 1).ValueOrDie(), Value::Varchar("bob"));
}

TEST(TableTest, Equals) {
  EXPECT_TRUE(SampleTable()->Equals(*SampleTable()));
  auto other = SampleTable();
  ASSERT_TRUE(other->AppendRow({Value::Int32(9), Value::Varchar("z")}).ok());
  EXPECT_FALSE(SampleTable()->Equals(*other));
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  auto t = SampleTable();
  std::string s = t->ToString();
  EXPECT_NE(s.find("id | name"), std::string::npos);
  EXPECT_NE(s.find("alice"), std::string::npos);
}

}  // namespace
}  // namespace mlcs
