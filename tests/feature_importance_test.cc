#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace mlcs::ml {
namespace {

/// Feature 0 fully determines the class; features 1 and 2 are pure noise.
void MakeData(size_t n, Matrix* x, Labels* y, uint64_t seed = 2) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    x->Set(i, 0, cls * 6.0 + rng.NextGaussian());
    x->Set(i, 1, rng.NextGaussian());
    x->Set(i, 2, rng.NextGaussian());
    (*y)[i] = cls;
  }
}

TEST(FeatureImportanceTest, TreeIdentifiesInformativeFeature) {
  Matrix x;
  Labels y;
  MakeData(600, &x, &y);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  const auto& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  double total = imp[0] + imp[1] + imp[2];
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.8);  // the signal feature dominates
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
}

TEST(FeatureImportanceTest, SingleLeafTreeHasZeroImportances) {
  Matrix x(10, 2);
  Labels y(10, 1);  // pure
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  for (double v : tree.feature_importances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FeatureImportanceTest, ForestAggregatesAcrossTrees) {
  Matrix x;
  Labels y;
  MakeData(600, &x, &y, 4);
  RandomForestOptions opt;
  opt.n_estimators = 8;
  RandomForest forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  auto imp = forest.FeatureImportances().ValueOrDie();
  ASSERT_EQ(imp.size(), 3u);
  double total = imp[0] + imp[1] + imp[2];
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Feature subsampling forces some splits on noise, but the signal
  // feature still dominates clearly.
  EXPECT_GT(imp[0], 0.5);
}

TEST(FeatureImportanceTest, UnfittedForestRejected) {
  RandomForest forest;
  EXPECT_FALSE(forest.FeatureImportances().ok());
}

TEST(FeatureImportanceTest, ImportancesSurviveSerialization) {
  Matrix x;
  Labels y;
  MakeData(300, &x, &y, 6);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  ByteWriter w;
  tree.Serialize(&w);
  ByteReader r(w.data());
  auto back = DecisionTree::DeserializeBody(&r).ValueOrDie();
  ASSERT_EQ(back->feature_importances().size(), 3u);
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_DOUBLE_EQ(back->feature_importances()[f],
                     tree.feature_importances()[f]);
  }
}

}  // namespace
}  // namespace mlcs::ml
