#include "io/h5b.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"

namespace mlcs::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TablePtr RandomTable(size_t rows, uint64_t seed) {
  Schema s;
  s.AddField("i", TypeId::kInt32);
  s.AddField("d", TypeId::kDouble);
  s.AddField("s", TypeId::kVarchar);
  auto t = Table::Make(std::move(s));
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextDouble() < 0.05) {
      EXPECT_TRUE(t->AppendRow({Value::MakeNull(TypeId::kInt32),
                                Value::Double(rng.NextGaussian()),
                                Value::Varchar("null-ish")})
                      .ok());
    } else {
      EXPECT_TRUE(
          t->AppendRow({Value::Int32(static_cast<int32_t>(rng.NextU64())),
                        Value::Double(rng.NextGaussian()),
                        Value::Varchar(std::to_string(r))})
              .ok());
    }
  }
  return t;
}

class H5bChunkTest : public ::testing::TestWithParam<size_t> {};

/// Property: round-trip across chunk sizes smaller, equal and larger than
/// the table (exercises partial final chunks).
TEST_P(H5bChunkTest, RoundTripAcrossChunkSizes) {
  auto t = RandomTable(1000, GetParam());
  H5bOptions opt;
  opt.chunk_rows = GetParam();
  std::string path = TempPath("chunks_" + std::to_string(GetParam()) +
                              ".h5b");
  ASSERT_TRUE(WriteH5b(*t, path, opt).ok());
  auto back = ReadH5b(path).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, H5bChunkTest,
                         ::testing::Values(1, 7, 100, 1000, 4096));

TEST(H5bTest, EmptyTableRoundTrip) {
  Schema s;
  s.AddField("x", TypeId::kInt64);
  Table t(std::move(s));
  std::string path = TempPath("empty.h5b");
  ASSERT_TRUE(WriteH5b(t, path).ok());
  auto back = ReadH5b(path).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->schema().field(0).name, "x");
  std::remove(path.c_str());
}

TEST(H5bTest, GarbageRejected) {
  std::string path = TempPath("garbage.h5b");
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not h5b at all", f);
  fclose(f);
  EXPECT_FALSE(ReadH5b(path).ok());
  std::remove(path.c_str());
}

TEST(H5bTest, TruncatedFileRejected) {
  auto t = RandomTable(500, 3);
  std::string path = TempPath("trunc.h5b");
  ASSERT_TRUE(WriteH5b(*t, path).ok());
  // Truncate to half.
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  long size = ftell(f);
  fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(ReadH5b(path).ok());
  std::remove(path.c_str());
}

TEST(H5bTest, ZeroChunkRowsRejected) {
  auto t = RandomTable(10, 4);
  H5bOptions opt;
  opt.chunk_rows = 0;
  EXPECT_FALSE(WriteH5b(*t, TempPath("zero.h5b"), opt).ok());
}

TEST(H5bTest, MissingFileReported) {
  EXPECT_FALSE(ReadH5b("/no/such/file.h5b").ok());
  EXPECT_FALSE(H5bChunkReader::Open("/no/such/file.h5b").ok());
}

TEST(H5bChunkReaderTest, StreamsChunksMatchingFullRead) {
  auto t = RandomTable(1234, 9);
  H5bOptions opt;
  opt.chunk_rows = 100;
  std::string path = TempPath("stream.h5b");
  ASSERT_TRUE(WriteH5b(*t, path, opt).ok());

  auto reader = H5bChunkReader::Open(path).ValueOrDie();
  EXPECT_EQ(reader.total_rows(), 1234u);
  EXPECT_EQ(reader.schema(), t->schema());
  auto rebuilt = Table::Make(reader.schema());
  size_t chunks = 0;
  while (reader.HasNext()) {
    auto chunk = reader.NextChunk().ValueOrDie();
    EXPECT_LE(chunk->num_rows(), 100u);
    ASSERT_TRUE(rebuilt->AppendTable(*chunk).ok());
    ++chunks;
  }
  EXPECT_EQ(chunks, 13u);  // ceil(1234 / 100)
  EXPECT_TRUE(t->Equals(*rebuilt));
  EXPECT_EQ(reader.rows_read(), 1234u);
  // Reading past the end errors instead of looping.
  EXPECT_FALSE(reader.NextChunk().ok());
  std::remove(path.c_str());
}

TEST(H5bChunkReaderTest, IncrementalAggregationMatchesFullScan) {
  // The out-of-core usage pattern: fold an aggregate over chunks without
  // ever materializing the whole table.
  auto t = RandomTable(5000, 12);
  std::string path = TempPath("ooc.h5b");
  H5bOptions opt;
  opt.chunk_rows = 512;
  ASSERT_TRUE(WriteH5b(*t, path, opt).ok());

  double full_sum = 0;
  const auto& d = t->column(1)->f64_data();
  for (double v : d) full_sum += v;

  auto reader = H5bChunkReader::Open(path).ValueOrDie();
  double streamed_sum = 0;
  while (reader.HasNext()) {
    auto chunk = reader.NextChunk().ValueOrDie();
    for (double v : chunk->column(1)->f64_data()) streamed_sum += v;
  }
  EXPECT_NEAR(streamed_sum, full_sum, 1e-9 * std::abs(full_sum) + 1e-9);
  std::remove(path.c_str());
}

TEST(H5bChunkReaderTest, MoveTransfersOwnership) {
  auto t = RandomTable(50, 2);
  std::string path = TempPath("move.h5b");
  ASSERT_TRUE(WriteH5b(*t, path).ok());
  auto a = H5bChunkReader::Open(path).ValueOrDie();
  H5bChunkReader b = std::move(a);
  EXPECT_TRUE(b.HasNext());
  EXPECT_TRUE(b.NextChunk().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlcs::io
