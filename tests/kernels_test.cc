#include "exec/kernels.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mlcs::exec {
namespace {

TEST(KernelsTest, Int32Addition) {
  auto l = Column::FromInt32({1, 2, 3});
  auto r = Column::FromInt32({10, 20, 30});
  auto out = BinaryKernel(BinOpKind::kAdd, *l, *r).ValueOrDie();
  EXPECT_EQ(out->type(), TypeId::kInt32);
  EXPECT_EQ(out->i32_data(), (std::vector<int32_t>{11, 22, 33}));
}

TEST(KernelsTest, MixedTypesPromote) {
  auto l = Column::FromInt32({1, 2});
  auto r = Column::FromInt64({10, 20});
  auto out = BinaryKernel(BinOpKind::kMul, *l, *r).ValueOrDie();
  EXPECT_EQ(out->type(), TypeId::kInt64);
  EXPECT_EQ(out->i64_data(), (std::vector<int64_t>{10, 40}));

  auto d = Column::FromDouble({0.5, 0.5});
  auto out2 = BinaryKernel(BinOpKind::kAdd, *l, *d).ValueOrDie();
  EXPECT_EQ(out2->type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(out2->f64_data()[0], 1.5);
}

TEST(KernelsTest, ScalarBroadcastBothSides) {
  auto vec = Column::FromInt32({1, 2, 3});
  auto scalar = Column::FromInt32({10});
  auto out = BinaryKernel(BinOpKind::kAdd, *vec, *scalar).ValueOrDie();
  EXPECT_EQ(out->i32_data(), (std::vector<int32_t>{11, 12, 13}));
  auto out2 = BinaryKernel(BinOpKind::kSub, *scalar, *vec).ValueOrDie();
  EXPECT_EQ(out2->i32_data(), (std::vector<int32_t>{9, 8, 7}));
}

TEST(KernelsTest, IncompatibleLengthsRejected) {
  auto a = Column::FromInt32({1, 2});
  auto b = Column::FromInt32({1, 2, 3});
  EXPECT_FALSE(BinaryKernel(BinOpKind::kAdd, *a, *b).ok());
}

TEST(KernelsTest, DivisionByZeroYieldsNull) {
  auto l = Column::FromInt32({6, 7});
  auto r = Column::FromInt32({3, 0});
  auto out = BinaryKernel(BinOpKind::kDiv, *l, *r).ValueOrDie();
  EXPECT_EQ(out->i32_data()[0], 2);
  EXPECT_TRUE(out->IsNull(1));
  auto mod = BinaryKernel(BinOpKind::kMod, *l, *r).ValueOrDie();
  EXPECT_EQ(mod->i32_data()[0], 0);
  EXPECT_TRUE(mod->IsNull(1));
}

TEST(KernelsTest, DoubleDivision) {
  auto l = Column::FromDouble({1.0});
  auto r = Column::FromDouble({4.0});
  auto out = BinaryKernel(BinOpKind::kDiv, *l, *r).ValueOrDie();
  EXPECT_DOUBLE_EQ(out->f64_data()[0], 0.25);
}

TEST(KernelsTest, NullPropagation) {
  Column l(TypeId::kInt32);
  l.AppendInt32(1);
  l.AppendNull();
  auto r = Column::FromInt32({5, 5});
  auto out = BinaryKernel(BinOpKind::kAdd, l, *r).ValueOrDie();
  EXPECT_FALSE(out->IsNull(0));
  EXPECT_TRUE(out->IsNull(1));
}

TEST(KernelsTest, Comparisons) {
  auto l = Column::FromInt32({1, 2, 3});
  auto r = Column::FromInt32({2, 2, 2});
  auto lt = BinaryKernel(BinOpKind::kLt, *l, *r).ValueOrDie();
  EXPECT_EQ(lt->bool_data(), (std::vector<uint8_t>{1, 0, 0}));
  auto eq = BinaryKernel(BinOpKind::kEq, *l, *r).ValueOrDie();
  EXPECT_EQ(eq->bool_data(), (std::vector<uint8_t>{0, 1, 0}));
  auto ge = BinaryKernel(BinOpKind::kGe, *l, *r).ValueOrDie();
  EXPECT_EQ(ge->bool_data(), (std::vector<uint8_t>{0, 1, 1}));
  auto ne = BinaryKernel(BinOpKind::kNe, *l, *r).ValueOrDie();
  EXPECT_EQ(ne->bool_data(), (std::vector<uint8_t>{1, 0, 1}));
}

TEST(KernelsTest, StringComparison) {
  auto l = Column::FromStrings({"apple", "pear"});
  auto r = Column::FromStrings({"banana", "pear"});
  auto lt = BinaryKernel(BinOpKind::kLt, *l, *r).ValueOrDie();
  EXPECT_EQ(lt->bool_data(), (std::vector<uint8_t>{1, 0}));
  auto eq = BinaryKernel(BinOpKind::kEq, *l, *r).ValueOrDie();
  EXPECT_EQ(eq->bool_data(), (std::vector<uint8_t>{0, 1}));
}

TEST(KernelsTest, StringArithmeticRejected) {
  auto l = Column::FromStrings({"a"});
  auto r = Column::FromStrings({"b"});
  EXPECT_FALSE(BinaryKernel(BinOpKind::kAdd, *l, *r).ok());
}

TEST(KernelsTest, LogicalAndOr) {
  auto l = Column::FromBool({1, 1, 0, 0});
  auto r = Column::FromBool({1, 0, 1, 0});
  auto a = BinaryKernel(BinOpKind::kAnd, *l, *r).ValueOrDie();
  EXPECT_EQ(a->bool_data(), (std::vector<uint8_t>{1, 0, 0, 0}));
  auto o = BinaryKernel(BinOpKind::kOr, *l, *r).ValueOrDie();
  EXPECT_EQ(o->bool_data(), (std::vector<uint8_t>{1, 1, 1, 0}));
  auto i = Column::FromInt32({1, 2, 3, 4});
  EXPECT_FALSE(BinaryKernel(BinOpKind::kAnd, *l, *i).ok());
}

TEST(KernelsTest, UnaryNegateAndNot) {
  auto i = Column::FromInt32({1, -2});
  auto neg = UnaryKernel(UnOpKind::kNeg, *i).ValueOrDie();
  EXPECT_EQ(neg->i32_data(), (std::vector<int32_t>{-1, 2}));
  auto d = Column::FromDouble({1.5});
  EXPECT_DOUBLE_EQ(
      UnaryKernel(UnOpKind::kNeg, *d).ValueOrDie()->f64_data()[0], -1.5);
  auto b = Column::FromBool({1, 0});
  auto n = UnaryKernel(UnOpKind::kNot, *b).ValueOrDie();
  EXPECT_EQ(n->bool_data(), (std::vector<uint8_t>{0, 1}));
  EXPECT_FALSE(UnaryKernel(UnOpKind::kNot, *i).ok());
  auto s = Column::FromStrings({"x"});
  EXPECT_FALSE(UnaryKernel(UnOpKind::kNeg, *s).ok());
}

TEST(KernelsTest, HashDistinguishesValuesAndTypes) {
  auto a = Column::FromInt32({1, 2, 1});
  std::vector<uint64_t> h(3, kHashSeed);
  HashCombineColumn(*a, &h);
  EXPECT_EQ(h[0], h[2]);
  EXPECT_NE(h[0], h[1]);
}

TEST(KernelsTest, HashNullsDifferFromZero) {
  Column a(TypeId::kInt32);
  a.AppendInt32(0);
  a.AppendNull();
  std::vector<uint64_t> h(2, kHashSeed);
  HashCombineColumn(a, &h);
  EXPECT_NE(h[0], h[1]);
}

TEST(KernelsTest, MultiColumnHashComposes) {
  auto a = Column::FromInt32({1, 1});
  auto b = Column::FromInt32({2, 3});
  std::vector<uint64_t> h(2, kHashSeed);
  HashCombineColumn(*a, &h);
  HashCombineColumn(*b, &h);
  EXPECT_NE(h[0], h[1]);
}

TEST(KernelsTest, CellEqualsAndCompare) {
  auto a = Column::FromStrings({"a", "b"});
  EXPECT_TRUE(CellEquals(*a, 0, *a, 0));
  EXPECT_FALSE(CellEquals(*a, 0, *a, 1));
  EXPECT_LT(CellCompare(*a, 0, *a, 1), 0);
  EXPECT_GT(CellCompare(*a, 1, *a, 0), 0);
  EXPECT_EQ(CellCompare(*a, 1, *a, 1), 0);
  Column n(TypeId::kInt32);
  n.AppendNull();
  n.AppendInt32(1);
  EXPECT_LT(CellCompare(n, 0, n, 1), 0);  // NULL first
  EXPECT_TRUE(CellEquals(n, 0, n, 0));
  EXPECT_FALSE(CellEquals(n, 0, n, 1));
}

TEST(KernelsTest, TakeOrNullPadsMinusOne) {
  auto a = Column::FromInt32({10, 20});
  auto out = TakeOrNull(*a, {1, -1, 0});
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->i32_data()[0], 20);
  EXPECT_TRUE(out->IsNull(1));
  EXPECT_EQ(out->i32_data()[2], 10);
}

/// Property: for random int vectors, kernel results match a scalar oracle.
TEST(KernelsTest, RandomizedArithmeticMatchesOracle) {
  Rng rng(77);
  std::vector<int64_t> lv(200), rv(200);
  for (size_t i = 0; i < lv.size(); ++i) {
    lv[i] = rng.NextInt(-1000, 1000);
    rv[i] = rng.NextInt(-10, 10);
  }
  auto l = Column::FromInt64(std::vector<int64_t>(lv));
  auto r = Column::FromInt64(std::vector<int64_t>(rv));
  for (BinOpKind op : {BinOpKind::kAdd, BinOpKind::kSub, BinOpKind::kMul}) {
    auto out = BinaryKernel(op, *l, *r).ValueOrDie();
    for (size_t i = 0; i < lv.size(); ++i) {
      int64_t expect = op == BinOpKind::kAdd   ? lv[i] + rv[i]
                       : op == BinOpKind::kSub ? lv[i] - rv[i]
                                               : lv[i] * rv[i];
      EXPECT_EQ(out->i64_data()[i], expect);
    }
  }
  auto div = BinaryKernel(BinOpKind::kDiv, *l, *r).ValueOrDie();
  for (size_t i = 0; i < lv.size(); ++i) {
    if (rv[i] == 0) {
      EXPECT_TRUE(div->IsNull(i));
    } else {
      EXPECT_EQ(div->i64_data()[i], lv[i] / rv[i]);
    }
  }
}

}  // namespace
}  // namespace mlcs::exec
