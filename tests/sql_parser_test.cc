#include "sql/parser.h"

#include <gtest/gtest.h>

namespace mlcs::sql {
namespace {

Result<SelectStatement> ParseSelectStmt(const std::string& sql) {
  MLCS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  auto* select = std::get_if<SelectStatement>(&stmt);
  if (select == nullptr) return Status::Internal("not a select");
  return std::move(*select);
}

TEST(SqlParserTest, SimpleSelect) {
  auto select = ParseSelectStmt("SELECT a, b + 1 AS c FROM t").ValueOrDie();
  ASSERT_EQ(select.items.size(), 2u);
  EXPECT_EQ(select.items[0].expr->name, "a");
  EXPECT_EQ(select.items[1].alias, "c");
  ASSERT_NE(select.from, nullptr);
  EXPECT_EQ(select.from->name, "t");
}

TEST(SqlParserTest, SelectStar) {
  auto select = ParseSelectStmt("SELECT * FROM t").ValueOrDie();
  EXPECT_TRUE(select.items[0].star);
}

TEST(SqlParserTest, WhereGroupOrderLimit) {
  auto select = ParseSelectStmt(
                    "SELECT precinct, COUNT(*) AS n FROM votes "
                    "WHERE votes > 0 GROUP BY precinct "
                    "ORDER BY n DESC, precinct LIMIT 10")
                    .ValueOrDie();
  ASSERT_NE(select.where, nullptr);
  ASSERT_EQ(select.group_by.size(), 1u);
  EXPECT_EQ(select.group_by[0], "precinct");
  ASSERT_EQ(select.order_by.size(), 2u);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_FALSE(select.order_by[1].descending);
  EXPECT_EQ(select.limit, 10);
}

TEST(SqlParserTest, JoinWithQualifiedKeys) {
  auto select = ParseSelectStmt(
                    "SELECT * FROM voters v JOIN precincts p "
                    "ON v.precinct_id = p.precinct_id AND v.county = "
                    "p.county")
                    .ValueOrDie();
  ASSERT_NE(select.from, nullptr);
  EXPECT_EQ(select.from->kind, TableRef::Kind::kJoin);
  ASSERT_EQ(select.from->join_keys.size(), 2u);
  EXPECT_EQ(select.from->join_keys[0].first, "precinct_id");
  EXPECT_EQ(select.from->left->alias, "v");
  EXPECT_EQ(select.from->right->alias, "p");
}

TEST(SqlParserTest, LeftJoin) {
  auto select =
      ParseSelectStmt("SELECT * FROM a LEFT JOIN b ON x = y").ValueOrDie();
  EXPECT_EQ(select.from->join_type, exec::JoinType::kLeft);
}

TEST(SqlParserTest, TableFunctionWithSubqueryArg) {
  auto select = ParseSelectStmt(
                    "SELECT * FROM train((SELECT data, classes FROM t), 16)")
                    .ValueOrDie();
  ASSERT_NE(select.from, nullptr);
  EXPECT_EQ(select.from->kind, TableRef::Kind::kFunction);
  EXPECT_EQ(select.from->name, "train");
  ASSERT_EQ(select.from->fn_args.size(), 2u);
  EXPECT_NE(select.from->fn_args[0].table, nullptr);
  EXPECT_NE(select.from->fn_args[1].scalar, nullptr);
}

TEST(SqlParserTest, SubqueryInFrom) {
  auto select =
      ParseSelectStmt("SELECT * FROM (SELECT a FROM t) sub").ValueOrDie();
  EXPECT_EQ(select.from->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(select.from->alias, "sub");
}

TEST(SqlParserTest, ScalarSubqueryInExpression) {
  auto select = ParseSelectStmt(
                    "SELECT predict(x, (SELECT m FROM models)) FROM t")
                    .ValueOrDie();
  const SqlExpr& call = *select.items[0].expr;
  EXPECT_EQ(call.kind, SqlExprKind::kCall);
  ASSERT_EQ(call.args.size(), 2u);
  EXPECT_EQ(call.args[1]->kind, SqlExprKind::kSubquery);
}

TEST(SqlParserTest, CountStar) {
  auto select = ParseSelectStmt("SELECT COUNT(*) FROM t").ValueOrDie();
  const SqlExpr& call = *select.items[0].expr;
  ASSERT_EQ(call.args.size(), 1u);
  EXPECT_EQ(call.args[0]->kind, SqlExprKind::kStar);
}

TEST(SqlParserTest, CastAndIsNull) {
  auto select = ParseSelectStmt(
                    "SELECT CAST(a AS DOUBLE) FROM t WHERE b IS NOT NULL")
                    .ValueOrDie();
  EXPECT_EQ(select.items[0].expr->kind, SqlExprKind::kCast);
  EXPECT_EQ(select.items[0].expr->cast_type, TypeId::kDouble);
  EXPECT_EQ(select.where->kind, SqlExprKind::kIsNull);
  EXPECT_TRUE(select.where->is_not_null);
}

TEST(SqlParserTest, OperatorPrecedence) {
  auto select = ParseSelectStmt("SELECT 1 + 2 * 3").ValueOrDie();
  // (1 + (2 * 3))
  EXPECT_EQ(select.items[0].expr->ToString(), "(1 + (2 * 3))");
}

TEST(SqlParserTest, CreateTable) {
  auto stmt = ParseStatement(
                  "CREATE TABLE voters (id BIGINT, name VARCHAR, age "
                  "INTEGER)")
                  .ValueOrDie();
  const auto& create = std::get<CreateTableStmt>(stmt);
  EXPECT_EQ(create.name, "voters");
  ASSERT_EQ(create.schema.num_fields(), 3u);
  EXPECT_EQ(create.schema.field(1).type, TypeId::kVarchar);
}

TEST(SqlParserTest, CreateTableAsSelect) {
  auto stmt =
      ParseStatement("CREATE OR REPLACE TABLE t2 AS SELECT * FROM t")
          .ValueOrDie();
  const auto& create = std::get<CreateTableStmt>(stmt);
  EXPECT_TRUE(create.or_replace);
  EXPECT_NE(create.as_select, nullptr);
}

TEST(SqlParserTest, InsertValues) {
  auto stmt = ParseStatement(
                  "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
                  .ValueOrDie();
  const auto& insert = std::get<InsertStmt>(stmt);
  EXPECT_EQ(insert.table, "t");
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0].size(), 2u);
}

TEST(SqlParserTest, InsertSelect) {
  auto stmt =
      ParseStatement("INSERT INTO t SELECT * FROM s").ValueOrDie();
  const auto& insert = std::get<InsertStmt>(stmt);
  EXPECT_NE(insert.select, nullptr);
}

TEST(SqlParserTest, DropVariants) {
  auto t = ParseStatement("DROP TABLE IF EXISTS t").ValueOrDie();
  EXPECT_TRUE(std::get<DropStmt>(t).if_exists);
  EXPECT_FALSE(std::get<DropStmt>(t).is_function);
  auto f = ParseStatement("DROP FUNCTION train").ValueOrDie();
  EXPECT_TRUE(std::get<DropStmt>(f).is_function);
}

TEST(SqlParserTest, CreateFunctionListing1) {
  // Verbatim structure of the paper's Listing 1.
  const char* sql = R"(
    CREATE FUNCTION train(data INTEGER, classes INTEGER,
                          n_estimators INTEGER)
    RETURNS TABLE(classifier BLOB, estimators INTEGER)
    LANGUAGE PYTHON
    {
      clf = ml.random_forest(n_estimators);
      ml.fit(clf, data, classes);
      return { classifier: pickle.dumps(clf), estimators: n_estimators };
    }
  )";
  auto stmt = ParseStatement(sql).ValueOrDie();
  const auto& fn = std::get<CreateFunctionStmt>(stmt);
  EXPECT_EQ(fn.name, "train");
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_EQ(fn.params[2].name, "n_estimators");
  EXPECT_TRUE(fn.returns_table);
  ASSERT_EQ(fn.table_schema.num_fields(), 2u);
  EXPECT_EQ(fn.table_schema.field(0).type, TypeId::kBlob);
  EXPECT_EQ(fn.language, "PYTHON");
  EXPECT_NE(fn.body.find("ml.fit"), std::string::npos);
}

TEST(SqlParserTest, CreateFunctionScalarReturn) {
  const char* sql =
      "CREATE FUNCTION predict(data INTEGER, classifier BLOB) "
      "RETURNS INTEGER LANGUAGE VSCRIPT { return data; }";
  auto stmt = ParseStatement(sql).ValueOrDie();
  const auto& fn = std::get<CreateFunctionStmt>(stmt);
  EXPECT_FALSE(fn.returns_table);
  EXPECT_EQ(fn.scalar_type, TypeId::kInt32);
}

TEST(SqlParserTest, ScriptSplitsStatements) {
  auto statements =
      ParseScript("SELECT 1; SELECT 2; -- done\n").ValueOrDie();
  EXPECT_EQ(statements.size(), 2u);
}

TEST(SqlParserTest, SyntaxErrorsReported) {
  EXPECT_FALSE(ParseStatement("SELEC 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 2").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t").ok());
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2").ok());  // two stmts
}

}  // namespace
}  // namespace mlcs::sql
