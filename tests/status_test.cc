#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mlcs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table 'foo'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table 'foo'");
  EXPECT_EQ(s.ToString(), "Not found: table 'foo'");
}

TEST(StatusTest, AllFactoryFunctionsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeMismatch("").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NetworkError("").code(), StatusCode::kNetworkError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int v) {
  MLCS_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfOfEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterOfMultipleOfFour(int v) {
  MLCS_ASSIGN_OR_RETURN(int half, HalfOfEven(v));
  MLCS_ASSIGN_OR_RETURN(int quarter, HalfOfEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  auto r = QuarterOfMultipleOfFour(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 2);

  auto bad = QuarterOfMultipleOfFour(6);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> good = 7;
  Result<int> bad = Status::Internal("boom");
  EXPECT_EQ(good.ValueOr(0), 7);
  EXPECT_EQ(bad.ValueOr(0), 0);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace mlcs
