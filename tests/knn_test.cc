#include "ml/knn.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"
#include "ml/pickle.h"

namespace mlcs::ml {
namespace {

void MakeBlobs(size_t n, Matrix* x, Labels* y, uint64_t seed = 1) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    x->Set(i, 0, cls * 4.0 + rng.NextGaussian());
    x->Set(i, 1, cls * 4.0 + rng.NextGaussian());
    (*y)[i] = cls;
  }
}

TEST(KnnTest, LearnsSeparableBlobs) {
  Matrix x;
  Labels y;
  MakeBlobs(400, &x, &y);
  Knn knn;
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, knn.Predict(x).ValueOrDie()).ValueOrDie(), 0.95);
}

TEST(KnnTest, KEqualsOneMemorizesTrainingSet) {
  Matrix x;
  Labels y;
  MakeBlobs(200, &x, &y, 3);
  KnnOptions opt;
  opt.k = 1;
  Knn knn(opt);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(Accuracy(y, knn.Predict(x).ValueOrDie()).ValueOrDie(),
                   1.0);
}

TEST(KnnTest, VotesFormDistribution) {
  Matrix x;
  Labels y;
  MakeBlobs(200, &x, &y, 5);
  Knn knn;
  ASSERT_TRUE(knn.Fit(x, y).ok());
  auto p0 = knn.PredictProba(x, 0).ValueOrDie();
  auto p1 = knn.PredictProba(x, 1).ValueOrDie();
  auto conf = knn.PredictConfidence(x).ValueOrDie();
  for (size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(p0[i] + p1[i], 1.0, 1e-9);
    EXPECT_NEAR(conf[i], std::max(p0[i], p1[i]), 1e-9);
  }
}

TEST(KnnTest, KLargerThanTrainingSetClamped) {
  Matrix x(3, 1);
  x.Set(0, 0, 0.0);
  x.Set(1, 0, 1.0);
  x.Set(2, 0, 10.0);
  Labels y = {0, 0, 1};
  KnnOptions opt;
  opt.k = 100;
  Knn knn(opt);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  // All 3 points vote → majority class 0 everywhere.
  EXPECT_EQ(knn.Predict(x).ValueOrDie(), (Labels{0, 0, 0}));
}

TEST(KnnTest, ZeroKRejected) {
  KnnOptions opt;
  opt.k = 0;
  Knn knn(opt);
  Matrix x(2, 1);
  Labels y = {0, 1};
  EXPECT_FALSE(knn.Fit(x, y).ok());
}

TEST(KnnTest, PickleRoundTrip) {
  Matrix x;
  Labels y;
  MakeBlobs(150, &x, &y, 8);
  Knn knn;
  ASSERT_TRUE(knn.Fit(x, y).ok());
  std::string blob = pickle::Dumps(knn);
  auto back = pickle::Loads(blob).ValueOrDie();
  EXPECT_EQ(back->type(), ModelType::kKnn);
  EXPECT_EQ(back->Predict(x).ValueOrDie(), knn.Predict(x).ValueOrDie());
  // kNN blobs scale with training size (it ships the data).
  EXPECT_GT(blob.size(), 150u * 2u * sizeof(double));
}

TEST(KnnTest, ValidationErrors) {
  Knn knn;
  Matrix x(2, 1);
  EXPECT_FALSE(knn.Predict(x).ok());  // unfitted
}

}  // namespace
}  // namespace mlcs::ml
