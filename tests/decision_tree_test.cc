#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"

namespace mlcs::ml {
namespace {

/// Two well-separated gaussian blobs in 2-D: class 0 near (0,0),
/// class 1 near (5,5).
void MakeBlobs(size_t n, Matrix* x, Labels* y, uint64_t seed = 1) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    double cx = cls == 0 ? 0.0 : 5.0;
    x->Set(i, 0, cx + rng.NextGaussian());
    x->Set(i, 1, cx + rng.NextGaussian());
    (*y)[i] = cls;
  }
}

TEST(DecisionTreeTest, LearnsSeparableBlobs) {
  Matrix x;
  Labels y;
  MakeBlobs(500, &x, &y);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  Labels pred = tree.Predict(x).ValueOrDie();
  double acc = Accuracy(y, pred).ValueOrDie();
  EXPECT_GT(acc, 0.95);
}

TEST(DecisionTreeTest, ExactSplitterPerfectOnAxisAlignedData) {
  // y = x0 > 2, exactly learnable with one split.
  Matrix x(100, 1);
  Labels y(100);
  for (size_t i = 0; i < 100; ++i) {
    x.Set(i, 0, static_cast<double>(i));
    y[i] = i > 50 ? 1 : 0;
  }
  DecisionTreeOptions opt;
  opt.exact_splits = true;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  Labels pred = tree.Predict(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(Accuracy(y, pred).ValueOrDie(), 1.0);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Matrix x;
  Labels y;
  MakeBlobs(300, &x, &y);
  DecisionTreeOptions opt;
  opt.max_depth = 1;
  DecisionTree stump(opt);
  ASSERT_TRUE(stump.Fit(x, y).ok());
  EXPECT_LE(stump.num_nodes(), 3u);  // root + two leaves
}

TEST(DecisionTreeTest, PureInputIsSingleLeaf) {
  Matrix x(10, 1);
  Labels y(10, 7);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  Labels pred = tree.Predict(x).ValueOrDie();
  for (int32_t p : pred) EXPECT_EQ(p, 7);
}

TEST(DecisionTreeTest, ArbitraryLabelValues) {
  Matrix x;
  Labels y;
  MakeBlobs(200, &x, &y);
  for (auto& v : y) v = v == 0 ? -100 : 42;  // remapped labels
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.classes(), (std::vector<int32_t>{-100, 42}));
  Labels pred = tree.Predict(x).ValueOrDie();
  EXPECT_GT(Accuracy(y, pred).ValueOrDie(), 0.95);
}

TEST(DecisionTreeTest, ProbaAndConfidenceConsistent) {
  Matrix x;
  Labels y;
  MakeBlobs(300, &x, &y);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  auto p0 = tree.PredictProba(x, 0).ValueOrDie();
  auto p1 = tree.PredictProba(x, 1).ValueOrDie();
  auto conf = tree.PredictConfidence(x).ValueOrDie();
  for (size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(p0[i] + p1[i], 1.0, 1e-6);
    EXPECT_NEAR(conf[i], std::max(p0[i], p1[i]), 1e-6);
    EXPECT_GE(conf[i], 0.5 - 1e-9);
  }
  EXPECT_FALSE(tree.PredictProba(x, 99).ok());  // unseen class
}

TEST(DecisionTreeTest, InputValidation) {
  DecisionTree tree;
  Matrix empty;
  Labels none;
  EXPECT_FALSE(tree.Fit(empty, none).ok());
  Matrix x(3, 1);
  Labels y = {0, 1};
  EXPECT_FALSE(tree.Fit(x, y).ok());  // length mismatch
  // Predict before fit.
  EXPECT_FALSE(tree.Predict(x).ok());
  // Feature-count mismatch after fit.
  Labels y3 = {0, 1, 0};
  Matrix x1(3, 1);
  x1.Set(0, 0, 1);
  x1.Set(1, 0, 2);
  x1.Set(2, 0, 3);
  ASSERT_TRUE(tree.Fit(x1, y3).ok());
  Matrix x2(3, 2);
  EXPECT_FALSE(tree.Predict(x2).ok());
}

TEST(DecisionTreeTest, NaNRowsRouteLeftWithoutCrashing) {
  Matrix x(6, 1);
  Labels y = {0, 0, 0, 1, 1, 1};
  x.Set(0, 0, 1.0);
  x.Set(1, 0, 2.0);
  x.Set(2, 0, std::nan(""));
  x.Set(3, 0, 10.0);
  x.Set(4, 0, 11.0);
  x.Set(5, 0, 12.0);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  auto pred = tree.Predict(x).ValueOrDie();
  EXPECT_EQ(pred.size(), 6u);
}

TEST(DecisionTreeTest, SerializationRoundTripPreservesPredictions) {
  Matrix x;
  Labels y;
  MakeBlobs(400, &x, &y, 9);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  ByteWriter w;
  tree.Serialize(&w);
  ByteReader r(w.data());
  auto back = DecisionTree::DeserializeBody(&r).ValueOrDie();
  EXPECT_EQ(tree.Predict(x).ValueOrDie(), back->Predict(x).ValueOrDie());
  EXPECT_EQ(back->num_nodes(), tree.num_nodes());
}

/// Property sweep: accuracy floor holds across seeds and sizes.
class TreeSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeSweepTest, AccuracyFloorOnBlobs) {
  auto [n, seed] = GetParam();
  Matrix x;
  Labels y;
  MakeBlobs(static_cast<size_t>(n), &x, &y, static_cast<uint64_t>(seed));
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, tree.Predict(x).ValueOrDie()).ValueOrDie(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, TreeSweepTest,
    ::testing::Combine(::testing::Values(50, 200, 1000),
                       ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace mlcs::ml
