/// Database persistence: SaveTo/LoadFrom round-trips the catalog —
/// including stored-model BLOBs, which is how trained models survive a
/// restart (paper §3.1 model storage).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "ml/naive_bayes.h"
#include "ml/pickle.h"
#include "modelstore/model_store.h"
#include "sql/database.h"
#include "storage/table_io.h"

namespace mlcs {
namespace {

std::string TempDirFor(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(PersistenceTest, TablesRoundTrip) {
  std::string dir = TempDirFor("db_roundtrip");
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE a (x INTEGER, s VARCHAR);"
                     "INSERT INTO a VALUES (1, 'one'), (2, NULL);"
                     "CREATE TABLE b (y DOUBLE);"
                     "INSERT INTO b VALUES (0.5);")
                  .ok());
  ASSERT_TRUE(db.SaveTo(dir).ok());

  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  auto a = restored.Query("SELECT * FROM a ORDER BY x").ValueOrDie();
  EXPECT_EQ(a->num_rows(), 2u);
  EXPECT_EQ(a->GetValue(0, 1).ValueOrDie(), Value::Varchar("one"));
  EXPECT_TRUE(a->GetValue(1, 1).ValueOrDie().is_null());
  auto b = restored.Query("SELECT y FROM b").ValueOrDie();
  EXPECT_DOUBLE_EQ(b->GetValue(0, 0).ValueOrDie().double_value(), 0.5);
}

TEST(PersistenceTest, StoredModelsSurviveRestart) {
  std::string dir = TempDirFor("db_models");
  ml::Matrix x(20, 1);
  ml::Labels y(20);
  for (size_t i = 0; i < 20; ++i) {
    x.Set(i, 0, static_cast<double>(i));
    y[i] = i < 10 ? 0 : 1;
  }
  {
    Database db;
    modelstore::ModelStore store(&db);
    ASSERT_TRUE(store.Init().ok());
    ml::NaiveBayes nb;
    ASSERT_TRUE(nb.Fit(x, y).ok());
    ASSERT_TRUE(store.SaveModel("survivor", nb, 0.99, 20).ok());
    ASSERT_TRUE(db.SaveTo(dir).ok());
  }
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  modelstore::ModelStore store(&restored);
  ASSERT_TRUE(store.Init().ok());  // table already present → no-op
  auto model = store.LoadModel("survivor").ValueOrDie();
  EXPECT_EQ(model->type(), ml::ModelType::kNaiveBayes);
  auto pred = model->Predict(x).ValueOrDie();
  EXPECT_EQ(pred.size(), 20u);
  EXPECT_DOUBLE_EQ(store.GetInfo("survivor").ValueOrDie().accuracy, 0.99);
}

TEST(PersistenceTest, LoadReplacesExistingTables) {
  std::string dir = TempDirFor("db_replace");
  Database source;
  ASSERT_TRUE(source.Run("CREATE TABLE t (x INTEGER);"
                         "INSERT INTO t VALUES (42);")
                  .ok());
  ASSERT_TRUE(source.SaveTo(dir).ok());
  Database target;
  ASSERT_TRUE(target.Run("CREATE TABLE t (x INTEGER);"
                         "INSERT INTO t VALUES (7);")
                  .ok());
  ASSERT_TRUE(target.LoadFrom(dir).ok());
  EXPECT_EQ(target.Query("SELECT x FROM t")
                .ValueOrDie()
                ->GetValue(0, 0)
                .ValueOrDie(),
            Value::Int32(42));
}

TEST(PersistenceTest, MissingDirReported) {
  Database db;
  EXPECT_FALSE(db.LoadFrom("/no/such/dir").ok());
  EXPECT_TRUE(db.Query("CREATE TABLE t (x INTEGER)").ok());
  // SaveTo creates its target directory when it can; a path rooted under
  // an unwritable filesystem must still report cleanly.
  EXPECT_FALSE(db.SaveTo("/proc/no/such/dir").ok());
}

TEST(PersistenceTest, EmptyDatabaseSavesCleanly) {
  std::string dir = TempDirFor("db_empty");
  Database db;
  ASSERT_TRUE(db.SaveTo(dir).ok());
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  EXPECT_TRUE(restored.catalog().ListTables().empty());
}

/// Full durability loop over a multi-block table: results after reopening
/// from disk are bit-identical, blocks attach lazily (nothing resident
/// until a mutating access), and SELECTs never force promotion.
TEST(PersistenceTest, MultiBlockRoundTripIsLazyAndBitIdentical) {
  std::string dir = TempDirFor("db_multiblock");
  setenv("MLCS_BLOCK_ROWS", "256", 1);
  TablePtr before;
  {
    Database db;
    ASSERT_TRUE(db.Query("CREATE TABLE big (x INTEGER, d DOUBLE,"
                         " s VARCHAR)")
                    .ok());
    for (int batch = 0; batch < 10; ++batch) {
      std::string insert = "INSERT INTO big VALUES ";
      for (int i = 0; i < 100; ++i) {
        int v = batch * 100 + i;
        if (i > 0) insert += ", ";
        insert += "(";
        insert += std::to_string(v);
        insert += ", ";
        insert += std::to_string(v);
        insert += ".25, ";
        if (v % 7 == 0) {
          insert += "NULL";
        } else {
          insert += "'row";
          insert += std::to_string(v);
          insert += "'";
        }
        insert += ")";
      }
      ASSERT_TRUE(db.Query(insert).ok());
    }
    before = db.Query("SELECT * FROM big ORDER BY x").ValueOrDie();
    ASSERT_TRUE(db.SaveTo(dir).ok());
  }
  unsetenv("MLCS_BLOCK_ROWS");

  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  // 1000 rows at 256 rows/block → 4 blocks, all still on disk.
  EXPECT_FALSE(restored.catalog().IsResident("big"));
  TablePtr after =
      restored.Query("SELECT * FROM big ORDER BY x").ValueOrDie();
  EXPECT_TRUE(before->Equals(*after));
  // Reads served the stored entry; no promotion happened.
  EXPECT_FALSE(restored.catalog().IsResident("big"));
  // A mutating access (INSERT goes through GetTable) promotes.
  ASSERT_TRUE(
      restored.Query("INSERT INTO big VALUES (9999, 1.0, 'z')").ok());
  EXPECT_TRUE(restored.catalog().IsResident("big"));
  EXPECT_EQ(restored.Query("SELECT COUNT(*) FROM big")
                .ValueOrDie()
                ->GetValue(0, 0)
                .ValueOrDie(),
            Value::Int64(1001));
}

/// Save → reload → modify → save → reload in ONE process: the second
/// reload rewrites the same block paths, so scans must miss the global
/// buffer pool's chunks from the first load (save generations key the
/// pool) instead of silently serving pre-save data.
TEST(PersistenceTest, ResaveInOneProcessIsNotServedStaleFromThePool) {
  std::string dir = TempDirFor("db_resave_pool");
  setenv("MLCS_BLOCK_ROWS", "256", 1);
  {
    Database db;
    ASSERT_TRUE(db.Run("CREATE TABLE t (x INTEGER);").ok());
    for (int batch = 0; batch < 4; ++batch) {
      std::string insert = "INSERT INTO t VALUES (0)";
      for (int i = 1; i < 256; ++i) insert += ", (0)";
      ASSERT_TRUE(db.Run(insert).ok());
    }
    ASSERT_TRUE(db.SaveTo(dir).ok());
  }
  {
    Database db;
    ASSERT_TRUE(db.LoadFrom(dir).ok());
    // Scan while stored: fills the global pool with this save's chunks.
    EXPECT_EQ(db.Query("SELECT SUM(x) FROM t")
                  .ValueOrDie()
                  ->GetValue(0, 0)
                  .ValueOrDie(),
              Value::Int64(0));
    ASSERT_TRUE(db.Run("UPDATE t SET x = 1;").ok());
    ASSERT_TRUE(db.SaveTo(dir).ok());
    ASSERT_TRUE(db.LoadFrom(dir).ok());  // re-attach from the new save
    EXPECT_EQ(db.Query("SELECT SUM(x) FROM t")
                  .ValueOrDie()
                  ->GetValue(0, 0)
                  .ValueOrDie(),
              Value::Int64(1024));
  }
  unsetenv("MLCS_BLOCK_ROWS");
}

/// Pre-block-storage layouts (tables.txt + monolithic .mlt files) still
/// load.
TEST(PersistenceTest, LegacyV1LayoutStillLoads) {
  std::string dir = TempDirFor("db_legacy");
  Schema schema;
  schema.AddField("x", TypeId::kInt32);
  auto t = Table::Make(std::move(schema));
  ASSERT_TRUE(t->AppendRow({Value::Int32(5)}).ok());
  ASSERT_TRUE(SaveTable(*t, dir + "/old.mlt").ok());
  {
    std::FILE* f = std::fopen((dir + "/tables.txt").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("old\n", f);
    std::fclose(f);
  }
  Database db;
  ASSERT_TRUE(db.LoadFrom(dir).ok());
  EXPECT_EQ(db.Query("SELECT x FROM old")
                .ValueOrDie()
                ->GetValue(0, 0)
                .ValueOrDie(),
            Value::Int32(5));
}

}  // namespace
}  // namespace mlcs
