#include "exec/sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace mlcs::exec {
namespace {

TablePtr People() {
  Schema s;
  s.AddField("age", TypeId::kInt32);
  s.AddField("name", TypeId::kVarchar);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(30), Value::Varchar("carol")}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(25), Value::Varchar("alice")}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(30), Value::Varchar("bob")}).ok());
  return t;
}

TEST(SortTest, AscendingSingleKey) {
  auto out = SortTable(*People(), {{"age", false}}).ValueOrDie();
  EXPECT_EQ(out->column(0)->i32_data(), (std::vector<int32_t>{25, 30, 30}));
  // Stability: carol (row 0) before bob (row 2) among equal ages.
  EXPECT_EQ(out->GetValue(1, 1).ValueOrDie(), Value::Varchar("carol"));
  EXPECT_EQ(out->GetValue(2, 1).ValueOrDie(), Value::Varchar("bob"));
}

TEST(SortTest, DescendingKey) {
  auto out = SortTable(*People(), {{"age", true}}).ValueOrDie();
  EXPECT_EQ(out->column(0)->i32_data(), (std::vector<int32_t>{30, 30, 25}));
}

TEST(SortTest, MultiKey) {
  auto out =
      SortTable(*People(), {{"age", false}, {"name", false}}).ValueOrDie();
  EXPECT_EQ(out->GetValue(0, 1).ValueOrDie(), Value::Varchar("alice"));
  EXPECT_EQ(out->GetValue(1, 1).ValueOrDie(), Value::Varchar("bob"));
  EXPECT_EQ(out->GetValue(2, 1).ValueOrDie(), Value::Varchar("carol"));
}

TEST(SortTest, NullsSortFirstAscending) {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  ASSERT_TRUE(t->AppendRow({Value::Int32(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::MakeNull(TypeId::kInt32)}).ok());
  auto out = SortTable(*t, {{"x", false}}).ValueOrDie();
  EXPECT_TRUE(out->GetValue(0, 0).ValueOrDie().is_null());
  auto desc = SortTable(*t, {{"x", true}}).ValueOrDie();
  EXPECT_TRUE(desc->GetValue(1, 0).ValueOrDie().is_null());
}

TEST(SortTest, MissingColumnRejected) {
  EXPECT_FALSE(SortTable(*People(), {{"zzz", false}}).ok());
  EXPECT_FALSE(SortTable(*People(), {}).ok());
}

TEST(SortTest, RandomizedMatchesStdSort) {
  Rng rng(5);
  Schema s;
  s.AddField("x", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.NextGaussian();
    values.push_back(v);
    ASSERT_TRUE(t->AppendRow({Value::Double(v)}).ok());
  }
  auto out = SortTable(*t, {{"x", false}}).ValueOrDie();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(out->column(0)->f64_data(), values);
}

}  // namespace
}  // namespace mlcs::exec
