#include "udf/udf.h"

#include <gtest/gtest.h>

#include "exec/kernels.h"

namespace mlcs::udf {
namespace {

ScalarUdfEntry DoubleItUdf() {
  ScalarUdfEntry entry;
  entry.name = "double_it";
  entry.param_types = {TypeId::kInt32};
  entry.typed = true;
  entry.return_type = TypeId::kInt32;
  entry.has_return_type = true;
  entry.fn = [](const std::vector<ColumnPtr>& args,
                size_t /*num_rows*/) -> Result<ColumnPtr> {
    return exec::BinaryKernel(exec::BinOpKind::kMul, *args[0],
                              *Column::Constant(Value::Int32(2), 1));
  };
  return entry;
}

TEST(UdfRegistryTest, RegisterAndCallScalar) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.RegisterScalar(DoubleItUdf()).ok());
  EXPECT_TRUE(reg.HasScalar("DOUBLE_IT"));  // case-insensitive
  auto out = reg.CallScalar("double_it", {Column::FromInt32({1, 2, 3})}, 3)
                 .ValueOrDie();
  EXPECT_EQ(out->i32_data(), (std::vector<int32_t>{2, 4, 6}));
}

TEST(UdfRegistryTest, DuplicateRejectedUnlessReplace) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.RegisterScalar(DoubleItUdf()).ok());
  EXPECT_EQ(reg.RegisterScalar(DoubleItUdf()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(reg.RegisterScalar(DoubleItUdf(), /*or_replace=*/true).ok());
}

TEST(UdfRegistryTest, ArityChecked) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.RegisterScalar(DoubleItUdf()).ok());
  EXPECT_FALSE(reg.CallScalar("double_it", {}, 0).ok());
  EXPECT_FALSE(reg.CallScalar("double_it",
                              {Column::FromInt32({1}),
                               Column::FromInt32({1})},
                              1)
                   .ok());
}

TEST(UdfRegistryTest, ArgumentsCoercedToDeclaredTypes) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.RegisterScalar(DoubleItUdf()).ok());
  // int64 input is cast to the declared INT32 parameter.
  auto out = reg.CallScalar("double_it", {Column::FromInt64({5})}, 1)
                 .ValueOrDie();
  EXPECT_EQ(out->type(), TypeId::kInt32);
  EXPECT_EQ(out->i32_data()[0], 10);
  // Uncastable input fails.
  EXPECT_FALSE(
      reg.CallScalar("double_it", {Column::FromStrings({"x"})}, 1).ok());
}

TEST(UdfRegistryTest, ResultLengthValidated) {
  UdfRegistry reg;
  ScalarUdfEntry bad;
  bad.name = "wrong_len";
  bad.fn = [](const std::vector<ColumnPtr>&, size_t) -> Result<ColumnPtr> {
    return Column::FromInt32({1, 2});  // always 2 rows
  };
  ASSERT_TRUE(reg.RegisterScalar(std::move(bad)).ok());
  EXPECT_FALSE(reg.CallScalar("wrong_len", {}, 5).ok());
  EXPECT_TRUE(reg.CallScalar("wrong_len", {}, 2).ok());
}

TEST(UdfRegistryTest, ReturnTypeCast) {
  UdfRegistry reg;
  ScalarUdfEntry entry;
  entry.name = "as_double";
  entry.return_type = TypeId::kDouble;
  entry.has_return_type = true;
  entry.fn = [](const std::vector<ColumnPtr>&, size_t n) -> Result<ColumnPtr> {
    return Column::Constant(Value::Int32(7), n);
  };
  ASSERT_TRUE(reg.RegisterScalar(std::move(entry)).ok());
  auto out = reg.CallScalar("as_double", {}, 3).ValueOrDie();
  EXPECT_EQ(out->type(), TypeId::kDouble);
}

TEST(UdfRegistryTest, RowAtATimeAdapter) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.RegisterScalarRowAtATime(
                     "add_row", {TypeId::kInt32, TypeId::kInt32},
                     TypeId::kInt32,
                     [](const std::vector<Value>& args) -> Result<Value> {
                       return Value::Int32(args[0].int32_value() +
                                           args[1].int32_value());
                     })
                  .ok());
  auto entry = reg.GetScalar("add_row").ValueOrDie();
  EXPECT_TRUE(entry->row_at_a_time);
  auto out = reg.CallScalar("add_row",
                            {Column::FromInt32({1, 2, 3}),
                             Column::FromInt32({10})},  // broadcast
                            3)
                 .ValueOrDie();
  EXPECT_EQ(out->i32_data(), (std::vector<int32_t>{11, 12, 13}));
}

TEST(UdfRegistryTest, TableUdfSchemaAlignment) {
  UdfRegistry reg;
  TableUdfEntry entry;
  entry.name = "make_table";
  Schema declared;
  declared.AddField("a", TypeId::kInt64);
  declared.AddField("b", TypeId::kVarchar);
  entry.return_schema = declared;
  entry.fn = [](const std::vector<ColumnPtr>&) -> Result<TablePtr> {
    Schema s;
    s.AddField("x", TypeId::kInt32);  // type + name differ from declared
    s.AddField("y", TypeId::kVarchar);
    auto t = Table::Make(std::move(s));
    MLCS_RETURN_IF_ERROR(
        t->AppendRow({Value::Int32(1), Value::Varchar("z")}));
    return t;
  };
  ASSERT_TRUE(reg.RegisterTable(std::move(entry)).ok());
  auto out = reg.CallTable("make_table", {}).ValueOrDie();
  EXPECT_EQ(out->schema().field(0).name, "a");
  EXPECT_EQ(out->schema().field(0).type, TypeId::kInt64);
  EXPECT_EQ(out->GetValue(0, 0).ValueOrDie(), Value::Int64(1));
}

TEST(UdfRegistryTest, TableUdfColumnCountMismatchRejected) {
  UdfRegistry reg;
  TableUdfEntry entry;
  entry.name = "bad_table";
  entry.return_schema.AddField("a", TypeId::kInt32);
  entry.return_schema.AddField("b", TypeId::kInt32);
  entry.fn = [](const std::vector<ColumnPtr>&) -> Result<TablePtr> {
    Schema s;
    s.AddField("only_one", TypeId::kInt32);
    return Table::Make(std::move(s));
  };
  ASSERT_TRUE(reg.RegisterTable(std::move(entry)).ok());
  EXPECT_FALSE(reg.CallTable("bad_table", {}).ok());
}

TEST(UdfRegistryTest, DropAndList) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.RegisterScalar(DoubleItUdf()).ok());
  EXPECT_EQ(reg.ListScalar(), std::vector<std::string>{"double_it"});
  EXPECT_TRUE(reg.Drop("double_it").ok());
  EXPECT_FALSE(reg.HasScalar("double_it"));
  EXPECT_FALSE(reg.Drop("double_it").ok());
  EXPECT_TRUE(reg.Drop("double_it", /*if_exists=*/true).ok());
}

TEST(UdfRegistryTest, MissingFunctionReported) {
  UdfRegistry reg;
  auto r = reg.CallScalar("ghost", {}, 1);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  auto t = reg.CallTable("ghost", {});
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mlcs::udf
