#include "common/byte_buffer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mlcs {
namespace {

TEST(ByteBufferTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI32(-42);
  w.WriteI64(-1LL << 40);
  w.WriteDouble(3.14159);
  w.WriteBool(true);
  w.WriteBool(false);

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8().ValueOrDie(), 0xAB);
  EXPECT_EQ(r.ReadU16().ValueOrDie(), 0x1234);
  EXPECT_EQ(r.ReadU32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().ValueOrDie(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI32().ValueOrDie(), -42);
  EXPECT_EQ(r.ReadI64().ValueOrDie(), -1LL << 40);
  EXPECT_DOUBLE_EQ(r.ReadDouble().ValueOrDie(), 3.14159);
  EXPECT_TRUE(r.ReadBool().ValueOrDie());
  EXPECT_FALSE(r.ReadBool().ValueOrDie());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBufferTest, StringRoundTrip) {
  ByteWriter w;
  w.WriteString("");
  w.WriteString("hello");
  std::string binary("\x00\x01\xFFzzz", 6);
  w.WriteString(binary);

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadString().ValueOrDie(), "");
  EXPECT_EQ(r.ReadString().ValueOrDie(), "hello");
  EXPECT_EQ(r.ReadString().ValueOrDie(), binary);
}

TEST(ByteBufferTest, TruncatedReadsReportOutOfRange) {
  ByteWriter w;
  w.WriteU32(7);
  ByteReader r(w.data());
  ASSERT_TRUE(r.Skip(2).ok());
  auto res = r.ReadU32();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
}

TEST(ByteBufferTest, TruncatedStringBodyReported) {
  ByteWriter w;
  w.WriteU32(100);  // claims 100 bytes follow
  w.WriteRaw("abc", 3);
  ByteReader r(w.data());
  auto res = r.ReadString();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
}

TEST(ByteBufferTest, VarintKnownEncodings) {
  ByteWriter w;
  w.WriteVarint(0);
  w.WriteVarint(127);
  w.WriteVarint(128);
  w.WriteVarint(300);
  EXPECT_EQ(w.size(), 1u + 1u + 2u + 2u);
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadVarint().ValueOrDie(), 0u);
  EXPECT_EQ(r.ReadVarint().ValueOrDie(), 127u);
  EXPECT_EQ(r.ReadVarint().ValueOrDie(), 128u);
  EXPECT_EQ(r.ReadVarint().ValueOrDie(), 300u);
}

/// Property: varint round-trips arbitrary 64-bit values.
TEST(ByteBufferTest, VarintRandomRoundTrip) {
  Rng rng(123);
  ByteWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes: shift a random value by a random amount.
    uint64_t v = rng.NextU64() >> (rng.NextBounded(64));
    values.push_back(v);
    w.WriteVarint(v);
  }
  ByteReader r(w.data());
  for (uint64_t expected : values) {
    EXPECT_EQ(r.ReadVarint().ValueOrDie(), expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBufferTest, TakeStringMovesAndClears) {
  ByteWriter w;
  w.WriteRaw("abc", 3);
  std::string s = w.TakeString();
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(w.size(), 0u);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace mlcs
