#include "exec/hash_join.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace mlcs::exec {
namespace {

TablePtr VotersTable() {
  Schema s;
  s.AddField("voter_id", TypeId::kInt32);
  s.AddField("precinct", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(1), Value::Int32(10)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(2), Value::Int32(20)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(3), Value::Int32(10)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(4), Value::Int32(99)}).ok());
  return t;
}

TablePtr PrecinctsTable() {
  Schema s;
  s.AddField("precinct", TypeId::kInt32);
  s.AddField("dem_votes", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(10), Value::Int32(100)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(20), Value::Int32(200)}).ok());
  return t;
}

TEST(HashJoinTest, InnerJoinMatchesAndDropsUnmatched) {
  auto out = HashJoin(*VotersTable(), *PrecinctsTable(), {"precinct"},
                      {"precinct"})
                 .ValueOrDie();
  EXPECT_EQ(out->num_rows(), 3u);  // voter 4 (precinct 99) dropped
  // Duplicate right column renamed.
  EXPECT_TRUE(out->schema().FieldIndex("precinct_r").has_value());
  // Check voter 1 got dem_votes 100.
  auto dem = out->ColumnByName("dem_votes").ValueOrDie();
  auto vid = out->ColumnByName("voter_id").ValueOrDie();
  for (size_t i = 0; i < out->num_rows(); ++i) {
    int32_t v = vid->i32_data()[i];
    int32_t d = dem->i32_data()[i];
    if (v == 1 || v == 3) {
      EXPECT_EQ(d, 100);
    }
    if (v == 2) {
      EXPECT_EQ(d, 200);
    }
  }
}

TEST(HashJoinTest, LeftJoinPadsWithNulls) {
  auto out = HashJoin(*VotersTable(), *PrecinctsTable(), {"precinct"},
                      {"precinct"}, JoinType::kLeft)
                 .ValueOrDie();
  EXPECT_EQ(out->num_rows(), 4u);
  auto vid = out->ColumnByName("voter_id").ValueOrDie();
  auto dem = out->ColumnByName("dem_votes").ValueOrDie();
  for (size_t i = 0; i < out->num_rows(); ++i) {
    if (vid->i32_data()[i] == 4) {
      EXPECT_TRUE(dem->IsNull(i));
    }
  }
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  Schema rs;
  rs.AddField("k", TypeId::kInt32);
  rs.AddField("tag", TypeId::kVarchar);
  auto right = Table::Make(std::move(rs));
  ASSERT_TRUE(right->AppendRow({Value::Int32(10), Value::Varchar("a")}).ok());
  ASSERT_TRUE(right->AppendRow({Value::Int32(10), Value::Varchar("b")}).ok());
  Schema ls;
  ls.AddField("k", TypeId::kInt32);
  auto left = Table::Make(std::move(ls));
  ASSERT_TRUE(left->AppendRow({Value::Int32(10)}).ok());
  auto out = HashJoin(*left, *right, {"k"}, {"k"}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Schema s;
  s.AddField("k", TypeId::kInt32);
  auto left = Table::Make(s);
  ASSERT_TRUE(left->AppendRow({Value::MakeNull(TypeId::kInt32)}).ok());
  auto right = Table::Make(s);
  ASSERT_TRUE(right->AppendRow({Value::MakeNull(TypeId::kInt32)}).ok());
  auto inner = HashJoin(*left, *right, {"k"}, {"k"}).ValueOrDie();
  EXPECT_EQ(inner->num_rows(), 0u);
  auto lj = HashJoin(*left, *right, {"k"}, {"k"}, JoinType::kLeft)
                .ValueOrDie();
  EXPECT_EQ(lj->num_rows(), 1u);  // padded, not matched
}

TEST(HashJoinTest, MultiKeyJoin) {
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kVarchar);
  auto left = Table::Make(s);
  ASSERT_TRUE(left->AppendRow({Value::Int32(1), Value::Varchar("x")}).ok());
  ASSERT_TRUE(left->AppendRow({Value::Int32(1), Value::Varchar("y")}).ok());
  auto right = Table::Make(s);
  ASSERT_TRUE(right->AppendRow({Value::Int32(1), Value::Varchar("y")}).ok());
  auto out = HashJoin(*left, *right, {"a", "b"}, {"a", "b"}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 1u);
}

TEST(HashJoinTest, KeyTypeMismatchRejected) {
  Schema ls;
  ls.AddField("k", TypeId::kInt32);
  auto left = Table::Make(std::move(ls));
  Schema rs;
  rs.AddField("k", TypeId::kVarchar);
  auto right = Table::Make(std::move(rs));
  EXPECT_FALSE(HashJoin(*left, *right, {"k"}, {"k"}).ok());
}

TEST(HashJoinTest, EmptyKeyListRejected) {
  auto t = VotersTable();
  EXPECT_FALSE(HashJoin(*t, *t, {}, {}).ok());
}

/// Property: hash join equals a brute-force nested-loop oracle on random
/// inputs with many duplicate keys.
TEST(HashJoinTest, RandomizedAgainstNestedLoopOracle) {
  Rng rng(2024);
  Schema ls;
  ls.AddField("k", TypeId::kInt32);
  ls.AddField("lv", TypeId::kInt32);
  auto left = Table::Make(std::move(ls));
  Schema rs;
  rs.AddField("k", TypeId::kInt32);
  rs.AddField("rv", TypeId::kInt32);
  auto right = Table::Make(std::move(rs));
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(left->AppendRow({Value::Int32(static_cast<int32_t>(
                                     rng.NextBounded(20))),
                                 Value::Int32(i)})
                    .ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(right->AppendRow({Value::Int32(static_cast<int32_t>(
                                      rng.NextBounded(25))),
                                  Value::Int32(1000 + i)})
                    .ok());
  }
  auto out = HashJoin(*left, *right, {"k"}, {"k"}).ValueOrDie();

  // Oracle: multiset of (lv, rv) pairs.
  std::multiset<std::pair<int32_t, int32_t>> expected;
  const auto& lk = left->column(0)->i32_data();
  const auto& lv = left->column(1)->i32_data();
  const auto& rk = right->column(0)->i32_data();
  const auto& rv = right->column(1)->i32_data();
  for (size_t i = 0; i < lk.size(); ++i) {
    for (size_t j = 0; j < rk.size(); ++j) {
      if (lk[i] == rk[j]) expected.emplace(lv[i], rv[j]);
    }
  }
  std::multiset<std::pair<int32_t, int32_t>> actual;
  auto out_lv = out->ColumnByName("lv").ValueOrDie();
  auto out_rv = out->ColumnByName("rv").ValueOrDie();
  for (size_t i = 0; i < out->num_rows(); ++i) {
    actual.emplace(out_lv->i32_data()[i], out_rv->i32_data()[i]);
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace mlcs::exec
