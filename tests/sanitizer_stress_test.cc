// Concurrency stress scenarios for the shared-memory hot paths: ThreadPool,
// the parallel UDF driver, and the global model cache. These run in every
// build, but their real job is the TSan pass (`scripts/check.sh --full` /
// -DMLCS_SANITIZE=thread), where they drive the cross-thread interleavings
// a data race would surface in.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bufpool/buffer_pool.h"
#include "bufpool/zone_map.h"
#include "client/inference_client.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/kernels.h"
#include "ml/matrix.h"
#include "ml/naive_bayes.h"
#include "ml/pickle.h"
#include "modelstore/model_cache.h"
#include "modelstore/model_store.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_server.h"
#include "sql/database.h"
#include "udf/parallel.h"
#include "udf/udf.h"

namespace mlcs {
namespace {

// Small iteration counts on purpose: TSan is ~10x slower and the value is
// in the interleavings, not the volume.
constexpr int kThreads = 4;
constexpr int kIters = 32;

TEST(SanitizerStressTest, MutexDetectorBookkeepingChurn) {
  // The deadlock detector's own state — per-thread held stacks, the shared
  // lock-order graph, and node erasure in ~Mutex — exercised under real
  // contention with detection forced on (sanitizer builds default to on,
  // but Release TSan-less runs of this suite should cover it too). Threads
  // interleave nested consistent-order acquisitions, try-lock back-offs,
  // CondVar waits (which unhook and re-hook the held set), and mutex
  // create/destroy cycles that shrink the graph while others grow it.
  const bool detect_before = Mutex::DeadlockDetectionEnabled();
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  {
    Mutex outer{"stress.outer"};
    Mutex inner{"stress.inner"};
    CondVar cv;
    int generation = 0;  // guarded by outer
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          {
            MutexLock lo(&outer);
            MutexLock li(&inner);
            ++generation;
          }
          if (t % 2 == 0) {
            // Reverse order only via try-lock: must not record an edge.
            MutexLock li(&inner);
            if (outer.TryLock()) outer.Unlock();
          } else {
            // Short-lived mutexes join and leave the order graph.
            Mutex scratch{"stress.scratch"};
            MutexLock lo(&outer);
            MutexLock ls(&scratch);
          }
          {
            MutexLock lo(&outer);
            const int target = generation;
            cv.NotifyAll();
            while (generation == target && generation % 2 != 0) {
              if (!cv.WaitUntil(lo, std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(1))) {
                break;
              }
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    MutexLock lo(&outer);
    EXPECT_EQ(generation, kThreads * kIters);
  }
  Mutex::SetDeadlockDetectionForTesting(detect_before);
}

TEST(SanitizerStressTest, ThreadPoolConcurrentSubmitters) {
  // Many external threads hammering Submit() on one pool races the queue,
  // the condition variable, and shutdown.
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mu;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto fut = pool.Submit([&executed] { executed.fetch_add(1); });
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(fut));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& f : futures) f.wait();
  EXPECT_EQ(executed.load(), kThreads * kIters);
}

TEST(SanitizerStressTest, ThreadPoolConcurrentParallelFor) {
  // Overlapping ParallelFor calls from distinct threads share the worker
  // queue; each call's chunks must still cover its own range exactly once.
  ThreadPool pool(3);
  std::vector<std::thread> drivers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        std::vector<std::atomic<int>> hits(512);
        pool.ParallelFor(hits.size(),
                         [&hits](size_t j) { hits[j].fetch_add(1); });
        for (auto& h : hits) {
          if (h.load() != 1) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SanitizerStressTest, ThreadPoolShutdownWhileSubmitting) {
  // Destroying a pool while another thread races Submit() exercises the
  // shutdown handshake. The submitter stops at the first failed handoff.
  for (int round = 0; round < 8; ++round) {
    std::atomic<bool> stop{false};
    auto pool = std::make_unique<ThreadPool>(2);
    std::thread submitter([&] {
      while (!stop.load()) {
        pool->Submit([] {}).wait();
      }
    });
    for (int i = 0; i < kIters; ++i) {
      pool->Submit([] {}).wait();
    }
    stop.store(true);
    submitter.join();
    pool.reset();  // full drain + join with no task in flight
  }
}

TEST(SanitizerStressTest, ParallelUdfConcurrentCallers) {
  // Multiple threads run the chunked UDF driver against one shared
  // registry; the UDF itself touches shared state through an atomic only.
  udf::UdfRegistry registry;
  udf::ScalarUdfEntry entry;
  entry.name = "plus_one";
  std::atomic<int64_t> total_rows_seen{0};
  entry.fn = [&total_rows_seen](const std::vector<ColumnPtr>& args,
                                size_t num_rows) -> Result<ColumnPtr> {
    total_rows_seen.fetch_add(static_cast<int64_t>(num_rows));
    return exec::BinaryKernel(exec::BinOpKind::kAdd, *args[0],
                              *Column::Constant(Value::Int64(1), 1));
  };
  ASSERT_TRUE(registry.RegisterScalar(std::move(entry)).ok());

  constexpr size_t kRows = 4096;
  std::vector<int64_t> data(kRows);
  for (size_t i = 0; i < kRows; ++i) data[i] = static_cast<int64_t>(i);
  ColumnPtr input = Column::FromInt64(std::move(data));

  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&] {
      udf::ParallelOptions opt;
      opt.num_chunks = 4;
      opt.min_rows_per_chunk = 1;
      for (int i = 0; i < 8; ++i) {
        auto r = udf::ParallelCallScalar(registry, "plus_one", {input},
                                         kRows, opt);
        if (!r.ok() || r.ValueOrDie()->size() != kRows) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(total_rows_seen.load(),
            static_cast<int64_t>(kThreads * 8 * kRows));
}

TEST(SanitizerStressTest, ParallelUdfConcurrentRegistrationAndCalls) {
  // Registry mutation (RegisterScalar / Drop) racing CallScalar from the
  // parallel driver — the registry's internal lock is the system under test.
  udf::UdfRegistry registry;
  auto make_entry = [](const std::string& name) {
    udf::ScalarUdfEntry e;
    e.name = name;
    e.fn = [](const std::vector<ColumnPtr>& args,
              size_t) -> Result<ColumnPtr> { return args[0]; };
    return e;
  };
  ASSERT_TRUE(registry.RegisterScalar(make_entry("stable")).ok());

  ColumnPtr input = Column::FromInt64({1, 2, 3, 4, 5, 6, 7, 8});
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int i = 0;
    while (!stop.load()) {
      std::string name = "temp_" + std::to_string(i++ % 4);
      (void)registry.RegisterScalar(make_entry(name), /*or_replace=*/true);
      (void)registry.Drop(name, /*if_exists=*/true);
    }
  });
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&] {
      udf::ParallelOptions opt;
      opt.num_chunks = 2;
      opt.min_rows_per_chunk = 1;
      for (int i = 0; i < kIters; ++i) {
        auto r =
            udf::ParallelCallScalar(registry, "stable", {input}, 8, opt);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  stop.store(true);
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
}

std::string FittedBlob(uint64_t seed) {
  Rng rng(seed);
  ml::Matrix x(64, 2);
  ml::Labels y(64);
  for (size_t i = 0; i < 64; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    x.Set(i, 0, cls * 3.0 + rng.NextGaussian());
    x.Set(i, 1, cls * 3.0 + rng.NextGaussian());
    y[i] = cls;
  }
  ml::NaiveBayes nb;
  EXPECT_TRUE(nb.Fit(x, y).ok());
  return ml::pickle::Dumps(nb);
}

TEST(SanitizerStressTest, ModelCacheEvictionChurn) {
  // More distinct blobs than capacity, hit from many threads: every Get
  // races insertion, LRU splice, and eviction of entries other threads
  // still hold shared_ptrs to. Interleaved Clear() calls stress the same
  // paths with the map emptied underneath.
  modelstore::ModelCache cache(2);
  std::vector<std::string> blobs;
  for (uint64_t s = 1; s <= 5; ++s) blobs.push_back(FittedBlob(s));

  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string& blob = blobs[(t + i) % blobs.size()];
        auto r = cache.Get(blob);
        if (!r.ok() || r.ValueOrDie() == nullptr) failures.fetch_add(1);
        if (i % 16 == 15) cache.Clear();
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads * kIters));
}

TEST(SanitizerStressTest, InferenceServerChurn) {
  // The serving path end to end under every concurrent hazard at once:
  // multiple clients hammering the micro-batcher (alternating wire
  // layouts), a mutator retraining and re-saving the served model (so the
  // content-addressed cache keeps missing) plus extra models to force LRU
  // eviction, and finally Stop() while requests are still in flight.
  Database db;
  modelstore::ModelStore store(&db);
  ASSERT_TRUE(store.Init().ok());
  {
    auto seeded = ml::pickle::Loads(FittedBlob(1)).ValueOrDie();
    ASSERT_TRUE(store.SaveModel("m", *seeded, 0.9, 64).ok());
  }
  modelstore::ModelCache cache(2);  // tiny: eviction churn guaranteed
  serve::InferenceServerOptions opts;
  opts.max_queue_requests = 8;  // small: overload paths exercised too
  opts.batch_linger = std::chrono::microseconds(100);
  opts.model_cache = &cache;
  serve::InferenceServer server(&db, &store, opts);
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();

  std::atomic<bool> stop_mutator{false};
  std::atomic<int> unexpected{0};

  std::thread mutator([&] {
    uint64_t seed = 2;
    while (!stop_mutator.load()) {
      // Retrain/replace the served model and park other models to churn
      // both the store's table and the cache's LRU.
      auto retrained = ml::pickle::Loads(FittedBlob(seed++));
      if (!retrained.ok()) {
        unexpected.fetch_add(1);
        continue;
      }
      if (!store.SaveModel("m", *retrained.ValueOrDie(), 0.9, 64).ok()) {
        unexpected.fetch_add(1);
      }
      auto extra = ml::pickle::Loads(FittedBlob(seed + 1000));
      if (extra.ok()) {
        Status saved =
            store.SaveModel("spare_" + std::to_string(seed % 3),
                            *extra.ValueOrDie(), 0.5, 64);
        if (!saved.ok()) unexpected.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      client::InferenceClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        unexpected.fetch_add(1);
        return;
      }
      Rng rng(1000 + c);
      ml::Matrix x(4, 2);
      for (size_t r = 0; r < 4; ++r) {
        x.Set(r, 0, rng.NextGaussian());
        x.Set(r, 1, rng.NextGaussian());
      }
      for (int i = 0; i < kIters; ++i) {
        client::InferenceCallOptions call;
        call.layout = (i % 2 == 0) ? serve::Layout::kColumnar
                                   : serve::Layout::kRowMajor;
        auto response = client.Call("m", x, call);
        if (!response.ok()) {
          // Acceptable only once the server is being stopped under us.
          break;
        }
        switch (response.ValueOrDie().code) {
          case serve::ServeCode::kOk:
            if (response.ValueOrDie().labels.size() != 4u) {
              unexpected.fetch_add(1);
            }
            break;
          case serve::ServeCode::kOverloaded:
          case serve::ServeCode::kShuttingDown:
            break;  // legitimate degradation outcomes
          default:
            unexpected.fetch_add(1);
        }
      }
    });
  }

  // Stop the server while clients are mid-flight — the drain must answer
  // or cleanly refuse everything without a race or a leak.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  for (auto& t : clients) t.join();
  stop_mutator.store(true);
  mutator.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_FALSE(server.running());
}

TEST(SanitizerStressTest, MorselOperatorsShareServingPool) {
  // PR 3's hazard surface: the relational operators fan morsels out over
  // the same ThreadPool the inference server executes its batches on.
  // Several threads run filter + group-by + join + sort queries while
  // clients hammer predict, all multiplexed onto three shared workers.
  // Two properties under test: no data race anywhere in the morsel
  // scheduler / operator partials (TSan), and determinism — every query
  // result under contention must equal the reference computed before the
  // stress started. The pool is created explicitly (CI has one core, so
  // Global() would give a single worker and hide the interleavings).
  ThreadPool pool(3);

  Database db;
  {
    std::string script =
        "CREATE TABLE facts (k INTEGER, v DOUBLE);"
        "CREATE TABLE dim (k INTEGER, name VARCHAR);";
    ASSERT_TRUE(db.Run(script).ok());
    Rng rng(7);
    std::string insert = "INSERT INTO facts VALUES ";
    for (int i = 0; i < 2048; ++i) {
      if (i > 0) insert += ",";
      insert += "(";
      insert += std::to_string(rng.NextBounded(16));
      insert += ",";
      insert += std::to_string(rng.NextDouble());
      insert += ")";
    }
    ASSERT_TRUE(db.Query(insert).ok());
    std::string dims = "INSERT INTO dim VALUES ";
    for (int k = 0; k < 16; ++k) {
      if (k > 0) dims += ",";
      dims += "(";
      dims += std::to_string(k);
      dims += ",'g";
      dims += std::to_string(k);
      dims += "')";
    }
    ASSERT_TRUE(db.Query(dims).ok());
  }
  // 64-row morsels: 32 morsels for element-wise work, 2 for the
  // aggregate's 16x-widened grain — everything actually fans out.
  MorselPolicy policy;
  policy.pool = &pool;
  policy.morsel_rows = 64;
  db.set_exec_policy(policy);

  const std::string kQuery =
      "SELECT d.name, COUNT(*) AS n, SUM(f.v) AS total FROM facts f "
      "JOIN dim d ON f.k = d.k WHERE f.v > 0.25 GROUP BY d.name "
      "ORDER BY total DESC";
  TablePtr reference = db.Query(kQuery).ValueOrDie();
  ASSERT_GT(reference->num_rows(), 0u);

  modelstore::ModelStore store(&db);
  ASSERT_TRUE(store.Init().ok());
  {
    auto seeded = ml::pickle::Loads(FittedBlob(1)).ValueOrDie();
    ASSERT_TRUE(store.SaveModel("m", *seeded, 0.9, 64).ok());
  }
  serve::InferenceServerOptions opts;
  opts.pool = &pool;  // the whole point: serving shares the query pool
  opts.batch_linger = std::chrono::microseconds(100);
  serve::InferenceServer server(&db, &store, opts);
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();

  std::atomic<int> failures{0};
  std::vector<std::thread> queriers;
  for (int t = 0; t < kThreads; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto r = db.Query(kQuery);
        if (!r.ok() || !r.ValueOrDie()->Equals(*reference)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> predictors;
  for (int c = 0; c < 2; ++c) {
    predictors.emplace_back([&, c] {
      client::InferenceClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(500 + c);
      ml::Matrix x(4, 2);
      for (size_t r = 0; r < 4; ++r) {
        x.Set(r, 0, rng.NextGaussian());
        x.Set(r, 1, rng.NextGaussian());
      }
      for (int i = 0; i < kIters; ++i) {
        auto response = client.Call("m", x);
        if (!response.ok() ||
            response.ValueOrDie().code != serve::ServeCode::kOk ||
            response.ValueOrDie().labels.size() != 4u) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : queriers) t.join();
  for (auto& t : predictors) t.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);
}

/// Prepared-plan cache under concurrent DDL churn: readers replay one
/// cached SELECT over a stable table while a DDL thread drops/recreates a
/// different table, bumping the catalog schema version. Every bump
TEST(SanitizerStressTest, TracingConcurrentQueriesAndServing) {
  // The observability layer's hazard surface: tracing enabled while
  // morsel-parallel queries and serving batches run concurrently. Trace
  // contexts install per thread, pool workers attach and record spans
  // from inside operators and predict tasks, and every context flushes
  // into the shared sink — all of it must stay TSan-clean with zero lost
  // answers.
  obs::SetTracingEnabled(true);
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE big (x INTEGER, g INTEGER);").ok());
  std::string values = "INSERT INTO big VALUES (0, 0)";
  for (int i = 1; i < 512; ++i) {
    values += ", (" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
  }
  ASSERT_TRUE(db.Query(values).ok());

  modelstore::ModelStore store(&db);
  ASSERT_TRUE(store.Init().ok());
  {
    auto seeded = ml::pickle::Loads(FittedBlob(1)).ValueOrDie();
    ASSERT_TRUE(store.SaveModel("m", *seeded, 0.9, 64).ok());
  }
  serve::InferenceServer server(&db, &store);
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();

  std::atomic<int> unexpected{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&db, &unexpected] {
      for (int i = 0; i < kIters; ++i) {
        auto r = db.Query(
            "SELECT g, COUNT(*), SUM(x) FROM big WHERE x > 10 GROUP BY g");
        if (!r.ok()) unexpected.fetch_add(1);
      }
    });
  }
  workers.emplace_back([&unexpected, port] {
    client::InferenceClient client;
    if (!client.Connect("127.0.0.1", port).ok()) {
      unexpected.fetch_add(1);
      return;
    }
    Rng rng(7);
    ml::Matrix x(4, 2);
    for (size_t r = 0; r < 4; ++r) {
      x.Set(r, 0, rng.NextGaussian());
      x.Set(r, 1, rng.NextGaussian());
    }
    for (int i = 0; i < kIters; ++i) {
      auto response = client.Call("m", x, {});
      if (!response.ok() ||
          response.ValueOrDie().code != serve::ServeCode::kOk) {
        unexpected.fetch_add(1);
      }
    }
  });
  for (auto& t : workers) t.join();
  server.Stop();
  obs::SetTracingEnabled(false);
  EXPECT_EQ(unexpected.load(), 0);
  // Every traced query and batch flushed into the recorder; spans recorded
  // from pool workers (operators, predicts) must be well-formed.
  std::vector<obs::TraceSpan> spans = obs::FlightRecorder::Global().Query(0);
  EXPECT_FALSE(spans.empty());
  for (const obs::TraceSpan& s : spans) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_GE(s.span_id, 1u);
  }
}

/// invalidates the readers' cached plans mid-flight, so this hammers the
/// cache mutex, the version atomic, and concurrent re-planning of the
/// same SQL text. Readers must never see a wrong answer or an error.
TEST(SanitizerStressTest, PlanCacheConcurrentDdlChurn) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE fixed (x INTEGER);"
                     "INSERT INTO fixed VALUES (1), (2), (3);"
                     "CREATE TABLE churn (y INTEGER);")
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < 3; ++c) {
    readers.emplace_back([&db, &stop, &failures] {
      while (!stop.load(std::memory_order_acquire)) {
        auto r = db.Query("SELECT SUM(x) FROM fixed WHERE x > 0");
        if (!r.ok() ||
            !(r.ValueOrDie()->GetValue(0, 0).ValueOrDie() ==
              Value::Int64(6))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // The churn table is never read: concurrent DDL+DML on one table is the
  // caller's responsibility (see sql/database.h); what must stay safe is
  // everyone else's cached plans while the schema version moves.
  std::thread ddl([&db, &stop] {
    for (int i = 0; i < 150; ++i) {
      if (!db.Query("DROP TABLE churn").ok() ||
          !db.Query("CREATE TABLE churn (y INTEGER, z INTEGER)").ok() ||
          !db.Query("DROP TABLE churn").ok() ||
          !db.Query("CREATE TABLE churn (y INTEGER)").ok()) {
        break;
      }
    }
    stop.store(true, std::memory_order_release);
  });
  ddl.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Deterministic invalidation check (the threads above may not interleave
  // on a 1-core CI quota): warm a plan, bump the schema version, replay.
  obs::Counter* stale =
      obs::MetricsRegistry::Global().GetCounter("mlcs.plan_cache.stale");
  uint64_t stale_before = stale->Value();
  ASSERT_TRUE(db.Query("SELECT SUM(x) FROM fixed WHERE x > 0").ok());
  ASSERT_TRUE(db.Query("CREATE TABLE bump_marker (a INTEGER)").ok());
  ASSERT_TRUE(db.Query("SELECT SUM(x) FROM fixed WHERE x > 0").ok());
  EXPECT_GE(stale->Value(), stale_before + 1);
}

/// The buffer pool's hazard surface: many threads scanning one
/// stored-backed table through the shared global pool with a budget small
/// enough that every scan races insertion, LRU splice, and eviction of
/// chunks other scans still hold pinned — while one thread flips the
/// zone-map kill switch (an atomic read on every scan) and another
/// periodically wipes the pool out from under everyone. Every query must
/// still return the right answer.
TEST(SanitizerStressTest, BufferPoolConcurrentScansAndEviction) {
  std::string dir = testing::TempDir() + "/stress_bufpool";
  {
    Database writer;
    ASSERT_TRUE(writer.Query("CREATE TABLE t (x INTEGER, s VARCHAR)").ok());
    std::string insert = "INSERT INTO t VALUES (0, 's0')";
    for (int i = 1; i < 512; ++i) {
      insert += ", (";
      insert += std::to_string(i);
      insert += ", 's";
      insert += std::to_string(i);
      insert += "')";
    }
    ASSERT_TRUE(writer.Query(insert).ok());
    setenv("MLCS_BLOCK_ROWS", "32", 1);  // 16 blocks → real LRU churn
    ASSERT_TRUE(writer.SaveTo(dir).ok());
    unsetenv("MLCS_BLOCK_ROWS");
  }
  Database db;
  ASSERT_TRUE(db.LoadFrom(dir).ok());

  bufpool::BufferPool& pool = bufpool::BufferPool::Global();
  const size_t budget_before = pool.byte_budget();
  pool.set_byte_budget(4096);  // holds only a few chunks at a time

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < kThreads; ++t) {
    scanners.emplace_back([&db, &failures, t] {
      for (int i = 0; i < kIters; ++i) {
        // Alternate a selective scan (zone maps may skip 15/16 blocks)
        // with a full scan (touches every chunk, maximum pool pressure).
        bool selective = (t + i) % 2 == 0;
        auto r = db.Query(selective
                              ? "SELECT COUNT(*) FROM t WHERE x >= 500"
                              : "SELECT COUNT(*) FROM t");
        int64_t want = selective ? 12 : 512;
        if (!r.ok() ||
            !(r.ValueOrDie()->GetValue(0, 0).ValueOrDie() ==
              Value::Int64(want))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread toggler([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      bufpool::SetZoneMapSkippingEnabled(false);
      bufpool::SetZoneMapSkippingEnabled(true);
    }
  });
  std::thread wiper([&pool, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      pool.Clear();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& t : scanners) t.join();
  stop.store(true, std::memory_order_release);
  toggler.join();
  wiper.join();
  bufpool::SetZoneMapSkippingEnabled(true);
  pool.set_byte_budget(budget_before);
  pool.Clear();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mlcs
