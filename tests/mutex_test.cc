// Tests for the mlcs::Mutex facade (common/mutex.h): RAII locking, CondVar
// bookkeeping, and above all the potential-deadlock detector — a seeded
// lock-order inversion must abort with a cycle report, while consistent
// orderings and try-then-back-off must never false-positive. Detection is
// forced on via the testing hooks so the same assertions hold in Release
// builds (where the build default is off).

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace mlcs {
namespace {

class MutexDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; "threadsafe" re-executes the binary so the child
    // is single-threaded even though other tests here spawn threads.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(MutexDeathTest, AbBaInversionAborts) {
  EXPECT_DEATH(
      {
        Mutex::SetDeadlockDetectionForTesting(true);
        Mutex::ResetDeadlockGraphForTesting();
        Mutex a{"death.a"};
        Mutex b{"death.b"};
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // establishes a -> b
        }
        {
          MutexLock lb(&b);
          MutexLock la(&a);  // b -> a closes the cycle: abort here
        }
      },
      "POTENTIAL DEADLOCK");
}

TEST_F(MutexDeathTest, TransitiveCycleAborts) {
  // The detector must find cycles through intermediate locks, not just
  // direct two-lock inversions: a -> b, b -> c, then c -> a.
  EXPECT_DEATH(
      {
        Mutex::SetDeadlockDetectionForTesting(true);
        Mutex::ResetDeadlockGraphForTesting();
        Mutex a{"death.a"};
        Mutex b{"death.b"};
        Mutex c{"death.c"};
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        {
          MutexLock lb(&b);
          MutexLock lc(&c);
        }
        {
          MutexLock lc(&c);
          MutexLock la(&a);  // reaches c via a -> b -> c: abort
        }
      },
      "POTENTIAL DEADLOCK");
}

TEST_F(MutexDeathTest, SelfDeadlockAborts) {
  EXPECT_DEATH(
      {
        Mutex::SetDeadlockDetectionForTesting(true);
        Mutex::ResetDeadlockGraphForTesting();
        Mutex m{"death.recursive"};
        m.Lock();
        m.Lock();  // non-recursive: second acquisition must abort
      },
      "SELF-DEADLOCK");
}

TEST(MutexTest, DetectionToggleRoundTrips) {
  const bool before = Mutex::DeadlockDetectionEnabled();
  Mutex::SetDeadlockDetectionForTesting(true);
  EXPECT_TRUE(Mutex::DeadlockDetectionEnabled());
  Mutex::SetDeadlockDetectionForTesting(false);
  EXPECT_FALSE(Mutex::DeadlockDetectionEnabled());
  Mutex::SetDeadlockDetectionForTesting(before);
}

TEST(MutexTest, ConsistentOrderHammerNoFalsePositive) {
  // Many threads taking a -> b -> c in the same order, plus solo
  // acquisitions: the detector must stay silent (an abort fails the test
  // by killing the process).
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex a{"hammer.a"};
  Mutex b{"hammer.b"};
  Mutex c{"hammer.c"};
  int shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        {
          MutexLock la(&a);
          MutexLock lb(&b);
          MutexLock lc(&c);
          ++shared;
        }
        {
          MutexLock lb(&b);  // prefix of the global order is fine too
          MutexLock lc(&c);
          ++shared;
        }
        {
          MutexLock lc(&c);
          ++shared;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock la(&a);
  MutexLock lb(&b);
  MutexLock lc(&c);
  EXPECT_EQ(shared, 4 * 200 * 3);
}

TEST(MutexTest, TryLockRecordsNoOrderEdge) {
#if defined(__SANITIZE_THREAD__)
  // TSan's own lock-order checker records successful try-lock
  // acquisitions as ordering edges, so the deliberate blocking b -> a
  // below is reported as a potential inversion under TSan even though
  // the facade's detector (correctly, absl-style) treats
  // try-then-back-off as inversion-breaking. The facade semantics stay
  // covered by every non-TSan tree.
  GTEST_SKIP() << "TSan's lock-order checker counts try-lock edges";
#endif
  // Try-then-back-off is a legitimate inversion-breaking pattern: holding
  // `a` while try-locking `b` must not record a -> b, so a later blocking
  // b -> a acquisition is not a (false) cycle.
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex a{"trylock.a"};
  Mutex b{"trylock.b"};
  {
    MutexLock la(&a);
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
  }
  {
    MutexLock lb(&b);
    MutexLock la(&a);  // would abort if the try-lock had recorded a -> b
  }
  SUCCEED();
}

TEST(MutexTest, TryLockContendedReturnsFalse) {
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex m{"trylock.contended"};
  m.Lock();
  std::atomic<int> failed{0};
  std::thread other([&] {
    if (!m.TryLock()) {
      failed.fetch_add(1);
    } else {
      m.Unlock();
    }
  });
  other.join();
  m.Unlock();
  EXPECT_EQ(failed.load(), 1);
}

TEST(MutexTest, DestroyedMutexLeavesTheOrderGraph) {
  // a -> b is recorded, then b is destroyed. A new mutex reusing b's
  // address (back-to-back heap reuse makes that likely) must start with a
  // clean slate: locking it before `a` is a fresh ordering, not a cycle.
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex a{"reuse.a"};
  auto b = std::make_unique<Mutex>("reuse.b");
  {
    MutexLock la(&a);
    MutexLock lb(b.get());
  }
  b.reset();
  auto b2 = std::make_unique<Mutex>("reuse.b2");
  {
    MutexLock lb(b2.get());
    MutexLock la(&a);  // aborts if b's edges survived destruction
  }
  SUCCEED();
}

TEST(MutexTest, CondVarWaitUntilTimesOut) {
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex m{"cv.timeout"};
  CondVar cv;
  MutexLock lock(&m);
  const bool notified = cv.WaitUntil(
      lock, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
  EXPECT_FALSE(notified);
}

TEST(MutexTest, CondVarProducerConsumer) {
  // Wait() drops the mutex from the waiter's held set while blocked and
  // re-checks on wake-up; the producer must be able to take the same
  // mutex mid-wait without the detector claiming a self-deadlock.
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex m{"cv.pc"};
  CondVar cv;
  std::vector<int> items;  // guarded by m
  bool done = false;       // guarded by m
  constexpr int kItems = 64;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(&m);
      items.push_back(i);
      cv.NotifyOne();
    }
    MutexLock lock(&m);
    done = true;
    cv.NotifyAll();
  });

  int consumed = 0;
  {
    MutexLock lock(&m);
    while (true) {
      while (items.empty() && !done) cv.Wait(lock);
      consumed += static_cast<int>(items.size());
      items.clear();
      if (done) break;
    }
  }
  producer.join();
  EXPECT_EQ(consumed, kItems);
}

// MLCS_EXCLUDES compile surface: under clang -Wthread-safety calling this
// with `m` held is a compile error; at runtime the detector catches the
// same mistake as a self-deadlock. Under g++ the macro expands to nothing.
void TouchCounter(Mutex* m, int* counter) MLCS_EXCLUDES(*m) {
  MutexLock lock(m);
  ++*counter;
}

TEST(MutexTest, ExcludesAnnotatedFunction) {
  Mutex::SetDeadlockDetectionForTesting(true);
  Mutex::ResetDeadlockGraphForTesting();
  Mutex m{"excludes.m"};
  int counter = 0;
  TouchCounter(&m, &counter);
  EXPECT_EQ(counter, 1);
}

TEST(MutexTest, NamesSurfaceInAccessors) {
  Mutex m{"named.mutex"};
  EXPECT_STREQ(m.name(), "named.mutex");
}

}  // namespace
}  // namespace mlcs
