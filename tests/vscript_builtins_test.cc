/// Tests for the extended VectorScript builtin surface (elementwise math,
/// vec.where / clip / fillna) used by preprocessing UDFs.
#include <gtest/gtest.h>

#include <cmath>

#include "vscript/vs_builtins.h"
#include "vscript/vs_interpreter.h"

namespace mlcs::vscript {
namespace {

ScriptValue Col(std::vector<double> data) {
  return ScriptValue(Column::FromDouble(std::move(data)));
}

Result<ColumnPtr> RunOn(const std::string& body, Environment env) {
  MLCS_ASSIGN_OR_RETURN(ScriptValue result, ExecuteSource(body, env));
  return result.AsColumn();
}

TEST(VsBuiltinsTest, ElementwiseMath) {
  Environment env;
  env["v"] = Col({-1.5, 4.0, 9.0});
  auto abs = RunOn("return vec.abs(v);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(abs->f64_data()[0], 1.5);
  auto sqrt = RunOn("return vec.sqrt(v);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(sqrt->f64_data()[2], 3.0);
  auto rounded = RunOn("return vec.round(v);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(rounded->f64_data()[0], -2.0);
  auto floor = RunOn("return vec.floor(v);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(floor->f64_data()[0], -2.0);
  auto ceil = RunOn("return vec.ceil(v);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(ceil->f64_data()[0], -1.0);
}

TEST(VsBuiltinsTest, LogExpInverse) {
  Environment env;
  env["v"] = Col({0.5, 1.0, 2.0});
  auto roundtrip = RunOn("return vec.exp(vec.log(v));", env).ValueOrDie();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(roundtrip->f64_data()[i],
                env["v"].column()->f64_data()[i], 1e-12);
  }
}

TEST(VsBuiltinsTest, ElementwiseOnScalarStaysScalar) {
  auto result = ExecuteSource("return vec.abs(-3.5);", {}).ValueOrDie();
  ASSERT_TRUE(result.is_scalar());
  EXPECT_DOUBLE_EQ(result.scalar().double_value(), 3.5);
}

TEST(VsBuiltinsTest, Where) {
  Environment env;
  env["v"] = Col({1.0, 5.0, 2.0, 9.0});
  auto out =
      RunOn("return vec.where(v > 3.0, 1, 0);", env).ValueOrDie();
  EXPECT_EQ(out->i32_data(), (std::vector<int32_t>{0, 1, 0, 1}));
}

TEST(VsBuiltinsTest, WhereWithVectorBranches) {
  Environment env;
  env["v"] = Col({1.0, 5.0});
  env["a"] = Col({10.0, 20.0});
  env["b"] = Col({-10.0, -20.0});
  auto out = RunOn("return vec.where(v > 3.0, a, b);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(out->f64_data()[0], -10.0);
  EXPECT_DOUBLE_EQ(out->f64_data()[1], 20.0);
}

TEST(VsBuiltinsTest, Clip) {
  Environment env;
  env["v"] = Col({-5.0, 0.5, 99.0});
  auto out = RunOn("return vec.clip(v, 0.0, 1.0);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(out->f64_data()[0], 0.0);
  EXPECT_DOUBLE_EQ(out->f64_data()[1], 0.5);
  EXPECT_DOUBLE_EQ(out->f64_data()[2], 1.0);
  EXPECT_FALSE(RunOn("return vec.clip(v, 2.0, 1.0);", env).ok());
}

TEST(VsBuiltinsTest, FillnaReplacesNulls) {
  Column col(TypeId::kDouble);
  col.AppendDouble(1.0);
  col.AppendNull();
  col.AppendDouble(3.0);
  Environment env;
  env["v"] = ScriptValue(std::make_shared<Column>(col));
  auto out = RunOn("return vec.fillna(v, -1.0);", env).ValueOrDie();
  EXPECT_DOUBLE_EQ(out->f64_data()[1], -1.0);
  EXPECT_FALSE(out->has_nulls());
}

TEST(VsBuiltinsTest, PreprocessingPipelineComposes) {
  // A realistic preprocessing body: impute, clip outliers, normalize.
  Column col(TypeId::kDouble);
  col.AppendDouble(10.0);
  col.AppendNull();
  col.AppendDouble(1000.0);
  col.AppendDouble(20.0);
  Environment env;
  env["raw"] = ScriptValue(std::make_shared<Column>(col));
  const char* body = R"(
    x = vec.fillna(raw, 0.0);
    x = vec.clip(x, 0.0, 100.0);
    return x / vec.max(x);
  )";
  auto out = RunOn(body, env).ValueOrDie();
  EXPECT_DOUBLE_EQ(out->f64_data()[0], 0.1);
  EXPECT_DOUBLE_EQ(out->f64_data()[1], 0.0);
  EXPECT_DOUBLE_EQ(out->f64_data()[2], 1.0);
  EXPECT_DOUBLE_EQ(out->f64_data()[3], 0.2);
}

TEST(VsBuiltinsTest, IsBuiltinKnowsNewNames) {
  EXPECT_TRUE(IsBuiltin("vec.where"));
  EXPECT_TRUE(IsBuiltin("vec.fillna"));
  EXPECT_TRUE(IsBuiltin("vec.clip"));
  EXPECT_FALSE(IsBuiltin("vec.zzz"));
}

TEST(VsBuiltinsTest, ArityErrors) {
  Environment env;
  env["v"] = Col({1.0});
  EXPECT_FALSE(RunOn("return vec.abs();", env).ok());
  EXPECT_FALSE(RunOn("return vec.where(v > 0.5);", env).ok());
  EXPECT_FALSE(RunOn("return vec.clip(v, 1.0);", env).ok());
}

}  // namespace
}  // namespace mlcs::vscript
