/// Property-based SQL tests: randomly generated expressions evaluated
/// through the full SQL path must match a direct C++ oracle, and
/// relational identities must hold on random tables.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "ml/training_source.h"
#include "sql/database.h"
#include "storage/encoding.h"

namespace mlcs {
namespace {

/// Random integer arithmetic/comparison expression with its oracle value.
/// Division/modulo are excluded (NULL-on-zero semantics differ from C++).
struct RandomExpr {
  std::string sql;
  int64_t value = 0;
  bool is_bool = false;
  bool bool_value = false;
};

RandomExpr GenExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.NextDouble() < 0.3) {
    RandomExpr leaf;
    leaf.value = rng.NextInt(-100, 100);
    // Leaves are cast to BIGINT so the engine computes in 64-bit like the
    // oracle (bare small literals would type as INTEGER and wrap at 2^31).
    leaf.sql = "CAST(" +
               (leaf.value < 0 ? "(0 - " + std::to_string(-leaf.value) + ")"
                               : std::to_string(leaf.value)) +
               " AS BIGINT)";
    return leaf;
  }
  RandomExpr left = GenExpr(rng, depth - 1);
  RandomExpr right = GenExpr(rng, depth - 1);
  // Comparisons only at the top to keep types simple.
  RandomExpr out;
  switch (rng.NextBounded(3)) {
    case 0:
      out.value = left.value + right.value;
      out.sql = "(" + left.sql + " + " + right.sql + ")";
      break;
    case 1:
      out.value = left.value - right.value;
      out.sql = "(" + left.sql + " - " + right.sql + ")";
      break;
    default:
      out.value = left.value * right.value;
      out.sql = "(" + left.sql + " * " + right.sql + ")";
      break;
  }
  return out;
}

TEST(SqlPropertyTest, RandomArithmeticMatchesOracle) {
  Database db;
  Rng rng(404);
  for (int i = 0; i < 200; ++i) {
    RandomExpr e = GenExpr(rng, 4);
    auto r = db.Query("SELECT CAST(" + e.sql + " AS BIGINT)");
    ASSERT_TRUE(r.ok()) << e.sql;
    EXPECT_EQ(r.ValueOrDie()->GetValue(0, 0).ValueOrDie(),
              Value::Int64(e.value))
        << e.sql;
  }
}

TEST(SqlPropertyTest, RandomComparisonsMatchOracle) {
  Database db;
  Rng rng(405);
  for (int i = 0; i < 200; ++i) {
    RandomExpr a = GenExpr(rng, 3);
    RandomExpr b = GenExpr(rng, 3);
    const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    size_t op = rng.NextBounded(6);
    bool expect;
    switch (op) {
      case 0: expect = a.value == b.value; break;
      case 1: expect = a.value != b.value; break;
      case 2: expect = a.value < b.value; break;
      case 3: expect = a.value <= b.value; break;
      case 4: expect = a.value > b.value; break;
      default: expect = a.value >= b.value; break;
    }
    std::string sql =
        "SELECT " + a.sql + " " + ops[op] + " " + b.sql;
    auto r = db.Query(sql);
    ASSERT_TRUE(r.ok()) << sql;
    EXPECT_EQ(r.ValueOrDie()->GetValue(0, 0).ValueOrDie(),
              Value::Bool(expect))
        << sql;
  }
}

class SqlRelationalPropertyTest : public ::testing::TestWithParam<int> {};

/// Relational identities on a random table:
///   COUNT(*) = COUNT(WHERE p) + COUNT(WHERE NOT p or NULL-p rows)
///   SUM over groups = global SUM
///   DISTINCT count = GROUP BY group count
TEST_P(SqlRelationalPropertyTest, IdentitiesHold) {
  Database db;
  Rng rng(static_cast<uint64_t>(GetParam()));
  ASSERT_TRUE(db.Query("CREATE TABLE t (g INTEGER, x INTEGER)").ok());
  auto table = db.catalog().GetTable("t").ValueOrDie();
  size_t rows = 200 + rng.NextBounded(800);
  for (size_t i = 0; i < rows; ++i) {
    Value x = rng.NextDouble() < 0.05
                  ? Value::MakeNull(TypeId::kInt32)
                  : Value::Int32(static_cast<int32_t>(rng.NextInt(-50, 50)));
    ASSERT_TRUE(
        table
            ->AppendRow({Value::Int32(static_cast<int32_t>(
                             rng.NextBounded(13))),
                         x})
            .ok());
  }

  auto scalar = [&](const std::string& sql) {
    auto r = db.Query(sql);
    EXPECT_TRUE(r.ok()) << sql;
    return r.ValueOrDie()->GetValue(0, 0).ValueOrDie();
  };

  // Partition identity (NULL x rows match neither predicate).
  int64_t total = scalar("SELECT COUNT(*) FROM t").int64_value();
  int64_t pos = scalar("SELECT COUNT(*) FROM t WHERE x >= 0").int64_value();
  int64_t neg = scalar("SELECT COUNT(*) FROM t WHERE x < 0").int64_value();
  int64_t nulls =
      scalar("SELECT COUNT(*) FROM t WHERE x IS NULL").int64_value();
  EXPECT_EQ(total, pos + neg + nulls);

  // Group sums fold to the global sum.
  int64_t global_sum = scalar("SELECT SUM(x) FROM t").int64_value();
  auto groups =
      db.Query("SELECT g, SUM(x) AS s FROM t GROUP BY g").ValueOrDie();
  int64_t folded = 0;
  for (size_t r = 0; r < groups->num_rows(); ++r) {
    Value v = groups->GetValue(r, 1).ValueOrDie();
    if (!v.is_null()) folded += v.int64_value();
  }
  EXPECT_EQ(global_sum, folded);

  // DISTINCT row count equals GROUP BY group count.
  auto distinct = db.Query("SELECT DISTINCT g FROM t").ValueOrDie();
  EXPECT_EQ(distinct->num_rows(), groups->num_rows());

  // ORDER BY is a permutation: sorted sum equals unsorted sum.
  int64_t sorted_sum = 0;
  auto sorted = db.Query("SELECT x FROM t ORDER BY x").ValueOrDie();
  for (size_t r = 0; r < sorted->num_rows(); ++r) {
    Value v = sorted->GetValue(r, 0).ValueOrDie();
    if (!v.is_null()) sorted_sum += v.int64_value();
  }
  EXPECT_EQ(sorted_sum, global_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRelationalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

/// -- Optimizer parity -------------------------------------------------------
///
/// Random SELECTs (filters, joins, aggregates, ORDER BY) must return
/// bit-identical tables with the rewrite rules on and off, at one worker
/// thread and several. This is the contract sql/optimizer.h promises.

std::string ParityPredicate(Rng& rng, bool join_scope) {
  auto piece = [&rng, join_scope]() -> std::string {
    switch (rng.NextBounded(join_scope ? 7 : 5)) {
      case 0:
        return "v > " + std::to_string(rng.NextInt(-40, 40));
      case 1:
        return "w <= " + std::to_string(rng.NextInt(-40, 40));
      case 2:
        return "k = " + std::to_string(rng.NextInt(0, 9));
      case 3:
        return "s IS NOT NULL";
      case 4:
        // Literal-only conjunct: exercises constant folding (and, when it
        // folds to TRUE, whole-filter elimination).
        return rng.NextDouble() < 0.5 ? "1 < 2" : "2 < 1";
      case 5:
        return "u < " + std::to_string(rng.NextInt(-40, 40));
      default:
        // References the join-renamed right-side key copy.
        return "k_r >= " + std::to_string(rng.NextInt(0, 9));
    }
  };
  std::string out = piece();
  size_t extra = rng.NextBounded(3);
  for (size_t i = 0; i < extra; ++i) out += " AND " + piece();
  return out;
}

std::string ParityQuery(Rng& rng) {
  switch (rng.NextBounded(8)) {
    case 0:  // plain filter + projection (pruning applies)
      return "SELECT k, v FROM a WHERE " + ParityPredicate(rng, false);
    case 1:  // inner join: pushdown to either side
      return "SELECT k, v, u FROM a JOIN b ON k = k WHERE " +
             ParityPredicate(rng, true);
    case 2:  // LEFT join: right-side pushes must be suppressed
      return "SELECT k, w, u FROM a LEFT JOIN b ON k = k WHERE " +
             ParityPredicate(rng, true);
    case 3:  // aggregate with grouped ORDER BY
      return "SELECT k, COUNT(*) AS c, SUM(v) AS sv FROM a WHERE " +
             ParityPredicate(rng, false) + " GROUP BY k ORDER BY k";
    case 4:  // aggregate over a join: pushdown-below-join candidate, with
             // duplicate b keys (fan-out) and NULL v inputs
      return "SELECT k, COUNT(*) AS c, SUM(v) AS sv, COUNT(v) AS cv "
             "FROM a JOIN b ON k = k GROUP BY k ORDER BY k";
    case 5:  // same, filtered: the fact-side filter must stay below the
             // partial aggregate
      return "SELECT k, SUM(w) AS sw FROM a JOIN b ON k = k WHERE " +
             ParityPredicate(rng, false) + " GROUP BY k ORDER BY k";
    case 6:  // dim-side group key: grouping stays above the join while the
             // fact side still collapses by the join key
      return "SELECT u, COUNT(*) AS c, SUM(v) AS sv FROM a JOIN b "
             "ON k = k GROUP BY u ORDER BY u";
    case 7:
    default:  // no column refs at all: narrowest-column scan kicks in
      return "SELECT COUNT(*) FROM a WHERE " + ParityPredicate(rng, false);
  }
}

TEST(SqlPropertyTest, OptimizerParityOnRandomQueries) {
  ThreadPool one_thread(1);
  ThreadPool many_threads(3);
  for (ThreadPool* pool : {&one_thread, &many_threads}) {
    Database db;
    MorselPolicy policy;
    policy.pool = pool;
    policy.morsel_rows = 64;  // several morsels even on a small table
    db.set_exec_policy(policy);
    ASSERT_TRUE(db.Run("CREATE TABLE a (k INTEGER, v INTEGER, w INTEGER, "
                       "s VARCHAR); "
                       "CREATE TABLE b (k INTEGER, u INTEGER);")
                    .ok());
    Rng rng(pool->num_threads() == 1 ? 42 : 43);
    auto a = db.catalog().GetTable("a").ValueOrDie();
    for (size_t i = 0; i < 400; ++i) {
      Value v = rng.NextDouble() < 0.05
                    ? Value::MakeNull(TypeId::kInt32)
                    : Value::Int32(static_cast<int32_t>(
                          rng.NextInt(-50, 50)));
      Value s = rng.NextDouble() < 0.10
                    ? Value::MakeNull(TypeId::kVarchar)
                    : Value::Varchar("s" + std::to_string(rng.NextBounded(7)));
      ASSERT_TRUE(
          a->AppendRow({Value::Int32(static_cast<int32_t>(
                            rng.NextBounded(10))),
                        v,
                        Value::Int32(static_cast<int32_t>(
                            rng.NextInt(-50, 50))),
                        s})
              .ok());
    }
    auto b = db.catalog().GetTable("b").ValueOrDie();
    for (size_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(b->AppendRow({Value::Int32(static_cast<int32_t>(
                                    rng.NextBounded(13))),
                                Value::Int32(static_cast<int32_t>(
                                    rng.NextInt(-50, 50)))})
                      .ok());
    }

    for (int i = 0; i < 80; ++i) {
      std::string sql = ParityQuery(rng);
      db.set_optimizer_enabled(true);
      auto on = db.Query(sql);
      ASSERT_TRUE(on.ok()) << sql << " -> " << on.status().ToString();
      db.set_optimizer_enabled(false);
      auto off = db.Query(sql);
      ASSERT_TRUE(off.ok()) << sql << " -> " << off.status().ToString();
      EXPECT_TRUE(on.ValueOrDie()->Equals(*off.ValueOrDie()))
          << sql << "\noptimized:\n"
          << on.ValueOrDie()->ToString() << "\nunoptimized:\n"
          << off.ValueOrDie()->ToString();
    }
  }
}

/// -- Compressed-execution parity --------------------------------------------
///
/// The same random queries over stored (block-file) tables must return
/// bit-identical tables with encoding on and off — the contract
/// storage/encoding.h promises and the MLCS_DISABLE_ENCODING ablation
/// relies on. Runs at one worker thread and several.

/// Restores the global encoding knob even when an ASSERT unwinds early
/// (later tests in this process assume the default).
struct EncodingToggleGuard {
  ~EncodingToggleGuard() { SetEncodingEnabled(true); }
};

/// Random query over the saved tables. Beyond the optimizer-parity shapes,
/// leans on `r` (run-heavy: RLE on disk) and `s` (low-cardinality strings:
/// dictionary on disk).
std::string EncodingParityQuery(Rng& rng) {
  switch (rng.NextBounded(7)) {
    case 0:
      return "SELECT k, v FROM a WHERE " + ParityPredicate(rng, false);
    case 1:
      return "SELECT k, v, u FROM a JOIN b ON k = k WHERE " +
             ParityPredicate(rng, true);
    case 2:
      return "SELECT k, COUNT(*) AS c, SUM(v) AS sv FROM a WHERE " +
             ParityPredicate(rng, false) + " GROUP BY k ORDER BY k";
    case 3:  // per-run aggregation over the RLE column
      return "SELECT r, COUNT(*) AS c, SUM(w) AS sw FROM a "
             "GROUP BY r ORDER BY r";
    case 4:  // equality filter straight on the RLE column
      return "SELECT k, s FROM a WHERE r = " +
             std::to_string(rng.NextInt(0, 14));
    case 5:  // dictionary strings as group keys
      return "SELECT s, COUNT(*) AS c FROM a GROUP BY s ORDER BY s";
    default:
      return "SELECT COUNT(*) FROM a WHERE " + ParityPredicate(rng, false);
  }
}

TEST(SqlPropertyTest, EncodingParityOnRandomQueries) {
  EncodingToggleGuard restore;
  ThreadPool one_thread(1);
  ThreadPool many_threads(3);
  for (ThreadPool* pool : {&one_thread, &many_threads}) {
    // Build the source data in a scratch database and save it: SaveTo
    // applies the encoding policy, so the reloaded tables serve encoded
    // blocks (k/v/s dictionary-shaped, r run-shaped).
    std::string dir = testing::TempDir() + "/enc_parity_" +
                      std::to_string(pool->num_threads());
    {
      Database source;
      ASSERT_TRUE(
          source
              .Run("CREATE TABLE a (k INTEGER, v INTEGER, w INTEGER, "
                   "r INTEGER, s VARCHAR); "
                   "CREATE TABLE b (k INTEGER, u INTEGER);")
              .ok());
      Rng rng(pool->num_threads() == 1 ? 1042 : 1043);
      auto a = source.catalog().GetTable("a").ValueOrDie();
      for (size_t i = 0; i < 600; ++i) {
        Value v = rng.NextDouble() < 0.05
                      ? Value::MakeNull(TypeId::kInt32)
                      : Value::Int32(static_cast<int32_t>(
                            rng.NextInt(-50, 50)));
        Value s = rng.NextDouble() < 0.10
                      ? Value::MakeNull(TypeId::kVarchar)
                      : Value::Varchar("s" +
                                       std::to_string(rng.NextBounded(7)));
        ASSERT_TRUE(a->AppendRow(
                         {Value::Int32(static_cast<int32_t>(
                              rng.NextBounded(10))),
                          v,
                          Value::Int32(static_cast<int32_t>(
                              rng.NextInt(-50, 50))),
                          Value::Int32(static_cast<int32_t>(i / 40)),
                          s})
                        .ok());
      }
      auto b = source.catalog().GetTable("b").ValueOrDie();
      for (size_t i = 0; i < 30; ++i) {
        ASSERT_TRUE(b->AppendRow({Value::Int32(static_cast<int32_t>(
                                      rng.NextBounded(13))),
                                  Value::Int32(static_cast<int32_t>(
                                      rng.NextInt(-50, 50)))})
                        .ok());
      }
      ASSERT_TRUE(source.SaveTo(dir).ok());
    }

    Database db;
    MorselPolicy policy;
    policy.pool = pool;
    policy.morsel_rows = 64;
    db.set_exec_policy(policy);
    ASSERT_TRUE(db.LoadFrom(dir).ok());

    // The sweep is only meaningful if the stored tables really serve
    // encoded columns: `r` must have come back RLE or dictionary-coded.
    {
      auto probe = db.catalog().ScanTable(
          "a", std::vector<std::string>{"r", "s"});
      ASSERT_TRUE(probe.ok());
      EXPECT_TRUE(probe.ValueOrDie()->column(0)->is_encoded());
      EXPECT_TRUE(probe.ValueOrDie()->column(1)->is_encoded());
    }

    Rng rng(pool->num_threads() == 1 ? 2042 : 2043);
    for (int i = 0; i < 60; ++i) {
      std::string sql = EncodingParityQuery(rng);
      SetEncodingEnabled(true);
      auto on = db.Query(sql);
      ASSERT_TRUE(on.ok()) << sql << " -> " << on.status().ToString();
      SetEncodingEnabled(false);
      auto off = db.Query(sql);
      SetEncodingEnabled(true);
      ASSERT_TRUE(off.ok()) << sql << " -> " << off.status().ToString();
      EXPECT_TRUE(on.ValueOrDie()->Equals(*off.ValueOrDie()))
          << sql << "\nencoded:\n"
          << on.ValueOrDie()->ToString() << "\ndecoded:\n"
          << off.ValueOrDie()->ToString();
    }
  }
}

/// -- Factorized-training parity ---------------------------------------------
///
/// Models trained through the factorized statistics provider (dimension
/// features as per-key LUTs addressed through a shared join-key column)
/// must predict bit-identically to the same models trained on the
/// materialized join output — across dimension fan-out, NULL feature
/// values, serial vs thread-pool tree fitting, and encoded vs plain source
/// columns. This is the contract ml/training_source.h promises.
TEST(SqlPropertyTest, FactorizedTrainingParitySweep) {
  for (size_t fan_out : {size_t{1}, size_t{10}, size_t{100}}) {
    for (bool parallel : {false, true}) {
      for (bool encoded : {false, true}) {
        SCOPED_TRACE("fan_out=" + std::to_string(fan_out) +
                     " parallel=" + std::to_string(parallel) +
                     " encoded=" + std::to_string(encoded));
        const size_t kDimRows = 12;
        // Ragged: the last key gets the leftover rows, so per-key counts
        // are not uniform.
        const size_t n = kDimRows * fan_out + 7;
        Rng rng(9100 + fan_out * 10 + (parallel ? 2 : 0) + (encoded ? 1 : 0));

        // Dimension table: two per-key features, one with NULL entries.
        Schema dim_schema;
        dim_schema.AddField("g1", TypeId::kInt32);
        dim_schema.AddField("g2", TypeId::kInt32);
        auto dim = Table::Make(std::move(dim_schema));
        for (size_t k = 0; k < kDimRows; ++k) {
          Value g2 = k % 5 == 3
                         ? Value::MakeNull(TypeId::kInt32)
                         : Value::Int32(static_cast<int32_t>(
                               rng.NextBounded(6)));
          ASSERT_TRUE(dim->AppendRow({Value::Int32(static_cast<int32_t>(
                                          rng.NextInt(-20, 20))),
                                      g2})
                          .ok());
        }

        // Fact table: sorted key runs (RLE-shaped), one dense feature with
        // NULLs, one low-cardinality feature (dictionary-shaped), and a
        // label that depends on both sides.
        Schema fact_schema;
        fact_schema.AddField("f1", TypeId::kInt32);
        fact_schema.AddField("f2", TypeId::kInt32);
        auto fact = Table::Make(std::move(fact_schema));
        std::vector<uint32_t> keys(n);
        ml::Labels y(n);
        for (size_t r = 0; r < n; ++r) {
          keys[r] = static_cast<uint32_t>(
              std::min(r / (fan_out + 1), kDimRows - 1));
          bool f1_null = rng.NextDouble() < 0.05;
          int32_t f1 = static_cast<int32_t>(rng.NextInt(-50, 50));
          int32_t f2 = static_cast<int32_t>(rng.NextBounded(4));
          ASSERT_TRUE(fact->AppendRow({f1_null
                                           ? Value::MakeNull(TypeId::kInt32)
                                           : Value::Int32(f1),
                                       Value::Int32(f2)})
                          .ok());
          y[r] = static_cast<int32_t>((keys[r] * 7 + (f1_null ? 3 : f1) +
                                       static_cast<size_t>(f2 + 50)) %
                                      3);
        }

        // Materialized join output: dimension features gathered per fact
        // row. The encoded axis compresses the very columns the matrix is
        // built from, exercising the decode boundary into ML ingestion.
        TablePtr gathered = dim->TakeRows(keys);
        std::vector<ColumnPtr> mat_cols = {
            fact->column(0), fact->column(1), gathered->column(0),
            gathered->column(1)};
        if (encoded) {
          EncodingPolicy aggressive;
          aggressive.min_rows = 1;
          aggressive.max_dict_fraction = 1.0;
          aggressive.max_run_fraction = 1.0;
          size_t n_encoded = 0;
          for (auto& col : mat_cols) {
            col = EncodeColumn(col, aggressive);
            n_encoded += col->is_encoded() ? 1 : 0;
          }
          EXPECT_GT(n_encoded, 0u);
        }
        auto xm = ml::Matrix::FromColumns(mat_cols);
        ASSERT_TRUE(xm.ok()) << xm.status().ToString();

        // Factorized source: the same features, never gathered — dense
        // fact columns plus K-entry dimension LUTs behind the key column.
        std::vector<double> f1d =
            fact->column(0)->ToDoubleVector().ValueOrDie();
        std::vector<double> f2d =
            fact->column(1)->ToDoubleVector().ValueOrDie();
        ml::TrainingSource src;
        ASSERT_TRUE(src.AddDenseFeature(&f1d).ok());
        ASSERT_TRUE(src.AddDenseFeature(&f2d).ok());
        ASSERT_TRUE(src.SetKeys(keys, kDimRows).ok());
        ASSERT_TRUE(
            src.AddFactorizedFeature(
                   dim->column(0)->ToDoubleVector().ValueOrDie())
                .ok());
        ASSERT_TRUE(
            src.AddFactorizedFeature(
                   dim->column(1)->ToDoubleVector().ValueOrDie())
                .ok());
        EXPECT_EQ(src.num_factorized(), 2u);

        // Random forest: same options + seed, both representations.
        ml::RandomForestOptions opt;
        opt.n_estimators = 5;
        opt.max_depth = 6;
        opt.seed = 11;
        opt.parallel_fit = parallel;
        ml::RandomForest rf_mat(opt);
        ml::RandomForest rf_fac(opt);
        ASSERT_TRUE(rf_mat.Fit(xm.ValueOrDie(), y).ok());
        ASSERT_TRUE(rf_fac.FitSource(src, y).ok());
        auto rf_pm = rf_mat.Predict(xm.ValueOrDie());
        auto rf_pf = rf_fac.Predict(xm.ValueOrDie());
        ASSERT_TRUE(rf_pm.ok() && rf_pf.ok());
        EXPECT_EQ(rf_pm.ValueOrDie(), rf_pf.ValueOrDie());
        auto rf_cm = rf_mat.PredictConfidence(xm.ValueOrDie());
        auto rf_cf = rf_fac.PredictConfidence(xm.ValueOrDie());
        ASSERT_TRUE(rf_cm.ok() && rf_cf.ok());
        EXPECT_EQ(rf_cm.ValueOrDie(), rf_cf.ValueOrDie());

        // Logistic regression: gradient sums must stay bit-identical too.
        ml::LogisticRegressionOptions lr_opt;
        lr_opt.epochs = 12;
        ml::LogisticRegression lr_mat(lr_opt);
        ml::LogisticRegression lr_fac(lr_opt);
        ASSERT_TRUE(lr_mat.Fit(xm.ValueOrDie(), y).ok());
        ASSERT_TRUE(lr_fac.FitSource(src, y).ok());
        auto lr_pm = lr_mat.Predict(xm.ValueOrDie());
        auto lr_pf = lr_fac.Predict(xm.ValueOrDie());
        ASSERT_TRUE(lr_pm.ok() && lr_pf.ok());
        EXPECT_EQ(lr_pm.ValueOrDie(), lr_pf.ValueOrDie());
        auto lr_cm = lr_mat.PredictProba(xm.ValueOrDie(), 1);
        auto lr_cf = lr_fac.PredictProba(xm.ValueOrDie(), 1);
        ASSERT_TRUE(lr_cm.ok() && lr_cf.ok());
        EXPECT_EQ(lr_cm.ValueOrDie(), lr_cf.ValueOrDie());
      }
    }
  }
}

TEST(SqlPropertyTest, ConcurrentReadersAreSafe) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (x INTEGER);"
                     "INSERT INTO t VALUES (1), (2), (3), (4);")
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&db, &failures] {
      for (int i = 0; i < 200; ++i) {
        auto r = db.Query("SELECT SUM(x) FROM t WHERE x > 1");
        if (!r.ok() ||
            !(r.ValueOrDie()->GetValue(0, 0).ValueOrDie() ==
              Value::Int64(9))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mlcs
