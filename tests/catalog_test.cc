#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace mlcs {
namespace {

TablePtr TinyTable() {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  return Table::Make(std::move(s));
}

TEST(CatalogTest, CreateAndGet) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("voters", TinyTable()).ok());
  EXPECT_TRUE(cat.HasTable("voters"));
  EXPECT_TRUE(cat.GetTable("voters").ok());
}

TEST(CatalogTest, NamesAreCaseInsensitive) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Voters", TinyTable()).ok());
  EXPECT_TRUE(cat.HasTable("VOTERS"));
  EXPECT_TRUE(cat.GetTable("voters").ok());
}

TEST(CatalogTest, DuplicateCreateFails) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TinyTable()).ok());
  auto st = cat.CreateTable("t", TinyTable());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(cat.CreateTable("t", TinyTable(), /*or_replace=*/true).ok());
}

TEST(CatalogTest, GetMissingFails) {
  Catalog cat;
  auto r = cat.GetTable("ghost");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropTable) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TinyTable()).ok());
  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_FALSE(cat.HasTable("t"));
  EXPECT_FALSE(cat.DropTable("t").ok());
  EXPECT_TRUE(cat.DropTable("t", /*if_exists=*/true).ok());
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("b", TinyTable()).ok());
  ASSERT_TRUE(cat.CreateTable("a", TinyTable()).ok());
  auto names = cat.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(CatalogTest, NullTableRejected) {
  Catalog cat;
  EXPECT_FALSE(cat.CreateTable("t", nullptr).ok());
}

}  // namespace
}  // namespace mlcs
