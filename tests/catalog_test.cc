#include "storage/catalog.h"

#include <gtest/gtest.h>

#include "bufpool/stored_table.h"
#include "common/file_util.h"

namespace mlcs {
namespace {

TablePtr TinyTable() {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  return Table::Make(std::move(s));
}

/// Writes a one-column table to disk and opens it as a StoredTable backed
/// by `pool`.
std::shared_ptr<bufpool::StoredTable> MakeStored(
    const std::string& name, bufpool::BufferPool* pool,
    std::vector<int32_t> values = {1, 2, 3}) {
  std::string dir = testing::TempDir() + "/catalog_" + name;
  MLCS_CHECK_OK(MakeDirs(dir));
  Schema s;
  s.AddField("x", TypeId::kInt32);
  auto table = std::make_shared<Table>(
      std::move(s),
      std::vector<ColumnPtr>{Column::FromInt32(std::move(values))});
  MLCS_CHECK_OK(bufpool::StoredTable::Write(*table, dir, /*block_rows=*/2));
  return bufpool::StoredTable::Open(dir, pool).ValueOrDie();
}

TEST(CatalogTest, CreateAndGet) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("voters", TinyTable()).ok());
  EXPECT_TRUE(cat.HasTable("voters"));
  EXPECT_TRUE(cat.GetTable("voters").ok());
}

TEST(CatalogTest, NamesAreCaseInsensitive) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Voters", TinyTable()).ok());
  EXPECT_TRUE(cat.HasTable("VOTERS"));
  EXPECT_TRUE(cat.GetTable("voters").ok());
}

TEST(CatalogTest, DuplicateCreateFails) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TinyTable()).ok());
  auto st = cat.CreateTable("t", TinyTable());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(cat.CreateTable("t", TinyTable(), /*or_replace=*/true).ok());
}

TEST(CatalogTest, GetMissingFails) {
  Catalog cat;
  auto r = cat.GetTable("ghost");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropTable) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TinyTable()).ok());
  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_FALSE(cat.HasTable("t"));
  EXPECT_FALSE(cat.DropTable("t").ok());
  EXPECT_TRUE(cat.DropTable("t", /*if_exists=*/true).ok());
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("b", TinyTable()).ok());
  ASSERT_TRUE(cat.CreateTable("a", TinyTable()).ok());
  auto names = cat.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(CatalogTest, NullTableRejected) {
  Catalog cat;
  EXPECT_FALSE(cat.CreateTable("t", nullptr).ok());
  EXPECT_FALSE(cat.AttachStoredTable("t", nullptr).ok());
}

TEST(CatalogTest, StoredEntriesServeReadsWithoutPromotion) {
  bufpool::BufferPool pool;
  Catalog cat;
  ASSERT_TRUE(cat.AttachStoredTable("s", MakeStored("reads", &pool)).ok());
  EXPECT_TRUE(cat.HasTable("s"));
  EXPECT_FALSE(cat.IsResident("s"));

  Schema schema = cat.GetTableSchema("s").ValueOrDie();
  EXPECT_EQ(schema.field(0).name, "x");
  EXPECT_FALSE(cat.IsResident("s"));  // schema lookup never materializes

  TablePtr scanned = cat.ScanTable("s", std::nullopt).ValueOrDie();
  EXPECT_EQ(scanned->num_rows(), 3u);
  EXPECT_FALSE(cat.IsResident("s"));  // scans never promote

  TablePtr read = cat.ReadTable("s").ValueOrDie();
  EXPECT_EQ(read->num_rows(), 3u);
  EXPECT_FALSE(cat.IsResident("s"));  // snapshots never promote
}

TEST(CatalogTest, GetTablePromotesStoredEntryOnce) {
  bufpool::BufferPool pool;
  Catalog cat;
  ASSERT_TRUE(
      cat.AttachStoredTable("s", MakeStored("promote", &pool)).ok());
  uint64_t version = cat.schema_version();
  TablePtr first = cat.GetTable("s").ValueOrDie();
  EXPECT_TRUE(cat.IsResident("s"));
  // Promotion keeps the schema: no version bump, prepared plans survive.
  EXPECT_EQ(cat.schema_version(), version);
  // Later accesses hand back the same resident object, so in-place
  // mutation (INSERT) is visible to every path.
  TablePtr second = cat.GetTable("s").ValueOrDie();
  EXPECT_EQ(first.get(), second.get());
  first->column(0)->AppendInt32(99);
  EXPECT_EQ(cat.ScanTable("s", std::nullopt).ValueOrDie()->num_rows(), 4u);
}

TEST(CatalogTest, StoredScanPushesZonePredicates) {
  bufpool::BufferPool pool;
  Catalog cat;
  ASSERT_TRUE(cat.AttachStoredTable(
                     "s", MakeStored("zones", &pool, {1, 2, 3, 4, 5, 6}))
                  .ok());
  bufpool::ZonePredicate p;
  p.column = "x";
  p.op = bufpool::ZoneOp::kLe;
  p.literal = Value::Int32(2);
  std::vector<bufpool::ZonePredicate> predicates = {p};
  Catalog::ScanOptions options;
  options.zone_predicates = &predicates;
  std::string note;
  options.analyze_note = &note;
  // 6 rows at 2 rows/block → 3 blocks; x <= 2 admits only the first.
  TablePtr out = cat.ScanTable("s", std::nullopt, options).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(note, "blocks=3 skipped=2 pool_hits=0 pool_misses=1");
}

TEST(CatalogTest, ScanBytesTouchedSkipsSkippedBlocks) {
  bufpool::BufferPool pool;
  Catalog cat;
  ASSERT_TRUE(cat.AttachStoredTable(
                     "s", MakeStored("bytes", &pool, {1, 2, 3, 4, 5, 6}))
                  .ok());
  bufpool::ZonePredicate p;
  p.column = "x";
  p.op = bufpool::ZoneOp::kGt;
  p.literal = Value::Int32(100);  // refutes every block
  std::vector<bufpool::ZonePredicate> predicates = {p};
  Catalog::ScanOptions options;
  options.zone_predicates = &predicates;
  uint64_t before = ScanBytesTouched();
  TablePtr none = cat.ScanTable("s", std::nullopt, options).ValueOrDie();
  EXPECT_EQ(none->num_rows(), 0u);
  // All blocks skipped → not a single payload byte counted.
  EXPECT_EQ(ScanBytesTouched(), before);
  // An unrestricted scan counts the bytes it actually materializes.
  (void)cat.ScanTable("s", std::nullopt).ValueOrDie();
  EXPECT_GT(ScanBytesTouched(), before);
}

TEST(CatalogTest, DropWinsOverInFlightPromotion) {
  bufpool::BufferPool pool;
  Catalog cat;
  ASSERT_TRUE(cat.AttachStoredTable("s", MakeStored("drop", &pool)).ok());
  ASSERT_TRUE(cat.DropTable("s").ok());
  auto r = cat.GetTable("s");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mlcs
