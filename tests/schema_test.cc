#include "types/schema.h"

#include <gtest/gtest.h>

namespace mlcs {
namespace {

Schema VoterishSchema() {
  Schema s;
  s.AddField("voter_id", TypeId::kInt64);
  s.AddField("precinct", TypeId::kInt32);
  s.AddField("name", TypeId::kVarchar);
  s.AddField("score", TypeId::kDouble);
  return s;
}

TEST(SchemaTest, FieldAccess) {
  Schema s = VoterishSchema();
  EXPECT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.field(0).name, "voter_id");
  EXPECT_EQ(s.field(3).type, TypeId::kDouble);
}

TEST(SchemaTest, FieldIndexIsCaseInsensitive) {
  Schema s = VoterishSchema();
  EXPECT_EQ(s.FieldIndex("PRECINCT").value(), 1u);
  EXPECT_EQ(s.FieldIndex("Name").value(), 2u);
  EXPECT_FALSE(s.FieldIndex("nope").has_value());
}

TEST(SchemaTest, RequireFieldIndexErrorListsColumns) {
  Schema s = VoterishSchema();
  auto r = s.RequireFieldIndex("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("voter_id"), std::string::npos);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(VoterishSchema(), VoterishSchema());
  Schema other = VoterishSchema();
  other.AddField("extra", TypeId::kBool);
  EXPECT_FALSE(VoterishSchema() == other);
}

TEST(SchemaTest, ToString) {
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kBlob);
  EXPECT_EQ(s.ToString(), "(a INTEGER, b BLOB)");
}

TEST(SchemaTest, SerializationRoundTrip) {
  Schema s = VoterishSchema();
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.data());
  Schema back = Schema::Deserialize(&r).ValueOrDie();
  EXPECT_EQ(s, back);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SchemaTest, EmptySchemaRoundTrip) {
  Schema s;
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.data());
  EXPECT_EQ(Schema::Deserialize(&r).ValueOrDie().num_fields(), 0u);
}

}  // namespace
}  // namespace mlcs
