#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sql/database.h"

namespace mlcs {
namespace {

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run(R"(
      CREATE TABLE voters (id INTEGER, precinct INTEGER, age INTEGER);
      INSERT INTO voters VALUES
        (1, 10, 25), (2, 10, 35), (3, 20, 45), (4, 20, 55), (5, 30, 65);
      CREATE TABLE precincts (precinct INTEGER, dem INTEGER, rep INTEGER);
      INSERT INTO precincts VALUES (10, 60, 40), (20, 30, 70);
    )")
                    .ok());
  }

  TablePtr Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.ValueOrDie() : nullptr;
  }

  Database db_;
};

TEST_F(SqlExecutorTest, SelectConstantWithoutFrom) {
  auto t = Q("SELECT 1 + 1 AS two, 'x' AS s");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(2));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Varchar("x"));
  EXPECT_EQ(t->schema().field(0).name, "two");
}

TEST_F(SqlExecutorTest, SelectStarAndProjection) {
  auto t = Q("SELECT * FROM voters");
  EXPECT_EQ(t->num_rows(), 5u);
  EXPECT_EQ(t->num_columns(), 3u);
  auto p = Q("SELECT age * 2 AS dbl FROM voters");
  EXPECT_EQ(p->GetValue(0, 0).ValueOrDie(), Value::Int32(50));
}

TEST_F(SqlExecutorTest, WhereFilters) {
  auto t = Q("SELECT id FROM voters WHERE age > 40");
  EXPECT_EQ(t->num_rows(), 3u);
  auto none = Q("SELECT id FROM voters WHERE age > 100");
  EXPECT_EQ(none->num_rows(), 0u);
  auto combo = Q("SELECT id FROM voters WHERE age > 30 AND precinct = 20");
  EXPECT_EQ(combo->num_rows(), 2u);
}

TEST_F(SqlExecutorTest, OrderByAndLimit) {
  auto t = Q("SELECT id FROM voters ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(5));
  EXPECT_EQ(t->GetValue(1, 0).ValueOrDie(), Value::Int32(4));
  // Ordinal ORDER BY.
  auto o = Q("SELECT id, age FROM voters ORDER BY 2 LIMIT 1");
  EXPECT_EQ(o->GetValue(0, 0).ValueOrDie(), Value::Int32(1));
}

TEST_F(SqlExecutorTest, GlobalAggregates) {
  auto t = Q("SELECT COUNT(*) AS n, SUM(age) AS total, AVG(age) AS mean "
             "FROM voters");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Int64(225));
  EXPECT_DOUBLE_EQ(t->GetValue(0, 2).ValueOrDie().double_value(), 45.0);
}

TEST_F(SqlExecutorTest, GroupBy) {
  auto t = Q("SELECT precinct, COUNT(*) AS n, MAX(age) AS oldest "
             "FROM voters GROUP BY precinct ORDER BY precinct");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Int64(2));
  EXPECT_EQ(t->GetValue(1, 2).ValueOrDie(), Value::Int32(55));
}

TEST_F(SqlExecutorTest, AggregateOverExpression) {
  auto t = Q("SELECT SUM(age * 2) AS s FROM voters");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(450));
}

TEST_F(SqlExecutorTest, NonGroupColumnRejected) {
  auto r = db_.Query("SELECT age, COUNT(*) FROM voters GROUP BY precinct");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlExecutorTest, JoinAndAggregate) {
  auto t = Q("SELECT p.dem, COUNT(*) AS n FROM voters v "
             "JOIN precincts p ON v.precinct = p.precinct "
             "GROUP BY dem ORDER BY dem");
  ASSERT_EQ(t->num_rows(), 2u);
  // precinct 20 (dem=30) has 2 voters; precinct 10 (dem=60) has 2.
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(30));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Int64(2));
}

TEST_F(SqlExecutorTest, LeftJoinKeepsUnmatched) {
  auto t = Q("SELECT id, dem FROM voters v LEFT JOIN precincts p "
             "ON v.precinct = p.precinct ORDER BY id");
  ASSERT_EQ(t->num_rows(), 5u);
  EXPECT_TRUE(t->GetValue(4, 1).ValueOrDie().is_null());  // precinct 30
}

TEST_F(SqlExecutorTest, SubqueryInFrom) {
  auto t = Q("SELECT COUNT(*) FROM (SELECT id FROM voters WHERE age > 40) "
             "old");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(3));
}

TEST_F(SqlExecutorTest, ScalarSubquery) {
  auto t = Q("SELECT id FROM voters WHERE age > (SELECT AVG(age) FROM "
             "voters)");
  EXPECT_EQ(t->num_rows(), 2u);
  // Non-scalar subquery rejected.
  EXPECT_FALSE(
      db_.Query("SELECT (SELECT id FROM voters) FROM voters").ok());
}

TEST_F(SqlExecutorTest, CreateTableAsSelect) {
  ASSERT_TRUE(db_.Query("CREATE TABLE old AS SELECT * FROM voters WHERE "
                        "age > 40")
                  .ok());
  auto t = Q("SELECT COUNT(*) FROM old");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(3));
  // CTAS owns its storage: mutating the new table must not touch voters.
  ASSERT_TRUE(db_.Query("INSERT INTO old VALUES (99, 99, 99)").ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM voters")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(5));
}

TEST_F(SqlExecutorTest, InsertSelectCasts) {
  ASSERT_TRUE(db_.Query("CREATE TABLE wide (id BIGINT, p BIGINT, age "
                        "DOUBLE)")
                  .ok());
  ASSERT_TRUE(db_.Query("INSERT INTO wide SELECT * FROM voters").ok());
  auto t = Q("SELECT SUM(age) FROM wide");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).ValueOrDie().double_value(), 225.0);
}

TEST_F(SqlExecutorTest, DropTable) {
  ASSERT_TRUE(db_.Query("DROP TABLE precincts").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM precincts").ok());
  EXPECT_FALSE(db_.Query("DROP TABLE precincts").ok());
  EXPECT_TRUE(db_.Query("DROP TABLE IF EXISTS precincts").ok());
}

TEST_F(SqlExecutorTest, BuiltinScalarFunctions) {
  auto t = Q("SELECT abs(-2), sqrt(9.0), length('abc'), upper('x')");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).ValueOrDie().double_value(), 2.0);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).ValueOrDie().double_value(), 3.0);
  EXPECT_EQ(t->GetValue(0, 2).ValueOrDie(), Value::Int64(3));
  EXPECT_EQ(t->GetValue(0, 3).ValueOrDie(), Value::Varchar("X"));
}

TEST_F(SqlExecutorTest, NativeCxxUdfCallableFromSql) {
  udf::ScalarUdfEntry entry;
  entry.name = "plus_seven";
  entry.fn = [](const std::vector<ColumnPtr>& args,
                size_t) -> Result<ColumnPtr> {
    return exec::BinaryKernel(exec::BinOpKind::kAdd, *args[0],
                              *Column::Constant(Value::Int32(7), 1));
  };
  ASSERT_TRUE(db_.udfs().RegisterScalar(std::move(entry)).ok());
  auto t = Q("SELECT plus_seven(age) FROM voters WHERE id = 1");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(32));
}

TEST_F(SqlExecutorTest, IsNullPredicate) {
  ASSERT_TRUE(db_.Run("CREATE TABLE n (x INTEGER);"
                      "INSERT INTO n VALUES (1), (NULL), (3);")
                  .ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM n WHERE x IS NULL")
                ->GetValue(0, 0)
                .ValueOrDie(),
            Value::Int64(1));
  EXPECT_EQ(Q("SELECT COUNT(x) FROM n")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(2));
}

TEST_F(SqlExecutorTest, CastInSql) {
  auto t = Q("SELECT CAST(age AS DOUBLE) FROM voters LIMIT 1");
  EXPECT_EQ(t->schema().field(0).type, TypeId::kDouble);
}

TEST_F(SqlExecutorTest, ErrorsAreReported) {
  EXPECT_FALSE(db_.Query("SELECT nope FROM voters").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(db_.Query("SELECT unknown_fn(age) FROM voters").ok());
  EXPECT_FALSE(
      db_.Query("INSERT INTO voters VALUES (1)").ok());  // arity
}

TEST_F(SqlExecutorTest, RunReturnsLastResult) {
  auto t = db_.Run("SELECT 1; SELECT 2;").ValueOrDie();
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(2));
  EXPECT_FALSE(db_.Run("").ok());
}

TEST_F(SqlExecutorTest, ConnectionWrapper) {
  Connection conn = db_.Connect();
  auto t = conn.Query("SELECT COUNT(*) FROM voters").ValueOrDie();
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
}

/// DML status tables report the affected-row count: column 0 keeps the
/// classic "VERB n" message, column 1 carries the count as BIGINT.
TEST_F(SqlExecutorTest, DmlStatusReportsAffectedRows) {
  auto ins = Q("INSERT INTO voters VALUES (6, 30, 75), (7, 30, 85)");
  ASSERT_EQ(ins->num_columns(), 2u);
  EXPECT_EQ(ins->schema().field(1).name, "rows");
  EXPECT_EQ(ins->GetValue(0, 0).ValueOrDie(), Value::Varchar("INSERT 2"));
  EXPECT_EQ(ins->GetValue(0, 1).ValueOrDie(), Value::Int64(2));

  auto ins_sel =
      Q("INSERT INTO voters SELECT id + 10, precinct, age FROM voters "
        "WHERE precinct = 10");
  EXPECT_EQ(ins_sel->GetValue(0, 1).ValueOrDie(), Value::Int64(2));

  auto upd = Q("UPDATE voters SET age = age + 1 WHERE precinct = 20");
  EXPECT_EQ(upd->GetValue(0, 0).ValueOrDie(), Value::Varchar("UPDATE 2"));
  EXPECT_EQ(upd->GetValue(0, 1).ValueOrDie(), Value::Int64(2));

  auto del = Q("DELETE FROM voters WHERE precinct = 30");
  EXPECT_EQ(del->GetValue(0, 0).ValueOrDie(), Value::Varchar("DELETE 3"));
  EXPECT_EQ(del->GetValue(0, 1).ValueOrDie(), Value::Int64(3));

  // No-match DML reports zero, not an error.
  auto none = Q("DELETE FROM voters WHERE age > 1000");
  EXPECT_EQ(none->GetValue(0, 1).ValueOrDie(), Value::Int64(0));
  auto upd_none = Q("UPDATE voters SET age = 0 WHERE id = -1");
  EXPECT_EQ(upd_none->GetValue(0, 1).ValueOrDie(), Value::Int64(0));

  // Unconditional DELETE counts every row it removed.
  auto all = Q("DELETE FROM voters");
  EXPECT_EQ(all->GetValue(0, 1).ValueOrDie(), Value::Int64(6));
}

/// The prepared-plan cache serves repeated SELECT text without re-planning
/// and invalidates on DDL.
TEST_F(SqlExecutorTest, PlanCacheHitsAndInvalidation) {
  // The cache's event counters are process-wide registry series; assert on
  // deltas so other tests' queries don't interfere.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* hits = registry.GetCounter("mlcs.plan_cache.hits");
  obs::Counter* stale = registry.GetCounter("mlcs.plan_cache.stale");
  const std::string sql = "SELECT COUNT(*) FROM voters";
  uint64_t hits0 = hits->Value();
  EXPECT_EQ(Q(sql)->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
  EXPECT_EQ(Q(sql)->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
  EXPECT_EQ(Q(sql)->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
  EXPECT_EQ(hits->Value(), hits0 + 2);
  EXPECT_GE(db_.plan_cache_size(), 1u);

  // DML rewrites the table in place (same schema): cached plans stay
  // valid and see the new data.
  ASSERT_TRUE(db_.Query("DELETE FROM voters WHERE id = 5").ok());
  EXPECT_EQ(Q(sql)->GetValue(0, 0).ValueOrDie(), Value::Int64(4));

  // DDL that changes a schema invalidates: re-planned, still correct.
  uint64_t stale0 = stale->Value();
  ASSERT_TRUE(db_.Query("DROP TABLE precincts").ok());
  EXPECT_EQ(Q(sql)->GetValue(0, 0).ValueOrDie(), Value::Int64(4));
  EXPECT_GE(stale->Value(), stale0 + 1);

  db_.ClearPlanCache();
  EXPECT_EQ(db_.plan_cache_size(), 0u);
  EXPECT_EQ(Q(sql)->GetValue(0, 0).ValueOrDie(), Value::Int64(4));
}

/// Dropping and recreating a scanned table with a different shape must not
/// serve the old plan.
TEST_F(SqlExecutorTest, PlanCacheSurvivesTableReplacement) {
  const std::string sql = "SELECT * FROM voters";
  EXPECT_EQ(Q(sql)->num_columns(), 3u);
  ASSERT_TRUE(db_.Query("DROP TABLE voters").ok());
  ASSERT_TRUE(db_.Query("CREATE TABLE voters (only_col BIGINT)").ok());
  ASSERT_TRUE(db_.Query("INSERT INTO voters VALUES (42)").ok());
  auto t = Q(sql);
  ASSERT_EQ(t->num_columns(), 1u);
  EXPECT_EQ(t->schema().field(0).name, "only_col");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(42));
}

}  // namespace
}  // namespace mlcs
