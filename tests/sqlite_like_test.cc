#include "client/sqlite_like.h"

#include <gtest/gtest.h>

namespace mlcs::client {
namespace {

class SqliteLikeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE TABLE t (x INTEGER, d DOUBLE, s VARCHAR);"
                        "INSERT INTO t VALUES (1, 0.5, 'a'), "
                        "(2, 1.5, 'b'), (3, NULL, 'c');")
                    .ok());
  }

  Database db_;
};

TEST_F(SqliteLikeTest, StepThroughRows) {
  RowCursor cursor;
  ASSERT_TRUE(cursor.Prepare(&db_, "SELECT * FROM t ORDER BY x").ok());
  EXPECT_EQ(cursor.num_columns(), 3u);
  int rows = 0;
  while (cursor.Step()) {
    ++rows;
    EXPECT_EQ(cursor.ColumnInt(0).ValueOrDie(), rows);
  }
  EXPECT_EQ(rows, 3);
  EXPECT_FALSE(cursor.Step());  // stays exhausted
}

TEST_F(SqliteLikeTest, TypedAccessors) {
  RowCursor cursor;
  ASSERT_TRUE(cursor.Prepare(&db_, "SELECT * FROM t ORDER BY x").ok());
  ASSERT_TRUE(cursor.Step());
  EXPECT_EQ(cursor.ColumnInt(0).ValueOrDie(), 1);
  EXPECT_DOUBLE_EQ(cursor.ColumnDouble(1).ValueOrDie(), 0.5);
  EXPECT_EQ(cursor.ColumnText(2).ValueOrDie(), "a");
  EXPECT_FALSE(cursor.ColumnIsNull(1).ValueOrDie());
  ASSERT_TRUE(cursor.Step());
  ASSERT_TRUE(cursor.Step());
  EXPECT_TRUE(cursor.ColumnIsNull(1).ValueOrDie());
  EXPECT_FALSE(cursor.ColumnDouble(1).ok());  // NULL has no double
}

TEST_F(SqliteLikeTest, AccessBeforeStepRejected) {
  RowCursor cursor;
  ASSERT_TRUE(cursor.Prepare(&db_, "SELECT * FROM t").ok());
  EXPECT_FALSE(cursor.ColumnInt(0).ok());
}

TEST_F(SqliteLikeTest, PrepareErrorsSurface) {
  RowCursor cursor;
  EXPECT_FALSE(cursor.Prepare(&db_, "SELECT * FROM missing").ok());
}

TEST_F(SqliteLikeTest, EmptyResult) {
  RowCursor cursor;
  ASSERT_TRUE(cursor.Prepare(&db_, "SELECT * FROM t WHERE x > 99").ok());
  EXPECT_FALSE(cursor.Step());
}

TEST_F(SqliteLikeTest, FetchAllMatchesDirectQuery) {
  auto direct = db_.Query("SELECT * FROM t ORDER BY x").ValueOrDie();
  auto fetched =
      FetchAllRowAtATime(&db_, "SELECT * FROM t ORDER BY x").ValueOrDie();
  EXPECT_TRUE(direct->Equals(*fetched));
}

}  // namespace
}  // namespace mlcs::client
