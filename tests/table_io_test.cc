#include "storage/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mlcs {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TablePtr MixedTable() {
  Schema s;
  s.AddField("id", TypeId::kInt64);
  s.AddField("label", TypeId::kVarchar);
  s.AddField("score", TypeId::kDouble);
  s.AddField("model", TypeId::kBlob);
  s.AddField("flag", TypeId::kBool);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int64(1), Value::Varchar("a"),
                            Value::Double(0.5),
                            Value::Blob(std::string("\x00\x01", 2)),
                            Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(t->AppendRow({Value::Int64(2), Value::MakeNull(TypeId::kVarchar),
                            Value::MakeNull(TypeId::kDouble),
                            Value::Blob(""), Value::Bool(false)})
                  .ok());
  return t;
}

TEST(TableIoTest, RoundTrip) {
  std::string path = TempPath("roundtrip.mlt");
  auto t = MixedTable();
  ASSERT_TRUE(SaveTable(*t, path).ok());
  auto back = LoadTable(path).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
  std::remove(path.c_str());
}

TEST(TableIoTest, EmptyTableRoundTrip) {
  std::string path = TempPath("empty.mlt");
  Schema s;
  s.AddField("x", TypeId::kInt32);
  Table t(std::move(s));
  ASSERT_TRUE(SaveTable(t, path).ok());
  auto back = LoadTable(path).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->schema().field(0).name, "x");
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileReportsIoError) {
  auto r = LoadTable("/nonexistent/dir/file.mlt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TableIoTest, GarbageFileRejected) {
  std::string path = TempPath("garbage.mlt");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a table", f);
  std::fclose(f);
  auto r = LoadTable(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(TableIoTest, UnwritablePathReportsIoError) {
  auto t = MixedTable();
  EXPECT_FALSE(SaveTable(*t, "/nonexistent/dir/file.mlt").ok());
}

}  // namespace
}  // namespace mlcs
