/// Standard-exporter and crash-dump contracts (DESIGN.md §15): Prometheus
/// text exposition (names, label escaping, cumulative buckets), Chrome
/// trace_event JSON, dump-to-disk helpers, and the async-signal-safe
/// crash dump round-tripped through a real SIGUSR1 delivery.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/crash_dump.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wait_stats.h"

namespace mlcs::obs {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// -- Prometheus text exposition -------------------------------------------

TEST(PrometheusExportTest, CounterAndGaugeFamilies) {
  MetricsRegistry::Global().GetCounter("test.export.prom_counter")->Add(3);
  MetricsRegistry::Global().GetGauge("test.export.prom_gauge")->Set(-7);
  std::string text = PrometheusText();
  // Golden fragments: dotted names sanitize to underscores, each sample
  // is preceded by its TYPE header.
  EXPECT_NE(text.find("# TYPE test_export_prom_counter counter\n"
                      "test_export_prom_counter 3\n"),
            std::string::npos)
      << text.substr(0, 2000);
  EXPECT_NE(text.find("# TYPE test_export_prom_gauge gauge\n"
                      "test_export_prom_gauge -7\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, HistogramIsCumulativeWithInfBucket) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.export.prom_hist", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);  // overflow bucket
  std::string text = PrometheusText();
  // Buckets are cumulative; +Inf equals _count; _sum is the raw total.
  EXPECT_NE(text.find("# TYPE test_export_prom_hist histogram\n"
                      "test_export_prom_hist_bucket{le=\"1\"} 1\n"
                      "test_export_prom_hist_bucket{le=\"2\"} 2\n"
                      "test_export_prom_hist_bucket{le=\"+Inf\"} 3\n"
                      "test_export_prom_hist_sum 101\n"
                      "test_export_prom_hist_count 3\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusExportTest, WaitSitesExportAsLabeledFamilyWithEscaping) {
  WaitSite* site =
      WaitStats::Global().GetSite(WaitKind::kQueue, "esc\"site\\name");
  site->RecordWaitNs(5'000);  // 5us → first bucket (10us bound)
  std::string text = PrometheusText();
  EXPECT_NE(text.find("# TYPE mlcs_wait_us histogram\n"), std::string::npos);
  // Reserved characters in the site label are escaped per the exposition
  // format: backslash and double-quote.
  const std::string labels =
      "{kind=\"queue\",site=\"esc\\\"site\\\\name\"";
  EXPECT_NE(text.find("mlcs_wait_us_bucket" + labels + ",le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mlcs_wait_us_sum" + labels + "} 5"),
            std::string::npos);
  EXPECT_NE(text.find("mlcs_wait_us_count" + labels + "} 1"),
            std::string::npos);
}

TEST(PrometheusExportTest, DumpWritesFile) {
  MetricsRegistry::Global().GetCounter("test.export.dump_marker")->Add(1);
  std::string path = testing::TempDir() + "/prom_dump.txt";
  ASSERT_TRUE(DumpPrometheusText(path).ok());
  std::string text = ReadFileOrEmpty(path);
  EXPECT_NE(text.find("# TYPE "), std::string::npos);
  EXPECT_NE(text.find("test_export_dump_marker 1"), std::string::npos);
}

/// -- Chrome trace_event JSON ----------------------------------------------

TEST(ChromeTraceExportTest, EmitsCompleteEventsWithArgs) {
  FlightRecorder::Global().Clear();
  uint64_t id = 0;
  {
    TraceContext ctx("chrome export root", /*force=*/true);
    id = ctx.trace_id();
    ScopedSpan s("exec.scan");
    s.set_rows_out(42);
    s.set_bytes(1024);
    s.set_note("blocks=3 \"skipped\"=2");
  }
  std::string json = ChromeTraceJson(id);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  // Every span is a complete ("X") event with microsecond ts/dur and the
  // span tree flattened into args.
  EXPECT_NE(json.find("\"name\":\"exec.scan\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"chrome export root\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":" + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\":42"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos);
  // Notes are JSON-escaped.
  EXPECT_NE(json.find("\"note\":\"blocks=3 \\\"skipped\\\"=2\""),
            std::string::npos)
      << json;
  FlightRecorder::Global().Clear();
}

TEST(ChromeTraceExportTest, UnknownTraceYieldsEmptyEventList) {
  FlightRecorder::Global().Clear();
  EXPECT_EQ(ChromeTraceJson(987654321),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(ChromeTraceExportTest, DumpWritesFile) {
  FlightRecorder::Global().Clear();
  uint64_t id = 0;
  {
    TraceContext ctx("dumped", /*force=*/true);
    id = ctx.trace_id();
    ScopedSpan s("work");
  }
  std::string path = testing::TempDir() + "/chrome_dump.json";
  ASSERT_TRUE(DumpChromeTrace(id, path).ok());
  std::string json = ReadFileOrEmpty(path);
  EXPECT_NE(json.find("\"name\":\"dumped\""), std::string::npos);
  FlightRecorder::Global().Clear();
}

/// -- Crash dump -----------------------------------------------------------

/// Populates every crash-state domain, then checks the dump carries it:
/// the metrics seqlock buffer, the pre-serialized trace ring, and the
/// calling thread's live span stack.
std::string PopulateAndDump(bool via_signal) {
  MetricsRegistry::Global().GetCounter("test.export.crash_marker")->Add(11);
  FlightRecorder::Global().Clear();
  {
    TraceContext done("crash completed trace", /*force=*/true);
    ScopedSpan s("finished.span");
  }
  FlightRecorder::RefreshCrashMetrics(/*force=*/true);

  crash::SetCrashDumpDir(testing::TempDir().c_str());
  EXPECT_TRUE(crash::InstallCrashHandler(/*install_fatal=*/false));

  // A live (unfinished) trace: its span stack must appear under
  // "threads" even though nothing was flushed yet.
  TraceContext live("crash live trace", /*force=*/true);
  ScopedSpan outer("live.outer");
  ScopedSpan inner("live.inner");
  if (via_signal) {
    // raise() delivers synchronously on this thread; the handler has
    // returned (SIGUSR1 is non-fatal) by the time raise returns.
    EXPECT_EQ(std::raise(SIGUSR1), 0);
  } else {
    crash::TriggerCrashDumpForTesting();
  }
  return ReadFileOrEmpty(crash::CrashDumpPath());
}

TEST(CrashDumpTest, Sigusr1WritesDumpAndProcessSurvives) {
  std::string dump = PopulateAndDump(/*via_signal=*/true);
  ASSERT_FALSE(dump.empty()) << crash::CrashDumpPath();
  EXPECT_NE(dump.find("\"signal\":" + std::to_string(SIGUSR1)),
            std::string::npos);
  EXPECT_NE(dump.find("\"pid\":"), std::string::npos);
  // Metrics snapshot (seqlock buffer refreshed above).
  EXPECT_NE(dump.find("test.export.crash_marker"), std::string::npos);
  // Flight-recorder ring summary.
  EXPECT_NE(dump.find("\"recent_traces\":["), std::string::npos);
  EXPECT_NE(dump.find("crash completed trace"), std::string::npos);
  // The live thread's span stack, root-to-leaf.
  EXPECT_NE(dump.find("\"threads\":["), std::string::npos);
  EXPECT_NE(dump.find("crash live trace"), std::string::npos);
  EXPECT_NE(dump.find("live.outer"), std::string::npos);
  EXPECT_NE(dump.find("live.inner"), std::string::npos);
  FlightRecorder::Global().Clear();
}

TEST(CrashDumpTest, TriggerForTestingMatchesSignalPath) {
  std::string dump = PopulateAndDump(/*via_signal=*/false);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"signal\":0"), std::string::npos);
  EXPECT_NE(dump.find("live.inner"), std::string::npos);
  FlightRecorder::Global().Clear();
}

}  // namespace
}  // namespace mlcs::obs
