#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace mlcs::sql {
namespace {

TEST(SqlLexerTest, BasicSelect) {
  auto tokens =
      TokenizeSql("SELECT a, b FROM t WHERE a >= 10;").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[0].type, SqlTokenType::kIdent);
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens[2].type, SqlTokenType::kComma);
  EXPECT_EQ(tokens[8].text, ">=");
  EXPECT_EQ(tokens[8].type, SqlTokenType::kOperator);
  EXPECT_EQ(tokens.back().type, SqlTokenType::kEof);
}

TEST(SqlLexerTest, CommentsSkipped) {
  auto tokens = TokenizeSql("-- header\nSELECT 1 -- trailing\n").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[0].line, 2);
}

TEST(SqlLexerTest, StringWithQuoteEscape) {
  auto tokens = TokenizeSql("SELECT 'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[1].type, SqlTokenType::kString);
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(SqlLexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(TokenizeSql("SELECT 'oops").ok());
}

TEST(SqlLexerTest, NumbersAndOperators) {
  auto tokens = TokenizeSql("1 2.5 1e-3 <> != a.b").ValueOrDie();
  EXPECT_EQ(tokens[0].type, SqlTokenType::kInt);
  EXPECT_EQ(tokens[1].type, SqlTokenType::kFloat);
  EXPECT_EQ(tokens[2].type, SqlTokenType::kFloat);
  EXPECT_EQ(tokens[3].text, "<>");
  EXPECT_EQ(tokens[4].text, "!=");
  EXPECT_EQ(tokens[6].type, SqlTokenType::kDot);
}

TEST(SqlLexerTest, BodyCapturedRaw) {
  const char* sql = "LANGUAGE VSCRIPT { x = {a: 1}; # note } in comment\n"
                    "s = '}'; return x; }";
  auto tokens = TokenizeSql(sql).ValueOrDie();
  ASSERT_EQ(tokens[2].type, SqlTokenType::kBody);
  // The nested dict brace, the brace in the comment and the brace in the
  // string must all be swallowed into the body.
  EXPECT_NE(tokens[2].text.find("{a: 1}"), std::string::npos);
  EXPECT_NE(tokens[2].text.find("return x;"), std::string::npos);
  EXPECT_EQ(tokens[3].type, SqlTokenType::kEof);
}

TEST(SqlLexerTest, UnterminatedBodyRejected) {
  EXPECT_FALSE(TokenizeSql("LANGUAGE V { x = 1;").ok());
}

TEST(SqlLexerTest, UnmatchedCloseBraceRejected) {
  EXPECT_FALSE(TokenizeSql("SELECT 1 }").ok());
}

TEST(SqlLexerTest, OffsetsPointIntoSource) {
  std::string sql = "SELECT abc";
  auto tokens = TokenizeSql(sql).ValueOrDie();
  EXPECT_EQ(sql.substr(tokens[1].offset, 3), "abc");
}

}  // namespace
}  // namespace mlcs::sql
