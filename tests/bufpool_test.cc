/// Block storage + buffer pool (DESIGN.md §12): .blk round-trips, zone-map
/// skip semantics, LRU eviction under a byte budget, pin correctness, and
/// torn-write recovery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "bufpool/block_format.h"
#include "bufpool/buffer_pool.h"
#include "bufpool/stored_table.h"
#include "bufpool/zone_map.h"
#include "common/file_util.h"
#include "storage/table.h"

namespace mlcs::bufpool {
namespace {

std::string TempDirFor(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  MLCS_CHECK_OK(MakeDirs(dir));
  return dir;
}

/// rows of (id INT64, score DOUBLE, tag VARCHAR with nulls every 5th row).
TablePtr MakeTestTable(size_t rows, int64_t id_base = 0) {
  Schema schema;
  schema.AddField("id", TypeId::kInt64);
  schema.AddField("score", TypeId::kDouble);
  schema.AddField("tag", TypeId::kVarchar);
  auto table = Table::Make(std::move(schema));
  for (size_t i = 0; i < rows; ++i) {
    int64_t id = id_base + static_cast<int64_t>(i);
    table->column(0)->AppendInt64(id);
    table->column(1)->AppendDouble(static_cast<double>(id) + 0.5);
    if (i % 5 == 0) {
      table->column(2)->AppendNull();
    } else {
      table->column(2)->AppendString("tag" + std::to_string(id));
    }
  }
  return table;
}

ZonePredicate Pred(const std::string& col, ZoneOp op, Value literal) {
  ZonePredicate p;
  p.column = col;
  p.op = op;
  p.literal = std::move(literal);
  return p;
}

/// Builds "prefix<i>" keys (avoids a GCC 12 -Wrestrict false positive in
/// inlined string operator+).
std::string Key(const char* prefix, int i) {
  std::string out(prefix);
  out += std::to_string(i);
  return out;
}

/// Truncates a file to `keep` bytes (torn-write simulation).
void Truncate(const std::string& path, long keep) {
  auto bytes = ReadFileBytes(path).ValueOrDie();
  ASSERT_LT(static_cast<size_t>(keep), bytes.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, static_cast<size_t>(keep), f),
            static_cast<size_t>(keep));
  std::fclose(f);
}

/// -- Block format -----------------------------------------------------------

TEST(BlockFormatTest, RoundTripsAllColumnTypes) {
  std::string dir = TempDirFor("blk_roundtrip");
  Schema schema;
  schema.AddField("b", TypeId::kBool);
  schema.AddField("i32", TypeId::kInt32);
  schema.AddField("i64", TypeId::kInt64);
  schema.AddField("d", TypeId::kDouble);
  schema.AddField("s", TypeId::kVarchar);
  schema.AddField("blob", TypeId::kBlob);
  auto table = Table::Make(std::move(schema));
  ASSERT_TRUE(table
                  ->AppendRow({Value::Bool(true), Value::Int32(-7),
                               Value::Int64(1) , Value::Double(2.5),
                               Value::Varchar("hello"),
                               Value::Blob(std::string("\x00\x01\xff", 3))})
                  .ok());
  ASSERT_TRUE(table
                  ->AppendRow({Value::MakeNull(TypeId::kBool),
                               Value::MakeNull(TypeId::kInt32),
                               Value::MakeNull(TypeId::kInt64),
                               Value::MakeNull(TypeId::kDouble),
                               Value::MakeNull(TypeId::kVarchar),
                               Value::MakeNull(TypeId::kBlob)})
                  .ok());
  std::string path = dir + "/block_0000.blk";
  ASSERT_TRUE(WriteBlockFile(*table, path).ok());

  BlockMeta meta = ReadBlockMeta(path).ValueOrDie();
  EXPECT_EQ(meta.rows, 2u);
  ASSERT_EQ(meta.columns.size(), 6u);
  EXPECT_EQ(meta.columns[2].name, "i64");
  EXPECT_EQ(meta.columns[2].type, TypeId::kInt64);
  for (size_t c = 0; c < meta.columns.size(); ++c) {
    ColumnPtr col = ReadColumnChunk(meta, c).ValueOrDie();
    EXPECT_TRUE(col->Equals(*table->column(c))) << "column " << c;
  }
  // Every column has exactly one null; BLOB columns carry no min/max.
  EXPECT_EQ(meta.columns[0].zone.null_count, 1u);
  EXPECT_FALSE(meta.columns[5].zone.has_minmax);
  EXPECT_TRUE(meta.columns[2].zone.has_minmax);
  EXPECT_EQ(meta.columns[2].zone.min, Value::Int64(1));
  EXPECT_EQ(meta.columns[2].zone.max, Value::Int64(1));
}

TEST(BlockFormatTest, RejectsWrongMagicAndTruncation) {
  std::string dir = TempDirFor("blk_torn");
  std::string path = dir + "/block_0000.blk";
  TablePtr table = MakeTestTable(64);
  ASSERT_TRUE(WriteBlockFile(*table, path).ok());
  BlockMeta good = ReadBlockMeta(path).ValueOrDie();

  // Truncated mid-payload: header still parses, the chunk read fails
  // cleanly (torn-write guard), no crash.
  uint64_t last = good.columns.back().payload_offset;
  Truncate(path, static_cast<long>(last + 4));
  BlockMeta reread = ReadBlockMeta(path).ValueOrDie();
  Result<ColumnPtr> chunk =
      ReadColumnChunk(reread, reread.columns.size() - 1);
  EXPECT_FALSE(chunk.ok());

  // Truncated mid-header: meta read itself fails cleanly.
  Truncate(path, 6);
  EXPECT_FALSE(ReadBlockMeta(path).ok());

  // Not a block file at all.
  const char junk[] = "definitely not a block";
  ASSERT_TRUE(AtomicWriteFile(path, junk, sizeof(junk)).ok());
  EXPECT_FALSE(ReadBlockMeta(path).ok());
}

/// -- Zone maps --------------------------------------------------------------

TEST(ZoneMapTest, ComputeSummarizesMinMaxAndNulls) {
  auto col = Column::FromInt64({5, -3, 9, 5});
  col->SetNull(1);
  ZoneMap zone = ComputeZoneMap(*col);
  EXPECT_EQ(zone.null_count, 1u);
  ASSERT_TRUE(zone.has_minmax);
  EXPECT_EQ(zone.min, Value::Int64(5));
  EXPECT_EQ(zone.max, Value::Int64(9));
}

TEST(ZoneMapTest, AdmitSemantics) {
  ZoneMap zone;
  zone.has_minmax = true;
  zone.min = Value::Int64(10);
  zone.max = Value::Int64(20);

  EXPECT_TRUE(ZoneAdmits(zone, 4, ZoneOp::kEq, Value::Int64(15)));
  EXPECT_FALSE(ZoneAdmits(zone, 4, ZoneOp::kEq, Value::Int64(25)));
  EXPECT_FALSE(ZoneAdmits(zone, 4, ZoneOp::kLt, Value::Int64(10)));
  EXPECT_TRUE(ZoneAdmits(zone, 4, ZoneOp::kLe, Value::Int64(10)));
  EXPECT_FALSE(ZoneAdmits(zone, 4, ZoneOp::kGt, Value::Int64(20)));
  EXPECT_TRUE(ZoneAdmits(zone, 4, ZoneOp::kGe, Value::Int64(20)));
  // kNe is only refutable when the whole block is one constant.
  EXPECT_TRUE(ZoneAdmits(zone, 4, ZoneOp::kNe, Value::Int64(15)));
  ZoneMap constant = zone;
  constant.max = Value::Int64(10);
  EXPECT_FALSE(ZoneAdmits(constant, 4, ZoneOp::kNe, Value::Int64(10)));
  EXPECT_TRUE(ZoneAdmits(constant, 4, ZoneOp::kNe, Value::Int64(11)));

  // NULL literal: `x <op> NULL` is never TRUE — admits nothing.
  EXPECT_FALSE(ZoneAdmits(zone, 4, ZoneOp::kEq,
                          Value::MakeNull(TypeId::kInt64)));
  // All-null block: no non-null row can match anything.
  ZoneMap all_null;
  all_null.null_count = 4;
  EXPECT_FALSE(ZoneAdmits(all_null, 4, ZoneOp::kEq, Value::Int64(10)));
  // Unsummarized (BLOB / NaN-bearing) blocks fail open.
  ZoneMap no_minmax;
  no_minmax.null_count = 1;
  EXPECT_TRUE(ZoneAdmits(no_minmax, 4, ZoneOp::kEq, Value::Int64(10)));
  // Type-mismatched literal fails open.
  EXPECT_TRUE(ZoneAdmits(zone, 4, ZoneOp::kEq, Value::Varchar("ten")));
  // NaN literal fails open (comparisons are unprovable from min/max).
  ZoneMap dzone;
  dzone.has_minmax = true;
  dzone.min = Value::Double(1.0);
  dzone.max = Value::Double(2.0);
  EXPECT_TRUE(ZoneAdmits(dzone, 4, ZoneOp::kEq,
                         Value::Double(std::nan(""))));
  // Int literal against a double zone works within the exact range.
  EXPECT_FALSE(ZoneAdmits(dzone, 4, ZoneOp::kGt, Value::Int64(2)));
  EXPECT_TRUE(ZoneAdmits(dzone, 4, ZoneOp::kGe, Value::Int64(2)));
  // Strings compare lexicographically.
  ZoneMap szone;
  szone.has_minmax = true;
  szone.min = Value::Varchar("banana");
  szone.max = Value::Varchar("cherry");
  EXPECT_FALSE(ZoneAdmits(szone, 4, ZoneOp::kEq, Value::Varchar("apple")));
  EXPECT_TRUE(ZoneAdmits(szone, 4, ZoneOp::kEq, Value::Varchar("carrot")));

  // NaN in the column data leaves the block unsummarized (fails open).
  auto nan_col = Column::FromDouble({1.0, std::nan(""), 3.0});
  EXPECT_FALSE(ComputeZoneMap(*nan_col).has_minmax);
}

/// -- StoredTable ------------------------------------------------------------

TEST(StoredTableTest, WriteOpenScanRoundTrip) {
  std::string dir = TempDirFor("stored_roundtrip");
  TablePtr table = MakeTestTable(100);
  ASSERT_TRUE(StoredTable::Write(*table, dir, /*block_rows=*/16).ok());

  BufferPool pool;
  auto stored = StoredTable::Open(dir, &pool).ValueOrDie();
  EXPECT_EQ(stored->num_rows(), 100u);
  EXPECT_EQ(stored->num_blocks(), 7u);  // ceil(100 / 16)
  TablePtr back = stored->Materialize().ValueOrDie();
  EXPECT_TRUE(table->Equals(*back));

  // Projection keeps stored field names and order-of-request.
  TablePtr proj =
      stored->Scan(std::vector<std::string>{"tag", "id"}, {}).ValueOrDie();
  EXPECT_EQ(proj->num_columns(), 2u);
  EXPECT_EQ(proj->schema().field(0).name, "tag");
  EXPECT_EQ(proj->schema().field(1).name, "id");
  EXPECT_TRUE(proj->column(1)->Equals(*table->column(0)));
}

TEST(StoredTableTest, ZonePredicatesSkipBlocks) {
  std::string dir = TempDirFor("stored_skip");
  TablePtr table = MakeTestTable(100);  // ids 0..99, 16 per block
  ASSERT_TRUE(StoredTable::Write(*table, dir, /*block_rows=*/16).ok());
  BufferPool pool;
  auto stored = StoredTable::Open(dir, &pool).ValueOrDie();

  StoredTable::ScanCounters counters;
  TablePtr narrow =
      stored
          ->Scan(std::nullopt, {Pred("id", ZoneOp::kLt, Value::Int64(16))},
                 &counters)
          .ValueOrDie();
  EXPECT_EQ(counters.blocks_total, 7u);
  EXPECT_EQ(counters.blocks_read, 1u);
  EXPECT_EQ(counters.blocks_skipped, 6u);
  EXPECT_EQ(narrow->num_rows(), 16u);
  EXPECT_GT(counters.bytes_materialized, 0u);

  // Conjuncts AND: a contradictory pair skips everything.
  StoredTable::ScanCounters none;
  TablePtr empty =
      stored
          ->Scan(std::nullopt,
                 {Pred("id", ZoneOp::kLt, Value::Int64(10)),
                  Pred("id", ZoneOp::kGt, Value::Int64(50))},
                 &none)
          .ValueOrDie();
  EXPECT_EQ(none.blocks_skipped, 7u);
  EXPECT_EQ(empty->num_rows(), 0u);
  EXPECT_EQ(none.bytes_materialized, 0u);

  // Unknown predicate column is ignored (fail open), results unchanged.
  TablePtr all =
      stored->Scan(std::nullopt,
                   {Pred("no_such_col", ZoneOp::kEq, Value::Int64(1))})
          .ValueOrDie();
  EXPECT_EQ(all->num_rows(), 100u);

  // The global kill switch turns skipping off.
  SetZoneMapSkippingEnabled(false);
  StoredTable::ScanCounters unskipped;
  (void)stored
      ->Scan(std::nullopt, {Pred("id", ZoneOp::kLt, Value::Int64(16))},
             &unskipped)
      .ValueOrDie();
  SetZoneMapSkippingEnabled(true);
  EXPECT_EQ(unskipped.blocks_skipped, 0u);
  EXPECT_EQ(unskipped.blocks_read, 7u);
}

TEST(StoredTableTest, SmallerResaveUnlinksStaleBlocks) {
  std::string dir = TempDirFor("stored_resave");
  ASSERT_TRUE(StoredTable::Write(*MakeTestTable(100), dir, 16).ok());
  EXPECT_TRUE(FileExists(dir + "/block_0006.blk"));
  ASSERT_TRUE(StoredTable::Write(*MakeTestTable(20), dir, 16).ok());
  EXPECT_FALSE(FileExists(dir + "/block_0002.blk"));
  BufferPool pool;
  auto stored = StoredTable::Open(dir, &pool).ValueOrDie();
  EXPECT_EQ(stored->num_rows(), 20u);
  EXPECT_EQ(stored->num_blocks(), 2u);
}

TEST(StoredTableTest, ResaveNeverHitsChunksCachedFromThePriorSave) {
  std::string dir = TempDirFor("stored_resave_cache");
  BufferPool pool(1 << 20);
  ASSERT_TRUE(StoredTable::Write(*MakeTestTable(40, /*id_base=*/0), dir, 16)
                  .ok());
  uint64_t first_generation;
  {
    auto stored = StoredTable::Open(dir, &pool).ValueOrDie();
    first_generation = stored->generation();
    EXPECT_GT(first_generation, 0u);
    TablePtr before = stored->Materialize().ValueOrDie();  // fills the pool
    EXPECT_EQ(before->column(0)->i64_data()[0], 0);
  }
  // Rewrite the same block paths with different data. The pool still
  // holds chunks from the first save, but the new generation's keys must
  // miss them — scans after reopen see only post-save data.
  TablePtr rewritten = MakeTestTable(40, /*id_base=*/1000);
  ASSERT_TRUE(StoredTable::Write(*rewritten, dir, 16).ok());
  auto stored = StoredTable::Open(dir, &pool).ValueOrDie();
  EXPECT_GT(stored->generation(), first_generation);
  StoredTable::ScanCounters counters;
  TablePtr after = stored->Scan(std::nullopt, {}, &counters).ValueOrDie();
  EXPECT_EQ(counters.pool_hits, 0u);
  EXPECT_TRUE(after->Equals(*rewritten));
}

TEST(StoredTableTest, TornManifestOrBlockFailsOpenCleanly) {
  std::string dir = TempDirFor("stored_torn");
  TablePtr table = MakeTestTable(40);
  ASSERT_TRUE(StoredTable::Write(*table, dir, 16).ok());

  // A block whose payloads were torn off: Open still succeeds (headers
  // intact), the scan errors cleanly when it reaches the torn payload.
  {
    BlockMeta meta = ReadBlockMeta(dir + "/block_0001.blk").ValueOrDie();
    Truncate(dir + "/block_0001.blk",
             static_cast<long>(meta.columns[1].payload_offset));
    BufferPool pool;
    auto stored = StoredTable::Open(dir, &pool).ValueOrDie();
    EXPECT_FALSE(stored->Materialize().ok());
  }
  // A block torn inside its *header* fails at Open with a parse error.
  Truncate(dir + "/block_0001.blk", 8);
  {
    BufferPool pool;
    EXPECT_FALSE(StoredTable::Open(dir, &pool).ok());
  }
  // A torn manifest fails at Open.
  ASSERT_TRUE(StoredTable::Write(*table, dir, 16).ok());
  Truncate(dir + "/manifest.mlm", 9);
  {
    BufferPool pool;
    EXPECT_FALSE(StoredTable::Open(dir, &pool).ok());
  }
}

/// -- BufferPool -------------------------------------------------------------

BufferPool::ChunkLoader LoaderOf(int64_t tag, int* calls = nullptr) {
  return [tag, calls]() -> Result<ColumnPtr> {
    if (calls != nullptr) ++*calls;
    // 128 int64 values ≈ 1 KiB payload.
    std::vector<int64_t> data(128, tag);
    return Column::FromInt64(std::move(data));
  };
}

TEST(BufferPoolTest, HitsAndMissesAndClear) {
  BufferPool pool(1 << 20);
  int calls = 0;
  {
    PinnedChunk first = pool.Fetch("k1", LoaderOf(1, &calls)).ValueOrDie();
    EXPECT_FALSE(first.hit());
    EXPECT_EQ(calls, 1);
  }
  {
    PinnedChunk again = pool.Fetch("k1", LoaderOf(1, &calls)).ValueOrDie();
    EXPECT_TRUE(again.hit());
    EXPECT_EQ(calls, 1);  // loader not re-run
    EXPECT_EQ(again.column()->i64_data()[0], 1);
  }
  EXPECT_TRUE(pool.Contains("k1"));
  pool.Clear();
  EXPECT_FALSE(pool.Contains("k1"));
  EXPECT_EQ(pool.bytes_cached(), 0u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits ~3 of the ~1 KiB chunks.
  BufferPool pool(3 * 1100);
  for (int i = 0; i < 3; ++i) {
    (void)pool.Fetch(Key("k", i), LoaderOf(i)).ValueOrDie();
  }
  EXPECT_EQ(pool.entry_count(), 3u);
  // Touch k0 so k1 becomes the LRU entry.
  (void)pool.Fetch("k0", LoaderOf(0)).ValueOrDie();
  // A fourth insert evicts exactly the LRU entry: k1.
  (void)pool.Fetch("k3", LoaderOf(3)).ValueOrDie();
  EXPECT_EQ(pool.entry_count(), 3u);
  EXPECT_FALSE(pool.Contains("k1"));
  EXPECT_TRUE(pool.Contains("k0"));
  EXPECT_TRUE(pool.Contains("k2"));
  EXPECT_TRUE(pool.Contains("k3"));
  std::vector<std::string> order = pool.KeysMruToLru();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "k3");
  EXPECT_EQ(order[1], "k0");
  EXPECT_EQ(order[2], "k2");
}

TEST(BufferPoolTest, PinnedEntriesSurviveEviction) {
  BufferPool pool(2 * 1100);
  PinnedChunk pinned = pool.Fetch("hot", LoaderOf(42)).ValueOrDie();
  // Overflow the budget while "hot" stays pinned: it must survive even
  // though it becomes least-recently-used, and the pool may run over
  // budget while pins outstand.
  for (int i = 0; i < 5; ++i) {
    (void)pool.Fetch(Key("cold", i), LoaderOf(i)).ValueOrDie();
  }
  EXPECT_TRUE(pool.Contains("hot"));
  EXPECT_EQ(pinned.column()->i64_data()[0], 42);
  // Clear() must also respect pins.
  pool.Clear();
  EXPECT_TRUE(pool.Contains("hot"));
  // After unpinning, pressure can finally evict it.
  { PinnedChunk dropped = std::move(pinned); }
  for (int i = 0; i < 5; ++i) {
    (void)pool.Fetch(Key("new", i), LoaderOf(i)).ValueOrDie();
  }
  EXPECT_FALSE(pool.Contains("hot"));
  EXPECT_LE(pool.bytes_cached(), pool.byte_budget());
}

TEST(BufferPoolTest, LoaderErrorsPropagateAndCacheNothing) {
  BufferPool pool(1 << 20);
  Result<PinnedChunk> bad = pool.Fetch(
      "err", []() -> Result<ColumnPtr> { return Status::IoError("boom"); });
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(pool.Contains("err"));
  // The key is retryable after a failed load.
  PinnedChunk ok = pool.Fetch("err", LoaderOf(7)).ValueOrDie();
  EXPECT_EQ(ok.column()->i64_data()[0], 7);
}

TEST(BufferPoolTest, PinnedChunkMayOutliveThePool) {
  auto pool = std::make_unique<BufferPool>(1 << 20);
  PinnedChunk chunk = pool->Fetch("k", LoaderOf(9)).ValueOrDie();
  pool.reset();  // private pool torn down with the pin still outstanding
  EXPECT_EQ(chunk.column()->i64_data()[0], 9);
  // `chunk` destructs after the pool: the unpin must be a no-op, not a
  // use-after-free (ASan would flag it).
}

TEST(BufferPoolTest, GlobalPoolIsSharedAndBudgeted) {
  BufferPool& a = BufferPool::Global();
  BufferPool& b = BufferPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.byte_budget(), 0u);
}

}  // namespace
}  // namespace mlcs::bufpool
