#include "io/voter_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace mlcs::io {
namespace {

VoterDataOptions SmallOptions() {
  VoterDataOptions opt;
  opt.num_voters = 5000;
  opt.num_precincts = 50;
  opt.seed = 7;
  return opt;
}

TEST(VoterGenTest, PrecinctTableShape) {
  auto t = GeneratePrecincts(SmallOptions()).ValueOrDie();
  EXPECT_EQ(t->num_rows(), 50u);
  EXPECT_EQ(t->num_columns(), 3u);
  EXPECT_EQ(t->schema().field(0).name, "precinct_id");
  // Vote counts positive, ids dense 0..n-1.
  for (size_t r = 0; r < t->num_rows(); ++r) {
    EXPECT_EQ(t->column(0)->i32_data()[r], static_cast<int32_t>(r));
    EXPECT_GT(t->column(1)->i32_data()[r] + t->column(2)->i32_data()[r], 0);
    EXPECT_GE(t->column(1)->i32_data()[r], 0);
    EXPECT_GE(t->column(2)->i32_data()[r], 0);
  }
}

TEST(VoterGenTest, VoterTableShape) {
  auto t = GenerateVoters(SmallOptions()).ValueOrDie();
  EXPECT_EQ(t->num_rows(), 5000u);
  EXPECT_EQ(t->num_columns(), 96u);  // the paper's column count
  for (size_t c = 0; c < t->num_columns(); ++c) {
    EXPECT_EQ(t->schema().field(c).type, TypeId::kInt32);
  }
  EXPECT_EQ(t->schema().field(0).name, "voter_id");
  // Every precinct id is within range.
  const auto& precincts =
      t->ColumnByName("precinct_id").ValueOrDie()->i32_data();
  for (int32_t p : precincts) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 50);
  }
  // Ages are plausible.
  const auto& ages = t->ColumnByName("age").ValueOrDie()->i32_data();
  for (int32_t a : ages) {
    EXPECT_GE(a, 18);
    EXPECT_LE(a, 100);
  }
}

TEST(VoterGenTest, Deterministic) {
  auto a = GenerateVoters(SmallOptions()).ValueOrDie();
  auto b = GenerateVoters(SmallOptions()).ValueOrDie();
  EXPECT_TRUE(a->Equals(*b));
  VoterDataOptions other = SmallOptions();
  other.seed = 8;
  auto c = GenerateVoters(other).ValueOrDie();
  EXPECT_FALSE(a->Equals(*c));
}

TEST(VoterGenTest, DemShareInRangeAndVaried) {
  std::set<int64_t> distinct;
  for (size_t p = 0; p < 100; ++p) {
    double share = PrecinctDemShare(7, p, 100);
    EXPECT_GE(share, 0.05);
    EXPECT_LE(share, 0.95);
    distinct.insert(static_cast<int64_t>(share * 1e6));
  }
  EXPECT_GT(distinct.size(), 50u);  // not collapsed to a constant
}

TEST(VoterGenTest, FeaturesCorrelateWithLean) {
  // urban_score should be clearly higher in dem-leaning precincts —
  // that's what makes the classification task learnable.
  VoterDataOptions opt = SmallOptions();
  opt.num_voters = 20000;
  auto voters = GenerateVoters(opt).ValueOrDie();
  const auto& precinct =
      voters->ColumnByName("precinct_id").ValueOrDie()->i32_data();
  const auto& urban =
      voters->ColumnByName("urban_score").ValueOrDie()->i32_data();
  double dem_sum = 0, dem_n = 0, rep_sum = 0, rep_n = 0;
  for (size_t i = 0; i < precinct.size(); ++i) {
    double share = PrecinctDemShare(opt.seed, precinct[i], 50);
    if (share > 0.6) {
      dem_sum += urban[i];
      ++dem_n;
    } else if (share < 0.4) {
      rep_sum += urban[i];
      ++rep_n;
    }
  }
  ASSERT_GT(dem_n, 100);
  ASSERT_GT(rep_n, 100);
  EXPECT_GT(dem_sum / dem_n, rep_sum / rep_n + 1.0);
}

TEST(VoterGenTest, ValidationErrors) {
  VoterDataOptions opt = SmallOptions();
  opt.num_columns = 5;
  EXPECT_FALSE(GenerateVoters(opt).ok());
  opt = SmallOptions();
  opt.num_voters = 0;
  EXPECT_FALSE(GenerateVoters(opt).ok());
  opt = SmallOptions();
  opt.num_precincts = 0;
  EXPECT_FALSE(GeneratePrecincts(opt).ok());
}

}  // namespace
}  // namespace mlcs::io
