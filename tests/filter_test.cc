#include "exec/filter.h"

#include <gtest/gtest.h>

namespace mlcs::exec {
namespace {

TablePtr Numbers() {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::Int32(i)}).ok());
  }
  return t;
}

TEST(FilterTest, KeepsTrueRows) {
  auto t = Numbers();
  std::vector<uint8_t> pred(10, 0);
  pred[2] = pred[5] = 1;
  auto out = FilterTable(*t, *Column::FromBool(std::move(pred))).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->GetValue(0, 0).ValueOrDie(), Value::Int32(2));
  EXPECT_EQ(out->GetValue(1, 0).ValueOrDie(), Value::Int32(5));
}

TEST(FilterTest, NullPredicateRowsDropped) {
  auto t = Numbers();
  Column pred(TypeId::kBool);
  for (int i = 0; i < 10; ++i) {
    if (i % 3 == 0) {
      pred.AppendNull();
    } else {
      pred.AppendBool(true);
    }
  }
  auto out = FilterTable(*t, pred).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 6u);  // rows 0,3,6,9 dropped
}

TEST(FilterTest, BroadcastScalarPredicate) {
  auto t = Numbers();
  auto all = FilterTable(*t, *Column::FromBool({1})).ValueOrDie();
  EXPECT_EQ(all->num_rows(), 10u);
  auto none = FilterTable(*t, *Column::FromBool({0})).ValueOrDie();
  EXPECT_EQ(none->num_rows(), 0u);
}

TEST(FilterTest, NonBoolPredicateRejected) {
  auto t = Numbers();
  EXPECT_FALSE(FilterTable(*t, *Column::FromInt32({1})).ok());
}

TEST(FilterTest, LengthMismatchRejected) {
  auto t = Numbers();
  EXPECT_FALSE(FilterTable(*t, *Column::FromBool({1, 0})).ok());
}

TEST(FilterTest, EmptyInput) {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  Table t(std::move(s));
  Column pred(TypeId::kBool);
  auto out = FilterTable(t, pred).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 0u);
}

}  // namespace
}  // namespace mlcs::exec
