#include "exec/expression.h"

#include <gtest/gtest.h>

namespace mlcs::exec {
namespace {

TablePtr TestTable() {
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kDouble);
  s.AddField("name", TypeId::kVarchar);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(
      t->AppendRow({Value::Int32(1), Value::Double(0.5), Value::Varchar("x")})
          .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::Int32(2), Value::Double(1.5), Value::Varchar("y")})
          .ok());
  return t;
}

TEST(ExpressionTest, ColumnRef) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  ColumnRefExpr e("a");
  auto col = e.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col->i32_data(), (std::vector<int32_t>{1, 2}));
  ColumnRefExpr bad("zzz");
  EXPECT_FALSE(bad.Evaluate(ctx).ok());
}

TEST(ExpressionTest, LiteralBroadcast) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  // a + 10 — literal is length-1, broadcasts.
  BinaryExpr e(BinOpKind::kAdd, std::make_shared<ColumnRefExpr>("a"),
               std::make_shared<LiteralExpr>(Value::Int32(10)));
  auto col = e.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col->i32_data(), (std::vector<int32_t>{11, 12}));
}

TEST(ExpressionTest, NestedArithmetic) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  // (a + b) * 2
  auto sum = std::make_shared<BinaryExpr>(
      BinOpKind::kAdd, std::make_shared<ColumnRefExpr>("a"),
      std::make_shared<ColumnRefExpr>("b"));
  BinaryExpr e(BinOpKind::kMul, sum,
               std::make_shared<LiteralExpr>(Value::Double(2.0)));
  auto col = e.Evaluate(ctx).ValueOrDie();
  EXPECT_DOUBLE_EQ(col->f64_data()[0], 3.0);
  EXPECT_DOUBLE_EQ(col->f64_data()[1], 7.0);
}

TEST(ExpressionTest, ComparisonAndLogic) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  // a > 1 AND b < 2.0
  auto gt = std::make_shared<BinaryExpr>(
      BinOpKind::kGt, std::make_shared<ColumnRefExpr>("a"),
      std::make_shared<LiteralExpr>(Value::Int32(1)));
  auto lt = std::make_shared<BinaryExpr>(
      BinOpKind::kLt, std::make_shared<ColumnRefExpr>("b"),
      std::make_shared<LiteralExpr>(Value::Double(2.0)));
  BinaryExpr e(BinOpKind::kAnd, gt, lt);
  auto col = e.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col->bool_data(), (std::vector<uint8_t>{0, 1}));
}

TEST(ExpressionTest, Cast) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  CastExpr e(std::make_shared<ColumnRefExpr>("a"), TypeId::kDouble);
  auto col = e.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col->type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(col->f64_data()[1], 2.0);
}

TEST(ExpressionTest, IsNull) {
  Schema s;
  s.AddField("x", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  ASSERT_TRUE(t->AppendRow({Value::Int32(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::MakeNull(TypeId::kInt32)}).ok());
  EvalContext ctx{t.get(), nullptr};
  IsNullExpr is_null(std::make_shared<ColumnRefExpr>("x"), false);
  auto col = is_null.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col->bool_data(), (std::vector<uint8_t>{0, 1}));
  IsNullExpr not_null(std::make_shared<ColumnRefExpr>("x"), true);
  auto col2 = not_null.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col2->bool_data(), (std::vector<uint8_t>{1, 0}));
}

TEST(ExpressionTest, FunctionCallDispatchesThroughContext) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  ctx.call_function = [](const std::string& name,
                         const std::vector<ColumnPtr>& args,
                         size_t /*num_rows*/) -> Result<ColumnPtr> {
    EXPECT_EQ(name, "double_it");
    EXPECT_EQ(args.size(), 1u);
    return BinaryKernel(BinOpKind::kMul, *args[0],
                        *Column::Constant(Value::Int32(2), 1));
  };
  FunctionCallExpr e("double_it",
                     {std::make_shared<ColumnRefExpr>("a")});
  auto col = e.Evaluate(ctx).ValueOrDie();
  EXPECT_EQ(col->i32_data(), (std::vector<int32_t>{2, 4}));
}

TEST(ExpressionTest, FunctionCallWithoutDispatcherFails) {
  auto t = TestTable();
  EvalContext ctx{t.get(), nullptr};
  FunctionCallExpr e("f", {});
  EXPECT_FALSE(e.Evaluate(ctx).ok());
}

TEST(ExpressionTest, ToStringRendering) {
  BinaryExpr e(BinOpKind::kAdd, std::make_shared<ColumnRefExpr>("a"),
               std::make_shared<LiteralExpr>(Value::Int32(1)));
  EXPECT_EQ(e.ToString(), "(a + 1)");
  FunctionCallExpr f("predict", {std::make_shared<ColumnRefExpr>("x")});
  EXPECT_EQ(f.ToString(), "predict(x)");
}

}  // namespace
}  // namespace mlcs::exec
