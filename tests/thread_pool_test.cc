#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace mlcs {
namespace {

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.Submit([&] { counter.fetch_add(1); });
  fut.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionIsExact) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelForChunks(103, 4, [&](size_t, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  size_t expected_begin = 0;
  for (auto [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPoolTest, ChunkCountClampedToWork) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelForChunks(3, 8, [&](size_t, size_t, size_t) {
    chunks.fetch_add(1);
  });
  EXPECT_LE(chunks.load(), 3);
  EXPECT_GE(chunks.load(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Global().ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructionDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // Destructor must wait for queued tasks' completion or discard them
    // safely without UB; either way no crash and no data race.
  }
  EXPECT_LE(counter.load(), 50);
}

}  // namespace
}  // namespace mlcs
