#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"

namespace mlcs::ml {
namespace {

void MakeBlobs(size_t n, Matrix* x, Labels* y, uint64_t seed = 1,
               double sep = 4.0) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    double c = cls == 0 ? 0.0 : sep;
    for (size_t f = 0; f < 3; ++f) x->Set(i, f, c + rng.NextGaussian());
    (*y)[i] = cls;
  }
}

TEST(LogisticRegressionTest, LearnsSeparableBlobs) {
  Matrix x;
  Labels y;
  MakeBlobs(600, &x, &y);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, lr.Predict(x).ValueOrDie()).ValueOrDie(), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesFormDistribution) {
  Matrix x;
  Labels y;
  MakeBlobs(200, &x, &y);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  auto p0 = lr.PredictProba(x, 0).ValueOrDie();
  auto p1 = lr.PredictProba(x, 1).ValueOrDie();
  auto conf = lr.PredictConfidence(x).ValueOrDie();
  for (size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(p0[i] + p1[i], 1.0, 1e-9);
    EXPECT_NEAR(conf[i], std::max(p0[i], p1[i]), 1e-9);
  }
}

TEST(LogisticRegressionTest, MulticlassOneVsRest) {
  Rng rng(4);
  Matrix x(900, 2);
  Labels y(900);
  // Non-collinear class centers (one-vs-rest needs each class linearly
  // separable from the rest).
  const double cx[3] = {0.0, 6.0, 3.0};
  const double cy[3] = {0.0, 0.0, 5.2};
  for (size_t i = 0; i < 900; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(3));
    x.Set(i, 0, cx[cls] + rng.NextGaussian());
    x.Set(i, 1, cy[cls] + rng.NextGaussian());
    y[i] = cls;
  }
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, lr.Predict(x).ValueOrDie()).ValueOrDie(), 0.9);
}

TEST(LogisticRegressionTest, SerializationRoundTrip) {
  Matrix x;
  Labels y;
  MakeBlobs(300, &x, &y, 6);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  ByteWriter w;
  lr.Serialize(&w);
  ByteReader r(w.data());
  auto back = LogisticRegression::DeserializeBody(&r).ValueOrDie();
  EXPECT_EQ(lr.Predict(x).ValueOrDie(), back->Predict(x).ValueOrDie());
  auto pa = lr.PredictProba(x, 1).ValueOrDie();
  auto pb = back->PredictProba(x, 1).ValueOrDie();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(LogisticRegressionTest, ValidationErrors) {
  LogisticRegression lr;
  Matrix x(2, 1);
  EXPECT_FALSE(lr.Predict(x).ok());  // not fitted
  Labels y = {0};
  EXPECT_FALSE(lr.Fit(x, y).ok());  // length mismatch
}

TEST(NaiveBayesTest, LearnsSeparableBlobs) {
  Matrix x;
  Labels y;
  MakeBlobs(600, &x, &y, 2);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, nb.Predict(x).ValueOrDie()).ValueOrDie(), 0.95);
}

TEST(NaiveBayesTest, PosteriorsFormDistribution) {
  Matrix x;
  Labels y;
  MakeBlobs(200, &x, &y, 5);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x, y).ok());
  auto p0 = nb.PredictProba(x, 0).ValueOrDie();
  auto p1 = nb.PredictProba(x, 1).ValueOrDie();
  for (size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(p0[i] + p1[i], 1.0, 1e-9);
    EXPECT_GE(p0[i], 0.0);
    EXPECT_LE(p0[i], 1.0);
  }
}

TEST(NaiveBayesTest, PriorsInfluencePredictionOnAmbiguousInput) {
  // 90/10 class imbalance with identical feature distributions: the
  // posterior should favour the majority class.
  Rng rng(10);
  Matrix x(1000, 1);
  Labels y(1000);
  for (size_t i = 0; i < 1000; ++i) {
    x.Set(i, 0, rng.NextGaussian());
    y[i] = i < 900 ? 0 : 1;
  }
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x, y).ok());
  Matrix probe(1, 1);
  probe.Set(0, 0, 0.0);
  EXPECT_EQ(nb.Predict(probe).ValueOrDie()[0], 0);
}

TEST(NaiveBayesTest, SerializationRoundTrip) {
  Matrix x;
  Labels y;
  MakeBlobs(300, &x, &y, 12);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x, y).ok());
  ByteWriter w;
  nb.Serialize(&w);
  ByteReader r(w.data());
  auto back = NaiveBayes::DeserializeBody(&r).ValueOrDie();
  EXPECT_EQ(nb.Predict(x).ValueOrDie(), back->Predict(x).ValueOrDie());
}

TEST(NaiveBayesTest, ConstantFeatureDoesNotDivideByZero) {
  Matrix x(10, 2);
  Labels y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.Set(i, 0, 1.0);  // constant feature
    x.Set(i, 1, static_cast<double>(i));
    y[i] = i < 5 ? 0 : 1;
  }
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x, y).ok());
  auto pred = nb.Predict(x).ValueOrDie();
  EXPECT_GT(Accuracy(y, pred).ValueOrDie(), 0.8);
}

}  // namespace
}  // namespace mlcs::ml
