#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace mlcs::ml {
namespace {

/// Three well-separated clusters in 2-D.
Matrix ThreeBlobs(size_t per_cluster, uint64_t seed = 1) {
  Rng rng(seed);
  Matrix x(per_cluster * 3, 2);
  const double cx[3] = {0.0, 10.0, 0.0};
  const double cy[3] = {0.0, 0.0, 10.0};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      size_t r = c * per_cluster + i;
      x.Set(r, 0, cx[c] + rng.NextGaussian() * 0.5);
      x.Set(r, 1, cy[c] + rng.NextGaussian() * 0.5);
    }
  }
  return x;
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Matrix x = ThreeBlobs(200);
  KMeansOptions opt;
  opt.k = 3;
  KMeans km(opt);
  ASSERT_TRUE(km.Fit(x).ok());
  auto assign = km.Assign(x).ValueOrDie();
  // Points within a true blob must share an assignment, blobs must differ.
  std::set<int32_t> blob_labels;
  for (size_t c = 0; c < 3; ++c) {
    int32_t label = assign[c * 200];
    blob_labels.insert(label);
    size_t agree = 0;
    for (size_t i = 0; i < 200; ++i) {
      if (assign[c * 200 + i] == label) ++agree;
    }
    EXPECT_GT(agree, 195u);
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Matrix x = ThreeBlobs(100, 2);
  double prev = std::numeric_limits<double>::infinity();
  for (size_t k : {1u, 2u, 3u}) {
    KMeansOptions opt;
    opt.k = k;
    KMeans km(opt);
    ASSERT_TRUE(km.Fit(x).ok());
    EXPECT_LT(km.inertia(), prev);
    prev = km.inertia();
  }
}

TEST(KMeansTest, Deterministic) {
  Matrix x = ThreeBlobs(50, 3);
  KMeansOptions opt;
  opt.k = 3;
  KMeans a(opt), b(opt);
  ASSERT_TRUE(a.Fit(x).ok());
  ASSERT_TRUE(b.Fit(x).ok());
  EXPECT_EQ(a.centroids(), b.centroids());
  EXPECT_DOUBLE_EQ(a.inertia(), b.inertia());
}

TEST(KMeansTest, KEqualsRowsIsPerfect) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x.Set(i, 0, static_cast<double>(i * 10));
  KMeansOptions opt;
  opt.k = 4;
  KMeans km(opt);
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_NEAR(km.inertia(), 0.0, 1e-12);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  Matrix x(10, 2);  // all zeros
  KMeansOptions opt;
  opt.k = 3;
  KMeans km(opt);
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_NEAR(km.inertia(), 0.0, 1e-12);
}

TEST(KMeansTest, Validation) {
  KMeans unfitted;
  Matrix x(5, 1);
  EXPECT_FALSE(unfitted.Assign(x).ok());
  KMeansOptions opt;
  opt.k = 10;
  KMeans too_many(opt);
  EXPECT_FALSE(too_many.Fit(x).ok());  // k > rows
  opt.k = 0;
  KMeans zero(opt);
  EXPECT_FALSE(zero.Fit(x).ok());
  Matrix empty;
  KMeans km;
  EXPECT_FALSE(km.Fit(empty).ok());
  // Assign with wrong width.
  KMeansOptions ok;
  ok.k = 2;
  KMeans fitted(ok);
  ASSERT_TRUE(fitted.Fit(x).ok());
  Matrix wide(3, 2);
  EXPECT_FALSE(fitted.Assign(wide).ok());
}

}  // namespace
}  // namespace mlcs::ml
