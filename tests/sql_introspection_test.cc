/// SHOW TABLES / SHOW FUNCTIONS / DESCRIBE / EXPLAIN and the STDDEV
/// aggregate.
#include <gtest/gtest.h>

#include <cmath>

#include "sql/database.h"

namespace mlcs {
namespace {

class SqlIntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run(R"(
      CREATE TABLE voters (id INTEGER, precinct INTEGER, age INTEGER);
      INSERT INTO voters VALUES (1, 10, 20), (2, 10, 40), (3, 20, 60);
      CREATE TABLE precincts (precinct INTEGER, dem INTEGER);
      INSERT INTO precincts VALUES (10, 60), (20, 30);
    )")
                    .ok());
  }

  TablePtr Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.ValueOrDie() : nullptr;
  }

  std::string PlanOf(const std::string& sql) {
    auto t = Q("EXPLAIN " + sql);
    std::string out;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      out += t->GetValue(r, 0).ValueOrDie().string_value() + "\n";
    }
    return out;
  }

  Database db_;
};

TEST_F(SqlIntrospectionTest, ShowTables) {
  auto t = Q("SHOW TABLES");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Varchar("precincts"));
  EXPECT_EQ(t->GetValue(1, 0).ValueOrDie(), Value::Varchar("voters"));
}

TEST_F(SqlIntrospectionTest, ShowFunctionsListsBuiltinsAndUdfs) {
  ASSERT_TRUE(db_.Query("CREATE FUNCTION f(x INTEGER) RETURNS INTEGER "
                        "LANGUAGE VSCRIPT { return x; }")
                  .ok());
  auto t = Q("SHOW FUNCTIONS");
  bool found = false;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    if (t->GetValue(r, 0).ValueOrDie().string_value() == "f") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GT(t->num_rows(), 5u);  // abs/sqrt/... builtins included
}

TEST_F(SqlIntrospectionTest, Describe) {
  auto t = Q("DESCRIBE voters");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Varchar("id"));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Varchar("INTEGER"));
  EXPECT_FALSE(db_.Query("DESCRIBE ghost").ok());
}

TEST_F(SqlIntrospectionTest, ExplainSelectShowsOperators) {
  std::string plan = PlanOf(
      "SELECT precinct, COUNT(*) AS n FROM voters v JOIN precincts p "
      "ON precinct = precinct WHERE age > 30 GROUP BY precinct "
      "HAVING n > 0 ORDER BY n DESC LIMIT 5");
  EXPECT_NE(plan.find("LIMIT 5"), std::string::npos);
  EXPECT_NE(plan.find("SORT"), std::string::npos);
  EXPECT_NE(plan.find("HAVING"), std::string::npos);
  EXPECT_NE(plan.find("AGGREGATE"), std::string::npos);
  EXPECT_NE(plan.find("FILTER"), std::string::npos);
  EXPECT_NE(plan.find("HASH JOIN"), std::string::npos);
  EXPECT_NE(plan.find("SCAN voters"), std::string::npos);
  EXPECT_NE(plan.find("SCAN precincts"), std::string::npos);
}

TEST_F(SqlIntrospectionTest, ExplainDoesNotExecute) {
  ASSERT_TRUE(db_.Query("EXPLAIN DELETE FROM voters").ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM voters")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(3));
}

TEST_F(SqlIntrospectionTest, ExplainTableFunction) {
  std::string plan = PlanOf(
      "SELECT * FROM train((SELECT id FROM voters), 4)");
  EXPECT_NE(plan.find("TABLE FUNCTION train"), std::string::npos);
  EXPECT_NE(plan.find("SCAN voters"), std::string::npos);
}

/// -- Golden plans: the optimizer's rewrites must show in EXPLAIN ----------

TEST_F(SqlIntrospectionTest, GoldenPlanPrunedScan) {
  EXPECT_EQ(PlanOf("SELECT age FROM voters WHERE age > 30"),
            "PROJECT [age]\n"
            "  FILTER (age > 30)\n"
            "    SCAN voters [age]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanPushdownBelowJoin) {
  // Both conjuncts move below the join; the WHERE node dissolves. The
  // voters scan narrows to the referenced columns (schema order); the
  // precincts scan needs all of its columns, so it stays unbracketed.
  EXPECT_EQ(PlanOf("SELECT age FROM voters JOIN precincts "
                   "ON precinct = precinct WHERE age > 30 AND dem > 50"),
            "PROJECT [age]\n"
            "  HASH JOIN on precinct = precinct\n"
            "    FILTER (age > 30)\n"
            "      SCAN voters [precinct, age]\n"
            "    FILTER (dem > 50)\n"
            "      SCAN precincts\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanLeftJoinKeepsRightFilterAbove) {
  // A right-side-only conjunct must NOT sink below a LEFT join (it would
  // turn NULL-extended rows into matches of nothing).
  EXPECT_EQ(PlanOf("SELECT age FROM voters LEFT JOIN precincts "
                   "ON precinct = precinct WHERE dem > 50"),
            "PROJECT [age]\n"
            "  FILTER (dem > 50)\n"
            "    LEFT JOIN on precinct = precinct\n"
            "      SCAN voters [precinct, age]\n"
            "      SCAN precincts\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanCountStarKeepsNarrowestColumn) {
  // No column referenced: the scan keeps one (narrowest) column so the
  // row count survives.
  EXPECT_EQ(PlanOf("SELECT COUNT(*) FROM voters"),
            "AGGREGATE [COUNT(*)]\n"
            "  SCAN voters [id]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanConstantTrueFilterElided) {
  EXPECT_EQ(PlanOf("SELECT age FROM voters WHERE 1 < 2"),
            "PROJECT [age]\n"
            "  SCAN voters [age]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanConstantPieceFoldsInMixedPredicate) {
  // The literal-only piece of a mixed conjunction folds away instead of
  // lingering as a residual filter above the join.
  EXPECT_EQ(PlanOf("SELECT age FROM voters JOIN precincts "
                   "ON precinct = precinct WHERE age > 30 AND 1 < 2"),
            "PROJECT [age]\n"
            "  HASH JOIN on precinct = precinct\n"
            "    FILTER (age > 30)\n"
            "      SCAN voters [precinct, age]\n"
            "    SCAN precincts [precinct]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanOptimizerOff) {
  // With rewrites off the plan keeps the bound shape: one WHERE filter
  // above the join, full-width scans.
  db_.set_optimizer_enabled(false);
  EXPECT_EQ(PlanOf("SELECT age FROM voters JOIN precincts "
                   "ON precinct = precinct WHERE age > 30 AND dem > 50"),
            "PROJECT [age]\n"
            "  FILTER ((age > 30) AND (dem > 50))\n"
            "    HASH JOIN on precinct = precinct\n"
            "      SCAN voters\n"
            "      SCAN precincts\n");
  db_.set_optimizer_enabled(true);
}

TEST_F(SqlIntrospectionTest, SelectStarDisablesPruning) {
  std::string plan = PlanOf("SELECT * FROM voters WHERE age > 30");
  EXPECT_NE(plan.find("SCAN voters\n"), std::string::npos);
  EXPECT_EQ(plan.find("SCAN voters ["), std::string::npos);
}

TEST_F(SqlIntrospectionTest, StdDevAggregate) {
  // ages 20, 40, 60 → mean 40, population stddev sqrt(800/3).
  auto t = Q("SELECT STDDEV(age) AS s FROM voters");
  EXPECT_NEAR(t->GetValue(0, 0).ValueOrDie().double_value(),
              std::sqrt(800.0 / 3.0), 1e-9);
  // Grouped stddev; single-row group → 0.
  auto g = Q("SELECT precinct, STDDEV(age) AS s FROM voters "
             "GROUP BY precinct ORDER BY precinct");
  EXPECT_NEAR(g->GetValue(0, 1).ValueOrDie().double_value(), 10.0, 1e-9);
  EXPECT_NEAR(g->GetValue(1, 1).ValueOrDie().double_value(), 0.0, 1e-9);
  // Non-numeric rejected.
  ASSERT_TRUE(db_.Run("CREATE TABLE s (v VARCHAR); "
                      "INSERT INTO s VALUES ('a');")
                  .ok());
  EXPECT_FALSE(db_.Query("SELECT STDDEV(v) FROM s").ok());
}

}  // namespace
}  // namespace mlcs
