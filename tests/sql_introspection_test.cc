/// SHOW TABLES / SHOW FUNCTIONS / DESCRIBE / EXPLAIN / EXPLAIN ANALYZE,
/// the mlcs_metrics()/mlcs_trace() introspection table functions, and the
/// STDDEV aggregate.
//
// GCC 12 at -O3 reports -Wmaybe-uninitialized false positives inside
// std::regex's own NFA machinery (std_function.h inlined through
// regex_automaton.h) when instantiated in this TU; the repo builds with
// -Werror, so silence the known-bogus diagnostic here (see the GCC 12
// false-positive note in DESIGN.md §7 / the -Wrestrict workaround in
// bufpool_test.cc).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <regex>
#include <set>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "ml/training_source.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/database.h"

namespace mlcs {
namespace {

class SqlIntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run(R"(
      CREATE TABLE voters (id INTEGER, precinct INTEGER, age INTEGER);
      INSERT INTO voters VALUES (1, 10, 20), (2, 10, 40), (3, 20, 60);
      CREATE TABLE precincts (precinct INTEGER, dem INTEGER);
      INSERT INTO precincts VALUES (10, 60), (20, 30);
    )")
                    .ok());
  }

  TablePtr Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.ValueOrDie() : nullptr;
  }

  std::string PlanOf(const std::string& sql) {
    auto t = Q("EXPLAIN " + sql);
    std::string out;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      out += t->GetValue(r, 0).ValueOrDie().string_value() + "\n";
    }
    return out;
  }

  std::vector<std::string> Column0(const TablePtr& t) {
    std::vector<std::string> out;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      out.push_back(t->GetValue(r, 0).ValueOrDie().string_value());
    }
    return out;
  }

  Database db_;
};

TEST_F(SqlIntrospectionTest, ShowTables) {
  auto t = Q("SHOW TABLES");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Varchar("precincts"));
  EXPECT_EQ(t->GetValue(1, 0).ValueOrDie(), Value::Varchar("voters"));
}

TEST_F(SqlIntrospectionTest, ShowFunctionsListsBuiltinsAndUdfs) {
  ASSERT_TRUE(db_.Query("CREATE FUNCTION f(x INTEGER) RETURNS INTEGER "
                        "LANGUAGE VSCRIPT { return x; }")
                  .ok());
  auto t = Q("SHOW FUNCTIONS");
  bool found = false;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    if (t->GetValue(r, 0).ValueOrDie().string_value() == "f") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GT(t->num_rows(), 5u);  // abs/sqrt/... builtins included
}

TEST_F(SqlIntrospectionTest, Describe) {
  auto t = Q("DESCRIBE voters");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Varchar("id"));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Varchar("INTEGER"));
  EXPECT_FALSE(db_.Query("DESCRIBE ghost").ok());
}

TEST_F(SqlIntrospectionTest, ExplainSelectShowsOperators) {
  std::string plan = PlanOf(
      "SELECT precinct, COUNT(*) AS n FROM voters v JOIN precincts p "
      "ON precinct = precinct WHERE age > 30 GROUP BY precinct "
      "HAVING n > 0 ORDER BY n DESC LIMIT 5");
  EXPECT_NE(plan.find("LIMIT 5"), std::string::npos);
  EXPECT_NE(plan.find("SORT"), std::string::npos);
  EXPECT_NE(plan.find("HAVING"), std::string::npos);
  EXPECT_NE(plan.find("AGGREGATE"), std::string::npos);
  EXPECT_NE(plan.find("FILTER"), std::string::npos);
  EXPECT_NE(plan.find("HASH JOIN"), std::string::npos);
  EXPECT_NE(plan.find("SCAN voters"), std::string::npos);
  EXPECT_NE(plan.find("SCAN precincts"), std::string::npos);
}

TEST_F(SqlIntrospectionTest, ExplainDoesNotExecute) {
  ASSERT_TRUE(db_.Query("EXPLAIN DELETE FROM voters").ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM voters")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(3));
}

TEST_F(SqlIntrospectionTest, ExplainTableFunction) {
  std::string plan = PlanOf(
      "SELECT * FROM train((SELECT id FROM voters), 4)");
  EXPECT_NE(plan.find("TABLE FUNCTION train"), std::string::npos);
  EXPECT_NE(plan.find("SCAN voters"), std::string::npos);
}

/// -- EXPLAIN ANALYZE: per-operator actual time / rows ---------------------

TEST_F(SqlIntrospectionTest, ExplainAnalyzeAnnotatesEveryOperator) {
  const std::string sql =
      "SELECT precinct, COUNT(*) AS n FROM voters JOIN precincts "
      "ON precinct = precinct WHERE age > 30 GROUP BY precinct";
  // Expected shape = the plain EXPLAIN tree; ANALYZE appends one
  // annotation per operator line plus a totals footer.
  std::vector<std::string> plan_lines = SplitString(PlanOf(sql), '\n');
  while (!plan_lines.empty() && plan_lines.back().empty()) {
    plan_lines.pop_back();
  }
  std::vector<std::string> lines = Column0(Q("EXPLAIN ANALYZE " + sql));
  ASSERT_EQ(lines.size(), plan_lines.size() + 1);

  const std::regex annot(R"( \(actual time=[0-9.]+ ms, rows=([0-9]+)\)$)");
  for (size_t i = 0; i < plan_lines.size(); ++i) {
    // Each annotated line is the EXPLAIN line plus the suffix — operator
    // order and indentation must match the static plan exactly.
    ASSERT_GT(lines[i].size(), plan_lines[i].size()) << lines[i];
    EXPECT_EQ(lines[i].substr(0, plan_lines[i].size()), plan_lines[i]);
    std::smatch m;
    ASSERT_TRUE(std::regex_search(lines[i], m, annot)) << lines[i];
    // Deterministic row counts on this fixture: voters rows 3, ages
    // 20/40/60 → 2 survive the filter, join and group both yield 2.
    uint64_t rows = std::stoull(m[1].str());
    if (plan_lines[i].find("SCAN voters") != std::string::npos) {
      EXPECT_EQ(rows, 3u) << lines[i];
    } else if (plan_lines[i].find("SCAN precincts") != std::string::npos) {
      EXPECT_EQ(rows, 2u) << lines[i];
    } else {
      EXPECT_EQ(rows, 2u) << lines[i];
    }
  }
  EXPECT_TRUE(std::regex_match(
      lines.back(), std::regex(R"(Total: [0-9.]+ ms, 2 rows)")))
      << lines.back();
}

TEST_F(SqlIntrospectionTest, ExplainAnalyzeShowsBlockSkippingOnStored) {
  // Persist and reopen so the table is served from block storage; a
  // selective predicate then exercises zone-map skipping, which EXPLAIN
  // ANALYZE must surface on the SCAN line.
  std::string dir = testing::TempDir() + "/introspect_stored";
  setenv("MLCS_BLOCK_ROWS", "1", 1);
  ASSERT_TRUE(db_.SaveTo(dir).ok());
  unsetenv("MLCS_BLOCK_ROWS");
  Database stored_db;
  ASSERT_TRUE(stored_db.LoadFrom(dir).ok());
  auto r = stored_db.Query(
      "EXPLAIN ANALYZE SELECT id FROM voters WHERE age > 50");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::string> lines = Column0(r.ValueOrDie());
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("SCAN voters") == std::string::npos) continue;
    found = true;
    // One row per block; age > 50 admits only the age=60 block.
    EXPECT_NE(line.find("blocks=3"), std::string::npos) << line;
    EXPECT_NE(line.find("skipped=2"), std::string::npos) << line;
    EXPECT_NE(line.find("pool_"), std::string::npos) << line;
  }
  EXPECT_TRUE(found);
  // Plain EXPLAIN (no execution) carries no block stats.
  auto plain =
      stored_db.Query("EXPLAIN SELECT id FROM voters WHERE age > 50");
  ASSERT_TRUE(plain.ok());
  for (const std::string& line : Column0(plain.ValueOrDie())) {
    EXPECT_EQ(line.find("blocks="), std::string::npos) << line;
  }
}

TEST_F(SqlIntrospectionTest, ExplainAnalyzeRejectsNonSelect) {
  auto r = db_.Query("EXPLAIN ANALYZE DELETE FROM voters");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("only SELECT"), std::string::npos);
  // And it must not have executed the DELETE.
  EXPECT_EQ(Q("SELECT COUNT(*) FROM voters")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(3));
}

/// -- Introspection table functions ----------------------------------------

TEST_F(SqlIntrospectionTest, MetricsTableFunctionExportsRegistry) {
  // Touch the subsystems whose series the snapshot must carry: a query
  // (plan cache + scan bytes) and the shared pool (threadpool series).
  Q("SELECT COUNT(*) FROM voters");
  ThreadPool::Global().Submit([] {}).wait();

  auto t = Q("SELECT * FROM mlcs_metrics()");
  ASSERT_EQ(t->schema().num_fields(), 3u);
  EXPECT_EQ(t->schema().field(0).name, "name");
  EXPECT_EQ(t->schema().field(1).name, "kind");
  EXPECT_EQ(t->schema().field(2).name, "value");

  std::set<std::string> names;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    names.insert(t->GetValue(r, 0).ValueOrDie().string_value());
    const std::string kind = t->GetValue(r, 1).ValueOrDie().string_value();
    EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
        << kind;
  }
  EXPECT_TRUE(names.count("mlcs.plan_cache.hits"));
  EXPECT_TRUE(names.count("mlcs.plan_cache.misses"));
  EXPECT_TRUE(names.count("mlcs.plan_cache.entries"));
  EXPECT_TRUE(names.count("mlcs.scan.bytes_touched"));
  EXPECT_TRUE(names.count("mlcs.threadpool.tasks_completed"));
  EXPECT_TRUE(names.count("mlcs.threadpool.task_wait_us.count"));
  // Histograms surface as interpolated quantiles, not raw bucket rows.
  EXPECT_TRUE(names.count("mlcs.threadpool.task_wait_us.p50"));
  EXPECT_TRUE(names.count("mlcs.threadpool.task_wait_us.p99"));
  for (const std::string& n : names) {
    EXPECT_EQ(n.find(".le_"), std::string::npos) << n;
  }
  // Wait-state attribution rides in the same snapshot: the pool dispatch
  // above recorded at least one submit→run wait.
  EXPECT_TRUE(names.count("mlcs.wait.pool.dispatch.count"));
  EXPECT_TRUE(names.count("mlcs.wait.pool.dispatch.p90"));

  // The snapshot is a point-in-time read, so a named series is directly
  // filterable in SQL and reflects work already done.
  auto v = Q("SELECT value FROM mlcs_metrics() "
             "WHERE name = 'mlcs.scan.bytes_touched'");
  ASSERT_EQ(v->num_rows(), 1u);
  EXPECT_GT(v->GetValue(0, 0).ValueOrDie().double_value(), 0.0);
}

TEST_F(SqlIntrospectionTest, TraceTableFunctionReturnsFlushedSpans) {
  obs::SetTracingEnabled(true);
  Q("SELECT COUNT(*) FROM voters WHERE age > 30");
  obs::SetTracingEnabled(false);

  auto t = Q("SELECT * FROM mlcs_trace(0)");
  ASSERT_EQ(t->schema().num_fields(), 10u);
  EXPECT_EQ(t->schema().field(9).name, "note");
  ASSERT_GE(t->num_rows(), 3u);  // root + parse + plan at minimum

  // Find this query's root span, then check its trace is well-formed.
  int64_t trace_id = -1;
  std::set<int64_t> span_ids;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    const std::string name = t->GetValue(r, 3).ValueOrDie().string_value();
    if (name.find("query: SELECT COUNT(*)") == 0 &&
        t->GetValue(r, 2).ValueOrDie().int64_value() == 0) {
      trace_id = t->GetValue(r, 0).ValueOrDie().int64_value();
    }
  }
  ASSERT_GT(trace_id, 0);

  // mlcs_trace(<id>) narrows to that one trace; every span carries the
  // trace id, parents resolve within it, and durations are sane.
  auto one = Q("SELECT * FROM mlcs_trace(" + std::to_string(trace_id) + ")");
  ASSERT_GE(one->num_rows(), 3u);
  std::set<std::string> span_names;
  for (size_t r = 0; r < one->num_rows(); ++r) {
    EXPECT_EQ(one->GetValue(r, 0).ValueOrDie().int64_value(), trace_id);
    span_ids.insert(one->GetValue(r, 1).ValueOrDie().int64_value());
    span_names.insert(one->GetValue(r, 3).ValueOrDie().string_value());
    EXPECT_GE(one->GetValue(r, 5).ValueOrDie().double_value(), 0.0);
  }
  for (size_t r = 0; r < one->num_rows(); ++r) {
    int64_t parent = one->GetValue(r, 2).ValueOrDie().int64_value();
    EXPECT_TRUE(parent == 0 || span_ids.count(parent)) << parent;
  }
  EXPECT_TRUE(span_names.count("sql.parse"));
  EXPECT_TRUE(span_names.count("sql.plan"));

  EXPECT_FALSE(db_.Query("SELECT * FROM mlcs_trace()").ok());
}

TEST_F(SqlIntrospectionTest, SlowQueriesTableFunctionCapturesQueryAndPlan) {
  // Threshold 0 → every statement counts as slow; the capture pipeline
  // (forced trace + full SQL + rendered plan) must round-trip into SQL.
  obs::FlightRecorder::SetSlowQueryThresholdMsForTesting(0.0);
  const std::string sql = "SELECT COUNT(*) FROM voters WHERE age > 30";
  Q(sql);
  obs::FlightRecorder::SetSlowQueryThresholdMsForTesting(
      obs::FlightRecorder::kDefaultSlowQueryMs);

  auto t = Q("SELECT * FROM mlcs_slow_queries()");
  ASSERT_EQ(t->schema().num_fields(), 7u);
  EXPECT_EQ(t->schema().field(0).name, "trace_id");
  EXPECT_EQ(t->schema().field(1).name, "query");
  EXPECT_EQ(t->schema().field(6).name, "plan");
  bool found = false;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    if (t->GetValue(r, 1).ValueOrDie().string_value() != sql) continue;
    found = true;
    EXPECT_GT(t->GetValue(r, 0).ValueOrDie().int64_value(), 0);
    EXPECT_GE(t->GetValue(r, 2).ValueOrDie().double_value(), 0.0);
    EXPECT_GE(t->GetValue(r, 3).ValueOrDie().int64_value(), 3);  // spans
    EXPECT_EQ(t->GetValue(r, 5).ValueOrDie().int64_value(), 0);  // truncated
    const std::string plan = t->GetValue(r, 6).ValueOrDie().string_value();
    EXPECT_NE(plan.find("AGGREGATE"), std::string::npos) << plan;
    EXPECT_NE(plan.find("SCAN voters"), std::string::npos) << plan;
  }
  EXPECT_TRUE(found);
  // Zero-argument contract, like mlcs_metrics().
  EXPECT_FALSE(db_.Query("SELECT * FROM mlcs_slow_queries(1)").ok());
}

/// -- Golden plans: the optimizer's rewrites must show in EXPLAIN ----------

TEST_F(SqlIntrospectionTest, GoldenPlanPrunedScan) {
  EXPECT_EQ(PlanOf("SELECT age FROM voters WHERE age > 30"),
            "PROJECT [age]\n"
            "  FILTER (age > 30)\n"
            "    SCAN voters [age]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanPushdownBelowJoin) {
  // Both conjuncts move below the join; the WHERE node dissolves. The
  // voters scan narrows to the referenced columns (schema order); the
  // precincts scan needs all of its columns, so it stays unbracketed.
  EXPECT_EQ(PlanOf("SELECT age FROM voters JOIN precincts "
                   "ON precinct = precinct WHERE age > 30 AND dem > 50"),
            "PROJECT [age]\n"
            "  HASH JOIN on precinct = precinct\n"
            "    FILTER (age > 30)\n"
            "      SCAN voters [precinct, age]\n"
            "    FILTER (dem > 50)\n"
            "      SCAN precincts\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanLeftJoinKeepsRightFilterAbove) {
  // A right-side-only conjunct must NOT sink below a LEFT join (it would
  // turn NULL-extended rows into matches of nothing).
  EXPECT_EQ(PlanOf("SELECT age FROM voters LEFT JOIN precincts "
                   "ON precinct = precinct WHERE dem > 50"),
            "PROJECT [age]\n"
            "  FILTER (dem > 50)\n"
            "    LEFT JOIN on precinct = precinct\n"
            "      SCAN voters [precinct, age]\n"
            "      SCAN precincts\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanCountStarKeepsNarrowestColumn) {
  // No column referenced: the scan keeps one (narrowest) column so the
  // row count survives.
  EXPECT_EQ(PlanOf("SELECT COUNT(*) FROM voters"),
            "AGGREGATE [COUNT(*)]\n"
            "  SCAN voters [id]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanConstantTrueFilterElided) {
  EXPECT_EQ(PlanOf("SELECT age FROM voters WHERE 1 < 2"),
            "PROJECT [age]\n"
            "  SCAN voters [age]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanConstantPieceFoldsInMixedPredicate) {
  // The literal-only piece of a mixed conjunction folds away instead of
  // lingering as a residual filter above the join.
  EXPECT_EQ(PlanOf("SELECT age FROM voters JOIN precincts "
                   "ON precinct = precinct WHERE age > 30 AND 1 < 2"),
            "PROJECT [age]\n"
            "  HASH JOIN on precinct = precinct\n"
            "    FILTER (age > 30)\n"
            "      SCAN voters [precinct, age]\n"
            "    SCAN precincts [precinct]\n");
}

TEST_F(SqlIntrospectionTest, GoldenPlanOptimizerOff) {
  // With rewrites off the plan keeps the bound shape: one WHERE filter
  // above the join, full-width scans.
  db_.set_optimizer_enabled(false);
  EXPECT_EQ(PlanOf("SELECT age FROM voters JOIN precincts "
                   "ON precinct = precinct WHERE age > 30 AND dem > 50"),
            "PROJECT [age]\n"
            "  FILTER ((age > 30) AND (dem > 50))\n"
            "    HASH JOIN on precinct = precinct\n"
            "      SCAN voters\n"
            "      SCAN precincts\n");
  db_.set_optimizer_enabled(true);
}

TEST_F(SqlIntrospectionTest, SelectStarDisablesPruning) {
  std::string plan = PlanOf("SELECT * FROM voters WHERE age > 30");
  EXPECT_NE(plan.find("SCAN voters\n"), std::string::npos);
  EXPECT_EQ(plan.find("SCAN voters ["), std::string::npos);
}

/// -- Aggregate pushdown below a join (sql/optimizer.cc rule 3) ------------

/// Restores the factorized knob even when an ASSERT unwinds early.
struct FactorizedToggleGuard {
  bool saved = ml::FactorizedEnabled();
  ~FactorizedToggleGuard() { ml::SetFactorizedEnabled(saved); }
};

TEST_F(SqlIntrospectionTest, GoldenPlanAggregatePushdownBelowJoin) {
  // Pin the rule on so the golden plan holds under MLCS_DISABLE_FACTORIZED=1
  // (the disabled shape has its own test below).
  FactorizedToggleGuard restore;
  ml::SetFactorizedEnabled(true);
  uint64_t before = obs::MetricsRegistry::Global()
                        .GetCounter("mlcs.factorized.agg_pushdowns")
                        ->Value();
  // The fact side collapses to per-(group key, join key) partials below
  // the join; the aggregate above folds them with SUM.
  EXPECT_EQ(
      PlanOf("SELECT precinct, COUNT(*) AS n, SUM(age) AS total "
             "FROM voters JOIN precincts ON precinct = precinct "
             "GROUP BY precinct"),
      "AGGREGATE [precinct, SUM(__pagg_0) AS n, SUM(__pagg_1) AS total]"
      " group by precinct\n"
      "  HASH JOIN on precinct = precinct\n"
      "    AGGREGATE [precinct, COUNT(*) AS __pagg_0, SUM(age) AS __pagg_1]"
      " group by precinct\n"
      "      SCAN voters [precinct, age]\n"
      "    SCAN precincts [precinct]\n");
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("mlcs.factorized.agg_pushdowns")
                ->Value(),
            before);
}

TEST_F(SqlIntrospectionTest, AggregatePushdownResultsMatchUnoptimized) {
  // precinct 10 joins 2 voters (ages 20, 40), precinct 20 joins 1 (60).
  std::string sql =
      "SELECT precinct, COUNT(*) AS n, SUM(age) AS total "
      "FROM voters JOIN precincts ON precinct = precinct "
      "GROUP BY precinct ORDER BY precinct";
  auto on = Q(sql);
  ASSERT_EQ(on->num_rows(), 2u);
  EXPECT_EQ(on->GetValue(0, 1).ValueOrDie(), Value::Int64(2));
  EXPECT_EQ(on->GetValue(0, 2).ValueOrDie(), Value::Int64(60));
  EXPECT_EQ(on->GetValue(1, 1).ValueOrDie(), Value::Int64(1));
  EXPECT_EQ(on->GetValue(1, 2).ValueOrDie(), Value::Int64(60));
  db_.set_optimizer_enabled(false);
  auto off = Q(sql);
  db_.set_optimizer_enabled(true);
  EXPECT_TRUE(on->Equals(*off)) << on->ToString() << "\n" << off->ToString();
}

TEST_F(SqlIntrospectionTest, AggregatePushdownFailsOpenOnDimSideSum) {
  // SUM(dem) reads the dimension side, so the rewrite must not fire —
  // only SUM over fact-side integer columns is pushable.
  std::string plan = PlanOf(
      "SELECT SUM(dem) AS d FROM voters JOIN precincts "
      "ON precinct = precinct");
  EXPECT_EQ(plan.find("__pagg"), std::string::npos) << plan;
}

TEST_F(SqlIntrospectionTest, AggregatePushdownFailsOpenOnAvg) {
  // AVG re-associates double arithmetic; the rewrite leaves it alone.
  std::string plan = PlanOf(
      "SELECT precinct, AVG(age) AS a FROM voters JOIN precincts "
      "ON precinct = precinct GROUP BY precinct");
  EXPECT_EQ(plan.find("__pagg"), std::string::npos) << plan;
}

TEST_F(SqlIntrospectionTest, AggregatePushdownDisabledByFactorizedKnob) {
  FactorizedToggleGuard restore;
  ml::SetFactorizedEnabled(false);
  std::string plan = PlanOf(
      "SELECT precinct, COUNT(*) AS n FROM voters JOIN precincts "
      "ON precinct = precinct GROUP BY precinct");
  EXPECT_EQ(plan.find("__pagg"), std::string::npos) << plan;
  ml::SetFactorizedEnabled(true);
  plan = PlanOf(
      "SELECT precinct, COUNT(*) AS n FROM voters JOIN precincts "
      "ON precinct = precinct GROUP BY precinct");
  EXPECT_NE(plan.find("__pagg"), std::string::npos) << plan;
}

TEST_F(SqlIntrospectionTest, StdDevAggregate) {
  // ages 20, 40, 60 → mean 40, population stddev sqrt(800/3).
  auto t = Q("SELECT STDDEV(age) AS s FROM voters");
  EXPECT_NEAR(t->GetValue(0, 0).ValueOrDie().double_value(),
              std::sqrt(800.0 / 3.0), 1e-9);
  // Grouped stddev; single-row group → 0.
  auto g = Q("SELECT precinct, STDDEV(age) AS s FROM voters "
             "GROUP BY precinct ORDER BY precinct");
  EXPECT_NEAR(g->GetValue(0, 1).ValueOrDie().double_value(), 10.0, 1e-9);
  EXPECT_NEAR(g->GetValue(1, 1).ValueOrDie().double_value(), 0.0, 1e-9);
  // Non-numeric rejected.
  ASSERT_TRUE(db_.Run("CREATE TABLE s (v VARCHAR); "
                      "INSERT INTO s VALUES ('a');")
                  .ok());
  EXPECT_FALSE(db_.Query("SELECT STDDEV(v) FROM s").ok());
}

}  // namespace
}  // namespace mlcs
