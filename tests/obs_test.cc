// Unit tests for the observability layer (src/obs/): metrics registry
// semantics, histogram bucket edges, snapshot consistency, and the trace
// span API (context install/restore, nesting, span cap, sink retention).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlcs::obs {
namespace {

// Tests register under test-only names: the global registry never removes
// a series, so production names must not be polluted with test bumps.

TEST(MetricsRegistryTest, CounterRegistersOnceAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter.a");
  EXPECT_EQ(c->Value(), 0u);
  c->Add(3);
  c->Add();  // default increment of 1
  EXPECT_EQ(c->Value(), 4u);
  // Same name → same handle; the registry owns one series per name.
  EXPECT_EQ(registry.GetCounter("test.counter.a"), c);
  EXPECT_NE(registry.GetCounter("test.counter.b"), c);
}

TEST(MetricsRegistryTest, GaugeSetAddAndMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  g->UpdateMax(5);  // smaller: no change
  EXPECT_EQ(g->Value(), 7);
  g->UpdateMax(42);
  EXPECT_EQ(g->Value(), 42);
}

TEST(MetricsRegistryTest, HistogramBucketEdges) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0});
  // v <= bound lands in that bucket; past the last bound → overflow.
  h->Observe(0.5);    // bucket 0
  h->Observe(1.0);    // bucket 0 (inclusive upper edge)
  h->Observe(5.0);    // bucket 1
  h->Observe(100.0);  // overflow bucket
  ASSERT_EQ(h->num_buckets(), 3u);
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 106.5);
  // Bounds are series identity: a second registration's bounds are
  // ignored, the existing histogram comes back.
  EXPECT_EQ(registry.GetHistogram("test.hist", {99.0}), h);
}

TEST(MetricsRegistryTest, SnapshotExportsEverySeriesSorted) {
  MetricsRegistry registry;
  registry.GetCounter("test.b.counter")->Add(2);
  registry.GetGauge("test.a.gauge")->Set(-5);
  Histogram* h = registry.GetHistogram("test.c.hist", {1.0});
  h->Observe(0.5);
  h->Observe(7.0);
  std::vector<MetricSample> samples = registry.Snapshot();
  // gauge + counter + histogram rows (le_1, le_inf, count, sum).
  ASSERT_EQ(samples.size(), 6u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  EXPECT_EQ(samples[0].name, "test.a.gauge");
  EXPECT_EQ(samples[0].kind, "gauge");
  EXPECT_DOUBLE_EQ(samples[0].value, -5.0);
  EXPECT_EQ(samples[1].name, "test.b.counter");
  EXPECT_EQ(samples[1].kind, "counter");
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_EQ(samples[2].name, "test.c.hist.count");
  EXPECT_DOUBLE_EQ(samples[2].value, 2.0);
  EXPECT_EQ(samples[3].name, "test.c.hist.le_1");
  EXPECT_DOUBLE_EQ(samples[3].value, 1.0);
  EXPECT_EQ(samples[4].name, "test.c.hist.le_inf");
  EXPECT_DOUBLE_EQ(samples[4].value, 1.0);
  EXPECT_EQ(samples[5].name, "test.c.hist.sum");
  EXPECT_DOUBLE_EQ(samples[5].value, 7.5);
}

TEST(MetricsRegistryTest, ConcurrentBumpsLoseNothing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  Histogram* h = registry.GetHistogram("test.concurrent.hist", {100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Observe(1.0);
        // Concurrent registration of the same name must also be safe.
        registry.GetCounter("test.concurrent")->Add(0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->BucketCount(0), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MirroredCounterTest, BumpsLocalAndGlobal) {
  Counter* global =
      MetricsRegistry::Global().GetCounter("test.mirrored.series");
  uint64_t global_before = global->Value();
  MirroredCounter a("test.mirrored.series");
  MirroredCounter b("test.mirrored.series");
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(a.Value(), 2u);  // local counts stay per-instance
  EXPECT_EQ(b.Value(), 3u);
  EXPECT_EQ(global->Value(), global_before + 5);  // global aggregates
}

TEST(MirroredMaxGaugeTest, RatchetsLocalAndGlobal) {
  Gauge* global = MetricsRegistry::Global().GetGauge("test.mirrored.max");
  MirroredMaxGauge m("test.mirrored.max");
  m.UpdateMax(7);
  m.UpdateMax(3);
  EXPECT_EQ(m.Value(), 7u);
  EXPECT_GE(global->Value(), 7);
}

TEST(TraceTest, InactiveWhenDisabled) {
  ASSERT_FALSE(TracingEnabled());
  TraceContext ctx("should not activate");
  EXPECT_FALSE(ctx.active());
  EXPECT_FALSE(TraceActive());
  // Spans on an inactive thread are no-ops, not crashes.
  ScopedSpan span("noop");
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, ForcedContextCollectsNestedSpans) {
  TraceContext ctx("root", /*force=*/true);
  ASSERT_TRUE(ctx.active());
  EXPECT_TRUE(TraceActive());
  {
    ScopedSpan outer("outer");
    ASSERT_TRUE(outer.active());
    outer.set_rows_out(10);
    {
      ScopedSpan inner("inner:", std::string("dynamic"));
      ASSERT_TRUE(inner.active());
      inner.set_rows_in(10);
      inner.set_bytes(80);
    }
  }
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  // outer + inner + root (finalized by ConsumeSpans).
  ASSERT_EQ(spans.size(), 3u);
  const TraceSpan* root = nullptr;
  const TraceSpan* outer = nullptr;
  const TraceSpan* inner = nullptr;
  for (const TraceSpan& s : spans) {
    if (s.name == "root") root = &s;
    if (s.name == "outer") outer = &s;
    if (s.name == "inner:dynamic") inner = &s;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(root->span_id, 1u);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(outer->parent_id, 1u);          // nests under the root
  EXPECT_EQ(inner->parent_id, outer->span_id);  // nests under outer
  EXPECT_EQ(outer->rows_out, 10u);
  EXPECT_EQ(inner->rows_in, 10u);
  EXPECT_EQ(inner->bytes, 80u);
  EXPECT_GE(inner->start_offset.count(), outer->start_offset.count());
  // Consumed contexts flush nothing at destruction; the thread-local
  // uninstall happens in the destructor either way.
}

TEST(TraceTest, ShadowedContextReadsOnlyItsOwnSpans) {
  TraceContext outer_ctx("outer ctx", /*force=*/true);
  { ScopedSpan s("belongs to outer"); }
  {
    TraceContext inner_ctx("inner ctx", /*force=*/true);
    { ScopedSpan s("belongs to inner"); }
    std::vector<TraceSpan> inner_spans = inner_ctx.ConsumeSpans();
    ASSERT_EQ(inner_spans.size(), 2u);  // its span + its root
    EXPECT_NE(inner_spans[0].trace_id, 0u);
  }
  // After the inner context unwinds, spans attach to the outer again.
  { ScopedSpan s("outer again"); }
  std::vector<TraceSpan> outer_spans = outer_ctx.ConsumeSpans();
  ASSERT_EQ(outer_spans.size(), 3u);
  for (const TraceSpan& s : outer_spans) {
    EXPECT_NE(s.name, "belongs to inner");
  }
}

TEST(TraceTest, RecordSpanWithExplicitEndpoints) {
  TraceContext ctx("synthetic", /*force=*/true);
  auto start = std::chrono::steady_clock::now();
  auto end = start + std::chrono::microseconds(250);
  ctx.RecordSpan("admission", start, end, /*rows_in=*/16);
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& s = spans[0].name == "admission" ? spans[0] : spans[1];
  EXPECT_EQ(s.name, "admission");
  EXPECT_EQ(s.parent_id, 1u);
  EXPECT_EQ(s.rows_in, 16u);
  EXPECT_EQ(s.duration, std::chrono::nanoseconds(250000));
}

TEST(TraceTest, ScopedTraceAttachJoinsPoolThreads) {
  TraceContext ctx("pooled", /*force=*/true);
  std::thread worker([&ctx] {
    EXPECT_FALSE(TraceActive());  // fresh thread: no context
    ScopedTraceAttach attach(&ctx);
    EXPECT_TRUE(TraceActive());
    ScopedSpan span("worker span");
    EXPECT_TRUE(span.active());
  });
  worker.join();
  std::thread detached([] {
    ScopedTraceAttach attach(nullptr);  // null context: no-op
    EXPECT_FALSE(TraceActive());
  });
  detached.join();
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& s =
      spans[0].name == "worker span" ? spans[0] : spans[1];
  EXPECT_EQ(s.name, "worker span");
  EXPECT_EQ(s.parent_id, 1u);
}

TEST(TraceTest, SpanCapDropsAndCounts) {
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("mlcs.trace.dropped_spans");
  uint64_t dropped_before = dropped->Value();
  TraceContext ctx("capped", /*force=*/true);
  constexpr int kOver = 100;
  for (int i = 0; i < 8192 + kOver; ++i) {
    ScopedSpan span("s");
  }
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  // Cap spans + root; the overflow was counted, not silently lost.
  EXPECT_EQ(spans.size(), 8192u + 1u);
  EXPECT_GE(dropped->Value(), dropped_before + kOver);
}

TEST(TraceSinkTest, RetainsAndQueriesFlushedTraces) {
  TraceSink sink;
  uint64_t id1 = 0;
  {
    TraceContext ctx("first", /*force=*/true);
    id1 = ctx.trace_id();
    { ScopedSpan s("a"); }
    sink.AddTrace(ctx.ConsumeSpans());
  }
  std::vector<TraceSpan> got = sink.Query(id1);
  ASSERT_EQ(got.size(), 2u);
  for (const TraceSpan& s : got) EXPECT_EQ(s.trace_id, id1);
  EXPECT_TRUE(sink.Query(id1 + 999999).empty());
  // trace_id 0 → everything, ordered by (trace, span id).
  EXPECT_EQ(sink.Query(0).size(), 2u);
  sink.Clear();
  EXPECT_TRUE(sink.Query(0).empty());
}

TEST(TraceSinkTest, DestructorFlushesToGlobalSinkWhenEnabled) {
  TraceSink::Global().Clear();
  SetTracingEnabled(true);
  uint64_t id = 0;
  {
    TraceContext ctx("flushed at scope exit");
    ASSERT_TRUE(ctx.active());
    id = ctx.trace_id();
    ScopedSpan s("work");
  }
  SetTracingEnabled(false);
  std::vector<TraceSpan> got = TraceSink::Global().Query(id);
  ASSERT_EQ(got.size(), 2u);
  TraceSink::Global().Clear();
}

}  // namespace
}  // namespace mlcs::obs
