// Unit tests for the observability layer (src/obs/): metrics registry
// semantics, histogram bucket edges, quantile estimation, snapshot
// consistency, the trace span API (context install/restore, nesting, span
// cap), wait-state attribution, and flight-recorder retention.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wait_stats.h"

namespace mlcs::obs {
namespace {

// Tests register under test-only names: the global registry never removes
// a series, so production names must not be polluted with test bumps.

TEST(MetricsRegistryTest, CounterRegistersOnceAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter.a");
  EXPECT_EQ(c->Value(), 0u);
  c->Add(3);
  c->Add();  // default increment of 1
  EXPECT_EQ(c->Value(), 4u);
  // Same name → same handle; the registry owns one series per name.
  EXPECT_EQ(registry.GetCounter("test.counter.a"), c);
  EXPECT_NE(registry.GetCounter("test.counter.b"), c);
}

TEST(MetricsRegistryTest, GaugeSetAddAndMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  g->UpdateMax(5);  // smaller: no change
  EXPECT_EQ(g->Value(), 7);
  g->UpdateMax(42);
  EXPECT_EQ(g->Value(), 42);
}

TEST(MetricsRegistryTest, HistogramBucketEdges) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0});
  // v <= bound lands in that bucket; past the last bound → overflow.
  h->Observe(0.5);    // bucket 0
  h->Observe(1.0);    // bucket 0 (inclusive upper edge)
  h->Observe(5.0);    // bucket 1
  h->Observe(100.0);  // overflow bucket
  ASSERT_EQ(h->num_buckets(), 3u);
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 106.5);
  // Bounds are series identity: a second registration's bounds are
  // ignored, the existing histogram comes back.
  EXPECT_EQ(registry.GetHistogram("test.hist", {99.0}), h);
}

TEST(MetricsRegistryTest, SnapshotExportsEverySeriesSorted) {
  MetricsRegistry registry;
  registry.GetCounter("test.b.counter")->Add(2);
  registry.GetGauge("test.a.gauge")->Set(-5);
  Histogram* h = registry.GetHistogram("test.c.hist", {1.0});
  h->Observe(0.5);
  h->Observe(7.0);
  std::vector<MetricSample> samples = registry.Snapshot();
  // gauge + counter + histogram rows (count, p50, p90, p99, sum) — the
  // quantiles replaced the old raw `.le_<bound>` bucket rows.
  ASSERT_EQ(samples.size(), 7u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  EXPECT_EQ(samples[0].name, "test.a.gauge");
  EXPECT_EQ(samples[0].kind, "gauge");
  EXPECT_DOUBLE_EQ(samples[0].value, -5.0);
  EXPECT_EQ(samples[1].name, "test.b.counter");
  EXPECT_EQ(samples[1].kind, "counter");
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_EQ(samples[2].name, "test.c.hist.count");
  EXPECT_EQ(samples[2].kind, "histogram");
  EXPECT_DOUBLE_EQ(samples[2].value, 2.0);
  // One sample at 0.5 (bucket le=1), one at 7.0 (+inf): the median
  // interpolates to the first bound; the tail clamps to it (one-sided
  // bounded error, never an invented value past the data).
  EXPECT_EQ(samples[3].name, "test.c.hist.p50");
  EXPECT_DOUBLE_EQ(samples[3].value, 1.0);
  EXPECT_EQ(samples[4].name, "test.c.hist.p90");
  EXPECT_DOUBLE_EQ(samples[4].value, 1.0);
  EXPECT_EQ(samples[5].name, "test.c.hist.p99");
  EXPECT_DOUBLE_EQ(samples[5].value, 1.0);
  EXPECT_EQ(samples[6].name, "test.c.hist.sum");
  EXPECT_DOUBLE_EQ(samples[6].value, 7.5);
}

TEST(QuantileTest, InterpolatesWithinBuckets) {
  const double bounds[2] = {10.0, 20.0};
  const uint64_t counts[3] = {5, 5, 0};
  Quantiles q = EstimateQuantiles(bounds, 2, counts, 10);
  // p50 rank 5 exhausts bucket 0 exactly → its upper bound.
  EXPECT_DOUBLE_EQ(q.p50, 10.0);
  // p90 rank 9: 4 of bucket 1's 5 → 10 + 0.8 * 10.
  EXPECT_DOUBLE_EQ(q.p90, 18.0);
  EXPECT_DOUBLE_EQ(q.p99, 19.8);
}

TEST(QuantileTest, OverflowBucketClampsToLastBound) {
  const double bounds[2] = {10.0, 20.0};
  const uint64_t counts[3] = {0, 0, 4};
  Quantiles q = EstimateQuantiles(bounds, 2, counts, 4);
  EXPECT_DOUBLE_EQ(q.p50, 20.0);
  EXPECT_DOUBLE_EQ(q.p99, 20.0);
}

TEST(QuantileTest, EmptyHistogramIsAllZero) {
  const double bounds[1] = {10.0};
  const uint64_t counts[2] = {0, 0};
  Quantiles q = EstimateQuantiles(bounds, 1, counts, 0);
  EXPECT_DOUBLE_EQ(q.p50, 0.0);
  EXPECT_DOUBLE_EQ(q.p90, 0.0);
  EXPECT_DOUBLE_EQ(q.p99, 0.0);
}

TEST(WaitStatsTest, SiteRecordsCountTotalMaxAndBuckets) {
  WaitSite* site = WaitStats::Global().GetSite(WaitKind::kLock,
                                               "test.obs.site");
  // Same (kind, name) → same slot; different kind → different slot.
  EXPECT_EQ(WaitStats::Global().GetSite(WaitKind::kLock, "test.obs.site"),
            site);
  EXPECT_NE(WaitStats::Global().GetSite(WaitKind::kQueue, "test.obs.site"),
            site);
  uint64_t count_before = site->Count();
  site->RecordWaitNs(5'000);       // 5us → first bucket (le 10us)
  site->RecordWaitNs(2'000'000);   // 2ms
  EXPECT_EQ(site->Count(), count_before + 2);
  EXPECT_GE(site->TotalNs(), 2'005'000u);
  EXPECT_GE(site->MaxNs(), 2'000'000u);
  EXPECT_GE(site->BucketCount(0), 1u);
}

TEST(WaitStatsTest, GlobalSnapshotMergesWaitSeries) {
  WaitSite* site =
      WaitStats::Global().GetSite(WaitKind::kBufpool, "test.obs.merge");
  site->RecordWaitNs(42'000);
  bool found_count = false;
  bool found_p50 = false;
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    if (s.name == "mlcs.wait.bufpool.test.obs.merge.count") {
      found_count = true;
      EXPECT_EQ(s.kind, "histogram");
      EXPECT_GE(s.value, 1.0);
    }
    if (s.name == "mlcs.wait.bufpool.test.obs.merge.p50") found_p50 = true;
  }
  EXPECT_TRUE(found_count);
  EXPECT_TRUE(found_p50);
}

TEST(MetricsRegistryTest, ConcurrentBumpsLoseNothing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  Histogram* h = registry.GetHistogram("test.concurrent.hist", {100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Observe(1.0);
        // Concurrent registration of the same name must also be safe.
        registry.GetCounter("test.concurrent")->Add(0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->BucketCount(0), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MirroredCounterTest, BumpsLocalAndGlobal) {
  Counter* global =
      MetricsRegistry::Global().GetCounter("test.mirrored.series");
  uint64_t global_before = global->Value();
  MirroredCounter a("test.mirrored.series");
  MirroredCounter b("test.mirrored.series");
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(a.Value(), 2u);  // local counts stay per-instance
  EXPECT_EQ(b.Value(), 3u);
  EXPECT_EQ(global->Value(), global_before + 5);  // global aggregates
}

TEST(MirroredMaxGaugeTest, RatchetsLocalAndGlobal) {
  Gauge* global = MetricsRegistry::Global().GetGauge("test.mirrored.max");
  MirroredMaxGauge m("test.mirrored.max");
  m.UpdateMax(7);
  m.UpdateMax(3);
  EXPECT_EQ(m.Value(), 7u);
  EXPECT_GE(global->Value(), 7);
}

TEST(TraceTest, InactiveWhenDisabled) {
  ASSERT_FALSE(TracingEnabled());
  TraceContext ctx("should not activate");
  EXPECT_FALSE(ctx.active());
  EXPECT_FALSE(TraceActive());
  // Spans on an inactive thread are no-ops, not crashes.
  ScopedSpan span("noop");
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, ForcedContextCollectsNestedSpans) {
  TraceContext ctx("root", /*force=*/true);
  ASSERT_TRUE(ctx.active());
  EXPECT_TRUE(TraceActive());
  {
    ScopedSpan outer("outer");
    ASSERT_TRUE(outer.active());
    outer.set_rows_out(10);
    {
      ScopedSpan inner("inner:", std::string("dynamic"));
      ASSERT_TRUE(inner.active());
      inner.set_rows_in(10);
      inner.set_bytes(80);
    }
  }
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  // outer + inner + root (finalized by ConsumeSpans).
  ASSERT_EQ(spans.size(), 3u);
  const TraceSpan* root = nullptr;
  const TraceSpan* outer = nullptr;
  const TraceSpan* inner = nullptr;
  for (const TraceSpan& s : spans) {
    if (s.name == "root") root = &s;
    if (s.name == "outer") outer = &s;
    if (s.name == "inner:dynamic") inner = &s;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(root->span_id, 1u);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(outer->parent_id, 1u);          // nests under the root
  EXPECT_EQ(inner->parent_id, outer->span_id);  // nests under outer
  EXPECT_EQ(outer->rows_out, 10u);
  EXPECT_EQ(inner->rows_in, 10u);
  EXPECT_EQ(inner->bytes, 80u);
  EXPECT_GE(inner->start_offset.count(), outer->start_offset.count());
  // Consumed contexts flush nothing at destruction; the thread-local
  // uninstall happens in the destructor either way.
}

TEST(TraceTest, ShadowedContextReadsOnlyItsOwnSpans) {
  TraceContext outer_ctx("outer ctx", /*force=*/true);
  { ScopedSpan s("belongs to outer"); }
  {
    TraceContext inner_ctx("inner ctx", /*force=*/true);
    { ScopedSpan s("belongs to inner"); }
    std::vector<TraceSpan> inner_spans = inner_ctx.ConsumeSpans();
    ASSERT_EQ(inner_spans.size(), 2u);  // its span + its root
    EXPECT_NE(inner_spans[0].trace_id, 0u);
  }
  // After the inner context unwinds, spans attach to the outer again.
  { ScopedSpan s("outer again"); }
  std::vector<TraceSpan> outer_spans = outer_ctx.ConsumeSpans();
  ASSERT_EQ(outer_spans.size(), 3u);
  for (const TraceSpan& s : outer_spans) {
    EXPECT_NE(s.name, "belongs to inner");
  }
}

TEST(TraceTest, RecordSpanWithExplicitEndpoints) {
  TraceContext ctx("synthetic", /*force=*/true);
  auto start = std::chrono::steady_clock::now();
  auto end = start + std::chrono::microseconds(250);
  ctx.RecordSpan("admission", start, end, /*rows_in=*/16);
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& s = spans[0].name == "admission" ? spans[0] : spans[1];
  EXPECT_EQ(s.name, "admission");
  EXPECT_EQ(s.parent_id, 1u);
  EXPECT_EQ(s.rows_in, 16u);
  EXPECT_EQ(s.duration, std::chrono::nanoseconds(250000));
}

TEST(TraceTest, ScopedTraceAttachJoinsPoolThreads) {
  TraceContext ctx("pooled", /*force=*/true);
  std::thread worker([&ctx] {
    EXPECT_FALSE(TraceActive());  // fresh thread: no context
    ScopedTraceAttach attach(&ctx);
    EXPECT_TRUE(TraceActive());
    ScopedSpan span("worker span");
    EXPECT_TRUE(span.active());
  });
  worker.join();
  std::thread detached([] {
    ScopedTraceAttach attach(nullptr);  // null context: no-op
    EXPECT_FALSE(TraceActive());
  });
  detached.join();
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& s =
      spans[0].name == "worker span" ? spans[0] : spans[1];
  EXPECT_EQ(s.name, "worker span");
  EXPECT_EQ(s.parent_id, 1u);
}

TEST(TraceTest, SpanCapDropsCountsAndMarksRoot) {
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("mlcs.trace.dropped_spans");
  uint64_t dropped_before = dropped->Value();
  TraceContext ctx("capped", /*force=*/true);
  constexpr int kOver = 100;
  for (int i = 0; i < 8192 + kOver; ++i) {
    ScopedSpan span("s");
  }
  EXPECT_EQ(ctx.dropped_spans(), static_cast<uint64_t>(kOver));
  std::vector<TraceSpan> spans = ctx.ConsumeSpans();
  // Cap spans + root; the overflow was counted, not silently lost.
  EXPECT_EQ(spans.size(), 8192u + 1u);
  EXPECT_GE(dropped->Value(), dropped_before + kOver);
  // Per-trace attribution: the root span carries the truncation flag so a
  // later reader of just this trace knows it is incomplete.
  const TraceSpan* root = nullptr;
  for (const TraceSpan& s : spans) {
    if (s.span_id == 1) root = &s;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->note.find("truncated"), std::string::npos);
  EXPECT_NE(root->note.find("100"), std::string::npos);
}

TEST(FlightRecorderTest, RetainsAndQueriesFlushedTraces) {
  FlightRecorder::Global().Clear();
  SetTracingEnabled(true);
  uint64_t id = 0;
  {
    TraceContext ctx("flushed at scope exit");
    ASSERT_TRUE(ctx.active());
    id = ctx.trace_id();
    ScopedSpan s("work");
  }
  SetTracingEnabled(false);
  std::vector<TraceSpan> got = FlightRecorder::Global().Query(id);
  ASSERT_EQ(got.size(), 2u);
  for (const TraceSpan& s : got) EXPECT_EQ(s.trace_id, id);
  EXPECT_TRUE(FlightRecorder::Global().Query(id + 999999).empty());
  // trace_id 0 → every ring trace, ordered by (trace, span id).
  EXPECT_GE(FlightRecorder::Global().Query(0).size(), 2u);
  FlightRecorder::Global().Clear();
  EXPECT_TRUE(FlightRecorder::Global().Query(0).empty());
}

TEST(FlightRecorderTest, AlwaysOnCaptureWithoutTracingFlag) {
  // The recorder replaces the old "tracing must be on" gate: a forced
  // context (what Database::Query creates when RecordingEnabled) lands in
  // the ring even though TracingEnabled() is false.
  ASSERT_FALSE(TracingEnabled());
  ASSERT_TRUE(FlightRecorder::RecordingEnabled());
  FlightRecorder::Global().Clear();
  uint64_t id = 0;
  {
    TraceContext ctx("always-on", /*force=*/true);
    id = ctx.trace_id();
    ScopedSpan s("work");
  }
  EXPECT_EQ(FlightRecorder::Global().Query(id).size(), 2u);
  FlightRecorder::Global().Clear();
}

TEST(FlightRecorderTest, RuntimeDisableStopsCapture) {
  FlightRecorder::Global().Clear();
  FlightRecorder::SetRecordingEnabled(false);
  EXPECT_FALSE(FlightRecorder::RecordingEnabled());
  {
    TraceContext ctx("not recorded", /*force=*/true);
    ScopedSpan s("work");
  }
  EXPECT_EQ(FlightRecorder::Global().trace_count(), 0u);
  FlightRecorder::SetRecordingEnabled(true);
}

RecordedTrace MakeTrace(uint64_t id, const std::string& name,
                        double duration_ms, size_t note_bytes = 0) {
  RecordedTrace t;
  t.trace_id = id;
  t.root_name = name;
  t.duration_ms = duration_ms;
  TraceSpan root;
  root.trace_id = id;
  root.span_id = 1;
  root.name = name;
  root.note.assign(note_bytes, 'x');
  t.spans.push_back(std::move(root));
  return t;
}

TEST(FlightRecorderTest, ByteBudgetEvictsOldestButKeepsNewest) {
  Counter* evicted =
      MetricsRegistry::Global().GetCounter("mlcs.trace.evicted_traces");
  uint64_t evicted_before = evicted->Value();
  FlightRecorder recorder(/*byte_budget=*/4096);
  for (uint64_t i = 1; i <= 16; ++i) {
    recorder.AddTrace(MakeTrace(i, "t", 0.0, /*note_bytes=*/512));
  }
  EXPECT_LE(recorder.bytes_retained(), 4096u + 1024u);
  EXPECT_LT(recorder.trace_count(), 16u);
  EXPECT_GE(recorder.trace_count(), 1u);
  // Newest survives, oldest went first.
  EXPECT_FALSE(recorder.Query(16).empty());
  EXPECT_TRUE(recorder.Query(1).empty());
  EXPECT_GT(evicted->Value(), evicted_before);
  // A single trace larger than the whole budget is still retained — the
  // ring never evicts down to empty.
  FlightRecorder tiny(/*byte_budget=*/64);
  tiny.AddTrace(MakeTrace(99, "huge", 0.0, /*note_bytes=*/4096));
  EXPECT_EQ(tiny.trace_count(), 1u);
}

TEST(FlightRecorderTest, SlowQueriesSurviveRingEviction) {
  FlightRecorder::SetSlowQueryThresholdMsForTesting(100.0);
  FlightRecorder recorder(/*byte_budget=*/4096);
  recorder.AddTrace(MakeTrace(7, "slow one", 250.0));
  for (uint64_t i = 100; i < 120; ++i) {
    recorder.AddTrace(MakeTrace(i, "filler", 1.0, /*note_bytes=*/512));
  }
  // Evicted from the ring, still reachable through the slow log.
  ASSERT_EQ(recorder.slow_query_count(), 1u);
  EXPECT_FALSE(recorder.Query(7).empty());
  std::vector<RecordedTrace> slow = recorder.SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].trace_id, 7u);
  EXPECT_TRUE(slow[0].slow);
  EXPECT_DOUBLE_EQ(slow[0].duration_ms, 250.0);
  FlightRecorder::SetSlowQueryThresholdMsForTesting(
      FlightRecorder::kDefaultSlowQueryMs);
}

TEST(FlightRecorderTest, SlowLogIsBoundedNewestFirst) {
  FlightRecorder::SetSlowQueryThresholdMsForTesting(1.0);
  FlightRecorder recorder(/*byte_budget=*/1 << 20, /*max_slow=*/4);
  for (uint64_t i = 1; i <= 10; ++i) {
    recorder.AddTrace(MakeTrace(i, "slow", 50.0));
  }
  std::vector<RecordedTrace> slow = recorder.SlowQueries();
  ASSERT_EQ(slow.size(), 4u);
  EXPECT_EQ(slow[0].trace_id, 10u);  // newest first
  EXPECT_EQ(slow[3].trace_id, 7u);
  FlightRecorder::SetSlowQueryThresholdMsForTesting(
      FlightRecorder::kDefaultSlowQueryMs);
}

}  // namespace
}  // namespace mlcs::obs
