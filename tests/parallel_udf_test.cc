#include "udf/parallel.h"

#include <gtest/gtest.h>

#include <atomic>

#include "exec/kernels.h"

namespace mlcs::udf {
namespace {

/// Registry with an "x * 2 + scalar" UDF that counts invocations.
class ParallelUdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScalarUdfEntry entry;
    entry.name = "affine";
    entry.fn = [this](const std::vector<ColumnPtr>& args,
                      size_t /*num_rows*/) -> Result<ColumnPtr> {
      calls_.fetch_add(1);
      MLCS_ASSIGN_OR_RETURN(
          ColumnPtr doubled,
          exec::BinaryKernel(exec::BinOpKind::kMul, *args[0],
                             *Column::Constant(Value::Int64(2), 1)));
      return exec::BinaryKernel(exec::BinOpKind::kAdd, *doubled, *args[1]);
    };
    ASSERT_TRUE(registry_.RegisterScalar(std::move(entry)).ok());
  }

  UdfRegistry registry_;
  std::atomic<int> calls_{0};
};

TEST_F(ParallelUdfTest, MatchesSerialResult) {
  size_t n = 100000;
  std::vector<int64_t> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<int64_t>(i);
  std::vector<ColumnPtr> args = {Column::FromInt64(std::move(data)),
                                 Column::Constant(Value::Int64(5), 1)};

  auto serial = registry_.CallScalar("affine", args, n).ValueOrDie();
  ParallelOptions opt;
  opt.num_chunks = 4;
  opt.min_rows_per_chunk = 1;
  auto parallel =
      ParallelCallScalar(registry_, "affine", args, n, opt).ValueOrDie();
  ASSERT_EQ(parallel->size(), n);
  EXPECT_TRUE(serial->Equals(*parallel));
}

TEST_F(ParallelUdfTest, ChunksActuallySplit) {
  size_t n = 10000;
  std::vector<int64_t> data(n, 1);
  std::vector<ColumnPtr> args = {Column::FromInt64(std::move(data)),
                                 Column::Constant(Value::Int64(0), 1)};
  ParallelOptions opt;
  opt.num_chunks = 4;
  opt.min_rows_per_chunk = 1;
  ASSERT_TRUE(ParallelCallScalar(registry_, "affine", args, n, opt).ok());
  EXPECT_EQ(calls_.load(), 4);
}

TEST_F(ParallelUdfTest, SmallInputStaysSingleChunk) {
  std::vector<ColumnPtr> args = {Column::FromInt64({1, 2, 3}),
                                 Column::Constant(Value::Int64(0), 1)};
  ParallelOptions opt;
  opt.num_chunks = 8;
  opt.min_rows_per_chunk = 4096;
  ASSERT_TRUE(ParallelCallScalar(registry_, "affine", args, 3, opt).ok());
  EXPECT_EQ(calls_.load(), 1);
}

TEST_F(ParallelUdfTest, ErrorsPropagate) {
  ScalarUdfEntry bad;
  bad.name = "boom";
  bad.fn = [](const std::vector<ColumnPtr>&, size_t) -> Result<ColumnPtr> {
    return Status::Internal("kaboom");
  };
  ASSERT_TRUE(registry_.RegisterScalar(std::move(bad)).ok());
  std::vector<ColumnPtr> args = {Column::FromInt64({1, 2, 3, 4})};
  ParallelOptions opt;
  opt.num_chunks = 2;
  opt.min_rows_per_chunk = 1;
  auto r = ParallelCallScalar(registry_, "boom", args, 4, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST_F(ParallelUdfTest, BroadcastOnlyOutputExpands) {
  ScalarUdfEntry constant;
  constant.name = "always_nine";
  constant.fn = [](const std::vector<ColumnPtr>&,
                   size_t) -> Result<ColumnPtr> {
    return Column::Constant(Value::Int32(9), 1);  // length-1 broadcast
  };
  ASSERT_TRUE(registry_.RegisterScalar(std::move(constant)).ok());
  std::vector<ColumnPtr> args = {Column::FromInt64({1, 2, 3, 4, 5, 6})};
  ParallelOptions opt;
  opt.num_chunks = 3;
  opt.min_rows_per_chunk = 1;
  auto out =
      ParallelCallScalar(registry_, "always_nine", args, 6, opt).ValueOrDie();
  ASSERT_EQ(out->size(), 6u);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(out->i32_data()[i], 9);
}

TEST_F(ParallelUdfTest, ZeroRowsIsFine) {
  std::vector<ColumnPtr> args = {Column::FromInt64({}),
                                 Column::Constant(Value::Int64(0), 1)};
  auto out = ParallelCallScalar(registry_, "affine", args, 0).ValueOrDie();
  EXPECT_EQ(out->size(), 0u);
}

}  // namespace
}  // namespace mlcs::udf
