#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/pickle.h"
#include "vscript/vs_interpreter.h"
#include "vscript/vs_lexer.h"
#include "vscript/vs_parser.h"

namespace mlcs::vscript {
namespace {

TEST(VsLexerTest, TokenizesOperatorsAndKeywords) {
  auto tokens = Tokenize("x = a + b * 2; return x >= 10;").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[1].type, TokenType::kAssign);
  EXPECT_EQ(tokens[5].type, TokenType::kStar);
  EXPECT_EQ(tokens.back().type, TokenType::kEof);
}

TEST(VsLexerTest, CommentsSkipped) {
  auto tokens = Tokenize("# a comment\nx = 1; # trailing\n").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[0].line, 2);
}

TEST(VsLexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("s = 'a\\'b\\n';").ValueOrDie();
  EXPECT_EQ(tokens[2].type, TokenType::kString);
  EXPECT_EQ(tokens[2].text, "a'b\n");
}

TEST(VsLexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("s = 'oops").ok());
}

TEST(VsLexerTest, FloatsAndInts) {
  auto tokens = Tokenize("1 2.5 1e3 7").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kInt);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kInt);
}

TEST(VsParserTest, ParsesListing1Shape) {
  // The paper's Listing 1 body, translated to VectorScript.
  const char* body = R"(
    clf = ml.random_forest(n_estimators);
    ml.fit(clf, data, classes);
    return { classifier: pickle.dumps(clf), estimators: n_estimators };
  )";
  auto program = Parse(body).ValueOrDie();
  EXPECT_EQ(program.statements.size(), 3u);
  EXPECT_EQ(program.statements[0]->kind, StmtKind::kAssign);
  EXPECT_EQ(program.statements[2]->kind, StmtKind::kReturn);
}

TEST(VsParserTest, SyntaxErrorsCarryLineNumbers) {
  auto r = Parse("x = ;\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(VsParserTest, MissingSemicolonRejected) {
  EXPECT_FALSE(Parse("x = 1").ok());
  EXPECT_FALSE(Parse("return 1").ok());
}

TEST(VsInterpreterTest, ScalarArithmetic) {
  auto result = ExecuteSource("return (1 + 2) * 3;", {}).ValueOrDie();
  EXPECT_EQ(result.AsScalar().ValueOrDie(), Value::Int32(9));
}

TEST(VsInterpreterTest, VariablesAndReassignment) {
  auto result = ExecuteSource("x = 1; x = x + 10; return x;", {})
                    .ValueOrDie();
  EXPECT_EQ(result.AsScalar().ValueOrDie(), Value::Int32(11));
}

TEST(VsInterpreterTest, UndefinedVariableReported) {
  auto r = ExecuteSource("return ghost;", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
}

TEST(VsInterpreterTest, IfElse) {
  const char* body = R"(
    if (x > 5) { result = 'big'; } else { result = 'small'; }
    return result;
  )";
  Environment env;
  env["x"] = ScriptValue(Value::Int32(10));
  EXPECT_EQ(ExecuteSource(body, env).ValueOrDie().AsScalar().ValueOrDie(),
            Value::Varchar("big"));
  env["x"] = ScriptValue(Value::Int32(1));
  EXPECT_EQ(ExecuteSource(body, env).ValueOrDie().AsScalar().ValueOrDie(),
            Value::Varchar("small"));
}

TEST(VsInterpreterTest, WhileLoop) {
  const char* body = R"(
    total = 0;
    i = 0;
    while (i < 10) { total = total + i; i = i + 1; }
    return total;
  )";
  EXPECT_EQ(
      ExecuteSource(body, {}).ValueOrDie().AsScalar().ValueOrDie(),
      Value::Int32(45));
}

TEST(VsInterpreterTest, InfiniteLoopGuard) {
  InterpreterOptions opt;
  opt.max_steps = 1000;
  auto r = ExecuteSource("while (true) { x = 1; }", {}, opt);
  EXPECT_FALSE(r.ok());
}

TEST(VsInterpreterTest, VectorArithmeticBroadcasts) {
  Environment env;
  env["data"] = ScriptValue(Column::FromInt32({1, 2, 3}));
  auto result = ExecuteSource("return data * 2 + 1;", env).ValueOrDie();
  ASSERT_TRUE(result.is_column());
  EXPECT_EQ(result.column()->i32_data(), (std::vector<int32_t>{3, 5, 7}));
}

TEST(VsInterpreterTest, VectorComparisonYieldsBoolColumn) {
  Environment env;
  env["v"] = ScriptValue(Column::FromDouble({0.1, 0.9}));
  auto result = ExecuteSource("return v > 0.5;", env).ValueOrDie();
  ASSERT_TRUE(result.is_column());
  EXPECT_EQ(result.column()->bool_data(), (std::vector<uint8_t>{0, 1}));
}

TEST(VsInterpreterTest, VecBuiltins) {
  Environment env;
  env["v"] = ScriptValue(Column::FromInt32({1, 2, 3, 4}));
  EXPECT_EQ(ExecuteSource("return vec.len(v);", env)
                .ValueOrDie()
                .AsScalar()
                .ValueOrDie(),
            Value::Int64(4));
  EXPECT_EQ(ExecuteSource("return vec.sum(v);", env)
                .ValueOrDie()
                .AsScalar()
                .ValueOrDie(),
            Value::Double(10.0));
  EXPECT_EQ(ExecuteSource("return vec.avg(v);", env)
                .ValueOrDie()
                .AsScalar()
                .ValueOrDie(),
            Value::Double(2.5));
  EXPECT_EQ(ExecuteSource("return vec.min(v);", env)
                .ValueOrDie()
                .AsScalar()
                .ValueOrDie(),
            Value::Double(1.0));
  EXPECT_EQ(ExecuteSource("return vec.max(v);", env)
                .ValueOrDie()
                .AsScalar()
                .ValueOrDie(),
            Value::Double(4.0));
  auto fill = ExecuteSource("return vec.fill(7, 3);", env).ValueOrDie();
  EXPECT_EQ(fill.column()->i32_data(), (std::vector<int32_t>{7, 7, 7}));
  auto rnd = ExecuteSource("return vec.random(5, 1);", env).ValueOrDie();
  EXPECT_EQ(rnd.column()->size(), 5u);
}

TEST(VsInterpreterTest, UnknownFunctionReportsLine) {
  auto r = ExecuteSource("x = 1;\nreturn nope.nothing(x);", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

/// End-to-end: the paper's Listing 1 train body followed by Listing 2
/// predict body, entirely inside VectorScript.
TEST(VsInterpreterTest, Listing1ThenListing2) {
  // Separable data: class = x > 50.
  Rng rng(3);
  std::vector<int32_t> data(400), classes(400);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int32_t>(rng.NextBounded(100));
    classes[i] = data[i] > 50 ? 1 : 0;
  }
  Environment train_env;
  train_env["data"] = ScriptValue(Column::FromInt32(std::move(data)));
  train_env["classes"] =
      ScriptValue(Column::FromInt32(std::vector<int32_t>(classes)));
  train_env["n_estimators"] = ScriptValue(Value::Int32(8));

  const char* train_body = R"(
    clf = ml.random_forest(n_estimators);
    ml.fit(clf, data, classes);
    return { classifier: pickle.dumps(clf), estimators: n_estimators };
  )";
  auto trained = ExecuteSource(train_body, train_env).ValueOrDie();
  ASSERT_TRUE(trained.is_dict());
  const auto& dict = trained.dict();
  ASSERT_TRUE(dict.count("classifier"));
  Value blob = dict.at("classifier").AsScalar().ValueOrDie();
  EXPECT_EQ(blob.type(), TypeId::kBlob);
  EXPECT_EQ(dict.at("estimators").AsScalar().ValueOrDie(), Value::Int32(8));

  // Listing 2: predict.
  Environment predict_env;
  predict_env["data"] = ScriptValue(Column::FromInt32({10, 90, 30, 70}));
  predict_env["classifier"] = ScriptValue(blob);
  const char* predict_body = R"(
    classifier = pickle.loads(classifier);
    return ml.predict(classifier, data);
  )";
  auto pred = ExecuteSource(predict_body, predict_env).ValueOrDie();
  ASSERT_TRUE(pred.is_column());
  EXPECT_EQ(pred.column()->i32_data(), (std::vector<int32_t>{0, 1, 0, 1}));
}

TEST(VsInterpreterTest, MlAccuracyAndConfidence) {
  Rng rng(5);
  std::vector<int32_t> data(300), classes(300);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int32_t>(rng.NextBounded(100));
    classes[i] = data[i] > 50 ? 1 : 0;
  }
  Environment env;
  env["data"] = ScriptValue(Column::FromInt32(std::move(data)));
  env["classes"] = ScriptValue(Column::FromInt32(std::move(classes)));
  const char* body = R"(
    clf = ml.decision_tree();
    ml.fit(clf, data, classes);
    pred = ml.predict(clf, data);
    acc = ml.accuracy(classes, pred);
    conf = ml.confidence(clf, data);
    return { accuracy: acc, mean_conf: vec.avg(conf) };
  )";
  auto result = ExecuteSource(body, env).ValueOrDie();
  double acc =
      result.dict().at("accuracy").AsScalar().ValueOrDie().double_value();
  EXPECT_GT(acc, 0.95);
  double mean_conf =
      result.dict().at("mean_conf").AsScalar().ValueOrDie().double_value();
  EXPECT_GT(mean_conf, 0.5);
  EXPECT_LE(mean_conf, 1.0 + 1e-9);
}

TEST(VsInterpreterTest, ModelArithmeticRejected) {
  Environment env;
  const char* body = "m = ml.naive_bayes(); return m + 1;";
  EXPECT_FALSE(ExecuteSource(body, env).ok());
}

TEST(VsInterpreterTest, FitValidationErrorsSurface) {
  Environment env;
  env["data"] = ScriptValue(Column::FromInt32({1, 2, 3}));
  env["classes"] = ScriptValue(Column::FromInt32({0, 1}));  // wrong length
  const char* body = R"(
    clf = ml.naive_bayes();
    ml.fit(clf, data, classes);
    return 0;
  )";
  EXPECT_FALSE(ExecuteSource(body, env).ok());
}

}  // namespace
}  // namespace mlcs::vscript
