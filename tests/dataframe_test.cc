#include "dataframe/dataframe.h"

#include <gtest/gtest.h>

namespace mlcs::dataframe {
namespace {

DataFrame Voters() {
  Schema s;
  s.AddField("precinct", TypeId::kInt32);
  s.AddField("age", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(1), Value::Int32(20)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(1), Value::Int32(30)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(2), Value::Int32(40)}).ok());
  return DataFrame(t);
}

DataFrame Precincts() {
  Schema s;
  s.AddField("precinct", TypeId::kInt32);
  s.AddField("dem", TypeId::kInt32);
  auto t = Table::Make(std::move(s));
  EXPECT_TRUE(t->AppendRow({Value::Int32(1), Value::Int32(60)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int32(2), Value::Int32(30)}).ok());
  return DataFrame(t);
}

TEST(DataFrameTest, MergeOnKey) {
  auto merged = Voters().Merge(Precincts(), {"precinct"}).ValueOrDie();
  EXPECT_EQ(merged.num_rows(), 3u);
  auto dem = merged.Column("dem").ValueOrDie();
  // Voters in precinct 1 got dem=60.
  EXPECT_EQ(dem->i32_data()[0], 60);
  EXPECT_EQ(dem->i32_data()[2], 30);
}

TEST(DataFrameTest, GroupByAgg) {
  auto grouped = Voters()
                     .GroupBy({"precinct"},
                              {{exec::AggOp::kCountStar, "", "n"},
                               {exec::AggOp::kAvg, "age", "mean_age"}})
                     .ValueOrDie();
  EXPECT_EQ(grouped.num_rows(), 2u);
  EXPECT_EQ(grouped.table()->GetValue(0, 1).ValueOrDie(), Value::Int64(2));
  EXPECT_DOUBLE_EQ(
      grouped.table()->GetValue(0, 2).ValueOrDie().double_value(), 25.0);
}

TEST(DataFrameTest, FilterAndSelect) {
  auto df = Voters();
  auto old = df.Filter(*Column::FromBool({0, 1, 1})).ValueOrDie();
  EXPECT_EQ(old.num_rows(), 2u);
  auto ages = df.Select({"age"}).ValueOrDie();
  EXPECT_EQ(ages.num_columns(), 1u);
  EXPECT_FALSE(df.Select({"ghost"}).ok());
}

TEST(DataFrameTest, HeadSliceTake) {
  auto df = Voters();
  EXPECT_EQ(df.Head(2).num_rows(), 2u);
  EXPECT_EQ(df.Head(99).num_rows(), 3u);
  EXPECT_EQ(df.SliceRows(1, 1).table()->GetValue(0, 1).ValueOrDie(),
            Value::Int32(30));
  EXPECT_EQ(df.TakeRows({2}).table()->GetValue(0, 1).ValueOrDie(),
            Value::Int32(40));
}

TEST(DataFrameTest, ToMatrixAndLabels) {
  auto df = Voters();
  auto m = df.ToMatrix({"age"}).ValueOrDie();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 30.0);
  auto labels = df.LabelColumn("precinct").ValueOrDie();
  EXPECT_EQ(labels, (ml::Labels{1, 1, 2}));
}

TEST(DataFrameTest, AddColumn) {
  auto df = Voters();
  ASSERT_TRUE(df.AddColumn("score", Column::FromDouble({1, 2, 3})).ok());
  EXPECT_EQ(df.num_columns(), 3u);
  EXPECT_FALSE(df.AddColumn("bad", Column::FromDouble({1})).ok());
}

}  // namespace
}  // namespace mlcs::dataframe
