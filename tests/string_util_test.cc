#include "common/string_util.h"

#include <gtest/gtest.h>

namespace mlcs {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitEmptyInput) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\na b\r "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("blob"), "BLOB");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"x"}, ","), "x");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("voters.csv", "voters"));
  EXPECT_TRUE(EndsWith("voters.csv", ".csv"));
  EXPECT_FALSE(StartsWith("a", "ab"));
  EXPECT_FALSE(EndsWith("a", "ab"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-7").ValueOrDie(), -7);
  EXPECT_EQ(ParseInt64(" 13 ").ValueOrDie(), 13);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringUtilTest, ParseInt32RangeChecked) {
  EXPECT_EQ(ParseInt32("2147483647").ValueOrDie(), 2147483647);
  EXPECT_FALSE(ParseInt32("2147483648").ok());
  EXPECT_FALSE(ParseInt32("-2147483649").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").ValueOrDie(), -0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").ValueOrDie(), 1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 3.141592653589793, 1e-30, 1e30}) {
    std::string s = FormatDouble(v);
    EXPECT_DOUBLE_EQ(ParseDouble(s).ValueOrDie(), v) << s;
  }
}

}  // namespace
}  // namespace mlcs
