#include "storage/column.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace mlcs {
namespace {

TEST(ColumnTest, AppendAndRead) {
  Column col(TypeId::kInt32);
  col.AppendInt32(1);
  col.AppendInt32(2);
  col.AppendInt32(3);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetValue(1).ValueOrDie(), Value::Int32(2));
  EXPECT_FALSE(col.has_nulls());
}

TEST(ColumnTest, OutOfRangeGet) {
  Column col(TypeId::kInt32);
  auto r = col.GetValue(0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ColumnTest, NullsTracked) {
  Column col(TypeId::kDouble);
  col.AppendDouble(1.5);
  col.AppendNull();
  col.AppendDouble(2.5);
  EXPECT_TRUE(col.has_nulls());
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.GetValue(1).ValueOrDie().is_null());
}

TEST(ColumnTest, AppendValueCoercesLosslessly) {
  Column col(TypeId::kInt64);
  ASSERT_TRUE(col.AppendValue(Value::Int32(7)).ok());
  EXPECT_EQ(col.GetValue(0).ValueOrDie(), Value::Int64(7));
  // Incompatible append fails.
  Column blob_col(TypeId::kBlob);
  EXPECT_FALSE(blob_col.AppendValue(Value::Int32(1)).ok());
}

TEST(ColumnTest, ValidityStaysAlignedAfterMixedAppends) {
  Column col(TypeId::kInt32);
  col.AppendInt32(1);           // no validity vector yet
  col.AppendNull();             // forces validity for rows 0..1
  ASSERT_TRUE(col.AppendValue(Value::Int32(3)).ok());
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.GetValue(2).ValueOrDie(), Value::Int32(3));
}

TEST(ColumnTest, ConstantBroadcast) {
  ColumnPtr col = Column::Constant(Value::Double(2.5), 4);
  EXPECT_EQ(col->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(col->GetValue(i).ValueOrDie(), Value::Double(2.5));
  }
  ColumnPtr nulls = Column::Constant(Value::MakeNull(TypeId::kVarchar), 3);
  EXPECT_EQ(nulls->null_count(), 3u);
}

TEST(ColumnTest, FromTypedVectorsZeroCopySemantics) {
  ColumnPtr c1 = Column::FromInt32({1, 2, 3});
  EXPECT_EQ(c1->type(), TypeId::kInt32);
  EXPECT_EQ(c1->size(), 3u);
  ColumnPtr c2 = Column::FromDouble({0.5});
  EXPECT_EQ(c2->type(), TypeId::kDouble);
  ColumnPtr c3 = Column::FromStrings({"a", "b"}, TypeId::kBlob);
  EXPECT_EQ(c3->type(), TypeId::kBlob);
  ColumnPtr c4 = Column::FromBool({1, 0, 1});
  EXPECT_EQ(c4->type(), TypeId::kBool);
  ColumnPtr c5 = Column::FromInt64({10});
  EXPECT_EQ(c5->type(), TypeId::kInt64);
}

TEST(ColumnTest, CastIntToDouble) {
  ColumnPtr col = Column::FromInt32({1, 2, 3});
  ColumnPtr cast = col->CastTo(TypeId::kDouble).ValueOrDie();
  EXPECT_EQ(cast->type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(cast->f64_data()[2], 3.0);
}

TEST(ColumnTest, CastPreservesNulls) {
  Column col(TypeId::kInt32);
  col.AppendInt32(1);
  col.AppendNull();
  ColumnPtr cast = col.CastTo(TypeId::kInt64).ValueOrDie();
  EXPECT_TRUE(cast->IsNull(1));
  EXPECT_EQ(cast->null_count(), 1u);
}

TEST(ColumnTest, CastOverflowFails) {
  ColumnPtr col = Column::FromInt64({1LL << 40});
  EXPECT_FALSE(col->CastTo(TypeId::kInt32).ok());
}

TEST(ColumnTest, TakeGathers) {
  ColumnPtr col = Column::FromInt32({10, 20, 30, 40});
  ColumnPtr taken = col->Take({3, 1, 1});
  ASSERT_EQ(taken->size(), 3u);
  EXPECT_EQ(taken->i32_data()[0], 40);
  EXPECT_EQ(taken->i32_data()[1], 20);
  EXPECT_EQ(taken->i32_data()[2], 20);
}

TEST(ColumnTest, TakeCarriesNulls) {
  Column col(TypeId::kVarchar);
  col.AppendString("a");
  col.AppendNull();
  col.AppendString("c");
  ColumnPtr taken = col.Take({1, 2});
  EXPECT_TRUE(taken->IsNull(0));
  EXPECT_FALSE(taken->IsNull(1));
  EXPECT_EQ(taken->null_count(), 1u);
}

TEST(ColumnTest, SliceIsContiguousTake) {
  ColumnPtr col = Column::FromDouble({0.0, 1.0, 2.0, 3.0, 4.0});
  ColumnPtr slice = col->Slice(1, 3);
  ASSERT_EQ(slice->size(), 3u);
  EXPECT_DOUBLE_EQ(slice->f64_data()[0], 1.0);
  EXPECT_DOUBLE_EQ(slice->f64_data()[2], 3.0);
}

TEST(ColumnTest, AppendColumnConcatenatesWithNulls) {
  Column a(TypeId::kInt32);
  a.AppendInt32(1);
  Column b(TypeId::kInt32);
  b.AppendNull();
  b.AppendInt32(3);
  ASSERT_TRUE(a.AppendColumn(b).ok());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_FALSE(a.IsNull(0));
  EXPECT_TRUE(a.IsNull(1));
  EXPECT_EQ(a.GetValue(2).ValueOrDie(), Value::Int32(3));
  Column c(TypeId::kDouble);
  EXPECT_FALSE(a.AppendColumn(c).ok());
}

TEST(ColumnTest, ToDoubleVector) {
  Column col(TypeId::kInt32);
  col.AppendInt32(4);
  col.AppendNull();
  auto vec = col.ToDoubleVector().ValueOrDie();
  ASSERT_EQ(vec.size(), 2u);
  EXPECT_DOUBLE_EQ(vec[0], 4.0);
  EXPECT_TRUE(std::isnan(vec[1]));
  Column s(TypeId::kVarchar);
  EXPECT_FALSE(s.ToDoubleVector().ok());
}

TEST(ColumnTest, EqualsIgnoresNullPayloadGarbage) {
  Column a(TypeId::kInt32);
  a.AppendInt32(1);
  a.AppendNull();
  Column b(TypeId::kInt32);
  b.AppendInt32(1);
  b.AppendNull();
  EXPECT_TRUE(a.Equals(b));
  Column c(TypeId::kInt32);
  c.AppendInt32(1);
  c.AppendInt32(0);
  EXPECT_FALSE(a.Equals(c));
}

class ColumnRoundTripTest : public ::testing::TestWithParam<TypeId> {};

/// Property: random columns of every type survive serialize → deserialize.
TEST_P(ColumnRoundTripTest, SerializationRoundTrip) {
  TypeId type = GetParam();
  Rng rng(static_cast<uint64_t>(type) + 100);
  Column col(type);
  for (int i = 0; i < 500; ++i) {
    if (rng.NextDouble() < 0.1) {
      col.AppendNull();
      continue;
    }
    switch (type) {
      case TypeId::kBool:
        col.AppendBool(rng.NextBounded(2) == 1);
        break;
      case TypeId::kInt32:
        col.AppendInt32(static_cast<int32_t>(rng.NextU64()));
        break;
      case TypeId::kInt64:
        col.AppendInt64(static_cast<int64_t>(rng.NextU64()));
        break;
      case TypeId::kDouble:
        col.AppendDouble(rng.NextGaussian());
        break;
      case TypeId::kVarchar:
      case TypeId::kBlob: {
        std::string s;
        size_t len = rng.NextBounded(20);
        for (size_t j = 0; j < len; ++j) {
          s.push_back(static_cast<char>(rng.NextBounded(256)));
        }
        col.AppendString(std::move(s));
        break;
      }
    }
  }
  ByteWriter w;
  col.Serialize(&w);
  ByteReader r(w.data());
  ColumnPtr back = Column::Deserialize(&r).ValueOrDie();
  EXPECT_TRUE(col.Equals(*back));
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ColumnRoundTripTest,
                         ::testing::Values(TypeId::kBool, TypeId::kInt32,
                                           TypeId::kInt64, TypeId::kDouble,
                                           TypeId::kVarchar, TypeId::kBlob));

}  // namespace
}  // namespace mlcs
