#include <gtest/gtest.h>

#include "client/client.h"
#include "client/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mlcs::client {
namespace {

class ServerClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE TABLE t (x INTEGER, s VARCHAR);"
                        "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, "
                        "NULL);")
                    .ok());
    server_ = std::make_unique<TableServer>(&db_);
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  Database db_;
  std::unique_ptr<TableServer> server_;
};

TEST_F(ServerClientTest, QueryOverBothProtocols) {
  for (WireProtocol protocol :
       {WireProtocol::kPgText, WireProtocol::kMyBinary}) {
    TableClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto t = client.Query("SELECT * FROM t ORDER BY x", protocol)
                 .ValueOrDie();
    ASSERT_EQ(t->num_rows(), 3u);
    EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Varchar("a"));
    EXPECT_TRUE(t->GetValue(2, 1).ValueOrDie().is_null());
    EXPECT_GT(client.last_response_bytes(), 0u);
  }
}

TEST_F(ServerClientTest, MultipleQueriesOnOneConnection) {
  TableClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 5; ++i) {
    auto t = client.Query("SELECT COUNT(*) FROM t", WireProtocol::kMyBinary)
                 .ValueOrDie();
    EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(3));
  }
}

TEST_F(ServerClientTest, ServerErrorsPropagateToClient) {
  TableClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto r = client.Query("SELECT * FROM missing", WireProtocol::kPgText);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("missing"), std::string::npos);
  // The connection stays usable after an error.
  EXPECT_TRUE(client.Query("SELECT 1", WireProtocol::kPgText).ok());
}

TEST_F(ServerClientTest, ConcurrentClients) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &failures] {
      TableClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 10; ++i) {
        auto r = client.Query("SELECT SUM(x) FROM t",
                              WireProtocol::kMyBinary);
        if (!r.ok() ||
            !(r.ValueOrDie()->GetValue(0, 0).ValueOrDie() ==
              Value::Int64(6))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerClientTest, QueryWithoutConnectFails) {
  TableClient client;
  EXPECT_FALSE(client.Query("SELECT 1", WireProtocol::kPgText).ok());
}

TEST_F(ServerClientTest, ConnectToClosedPortFails) {
  TableClient client;
  // Port 1 is essentially never listening.
  EXPECT_FALSE(client.Connect("127.0.0.1", 1).ok());
}

TEST_F(ServerClientTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

/// The serving path replays identical SELECT text per request: after the
/// first, the server answers from the prepared-plan cache.
TEST_F(ServerClientTest, RepeatedQueriesHitPlanCache) {
  TableClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const std::string sql = "SELECT SUM(x) FROM t WHERE x > 1";
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("mlcs.plan_cache.hits");
  uint64_t hits_before = hits->Value();
  for (int i = 0; i < 10; ++i) {
    auto t = client.Query(sql, WireProtocol::kMyBinary).ValueOrDie();
    EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
  }
  EXPECT_GE(hits->Value(), hits_before + 9);
  EXPECT_GE(db_.plan_cache_size(), 1u);
}

/// The 0xF0/0xF1 observability verbs ride the same connection as queries:
/// a monitoring scrape needs no second endpoint.
TEST_F(ServerClientTest, MetricsAndTraceExportVerbs) {
  TableClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // Run a traced query so the flight recorder holds something.
  obs::FlightRecorder::Global().Clear();
  ASSERT_TRUE(client.Query("SELECT SUM(x) FROM t", WireProtocol::kPgText)
                  .ok());

  auto metrics = client.FetchMetricsText();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.ValueOrDie().find("# TYPE "), std::string::npos);
  EXPECT_NE(metrics.ValueOrDie().find("mlcs_plan_cache_hits"),
            std::string::npos);

  auto trace = client.FetchChromeTrace(0);  // 0 → every retained trace
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace.ValueOrDie().find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.ValueOrDie().find("query: SELECT SUM(x) FROM t"),
            std::string::npos);

  // The connection stays usable for SQL after export frames.
  auto t = client.Query("SELECT COUNT(*) FROM t", WireProtocol::kMyBinary)
               .ValueOrDie();
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(3));
  obs::FlightRecorder::Global().Clear();
}

}  // namespace
}  // namespace mlcs::client
