/// Tests for the extended SQL surface: DISTINCT, HAVING, IN, BETWEEN,
/// CASE WHEN, DELETE.
#include <gtest/gtest.h>

#include "sql/database.h"

namespace mlcs {
namespace {

class SqlExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run(R"(
      CREATE TABLE v (id INTEGER, precinct INTEGER, age INTEGER);
      INSERT INTO v VALUES
        (1, 10, 25), (2, 10, 35), (3, 20, 45), (4, 20, 55),
        (5, 30, 65), (6, 30, 65), (7, 30, 18);
    )")
                    .ok());
  }

  TablePtr Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.ValueOrDie() : nullptr;
  }

  Database db_;
};

TEST_F(SqlExtensionsTest, Distinct) {
  auto t = Q("SELECT DISTINCT precinct FROM v ORDER BY precinct");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->column(0)->i32_data(), (std::vector<int32_t>{10, 20, 30}));
  // Multi-column distinct.
  auto t2 = Q("SELECT DISTINCT precinct, age FROM v");
  EXPECT_EQ(t2->num_rows(), 6u);  // (30,65) collapses
}

TEST_F(SqlExtensionsTest, Having) {
  auto t = Q("SELECT precinct, COUNT(*) AS n FROM v GROUP BY precinct "
             "HAVING n >= 3 ORDER BY precinct");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(30));
  // HAVING without aggregates is rejected.
  EXPECT_FALSE(db_.Query("SELECT id FROM v HAVING id > 1").ok());
}

TEST_F(SqlExtensionsTest, HavingOnAggregateAlias) {
  auto t = Q("SELECT precinct, AVG(age) AS mean FROM v GROUP BY precinct "
             "HAVING mean > 40 ORDER BY precinct");
  EXPECT_EQ(t->num_rows(), 2u);  // 20 (50) and 30 (49.3)
}

TEST_F(SqlExtensionsTest, InList) {
  auto t = Q("SELECT id FROM v WHERE precinct IN (10, 30) ORDER BY id");
  EXPECT_EQ(t->num_rows(), 5u);
  auto none = Q("SELECT id FROM v WHERE precinct IN (99)");
  EXPECT_EQ(none->num_rows(), 0u);
}

TEST_F(SqlExtensionsTest, NotIn) {
  auto t = Q("SELECT id FROM v WHERE precinct NOT IN (10, 20)");
  EXPECT_EQ(t->num_rows(), 3u);
}

TEST_F(SqlExtensionsTest, InWithExpressions) {
  auto t = Q("SELECT id FROM v WHERE age IN (20 + 5, 40 + 5)");
  EXPECT_EQ(t->num_rows(), 2u);  // ages 25, 45
}

TEST_F(SqlExtensionsTest, Between) {
  auto t = Q("SELECT id FROM v WHERE age BETWEEN 35 AND 55 ORDER BY id");
  EXPECT_EQ(t->num_rows(), 3u);  // 35, 45, 55 inclusive
  auto n = Q("SELECT id FROM v WHERE age NOT BETWEEN 20 AND 60");
  EXPECT_EQ(n->num_rows(), 3u);  // 65, 65, 18
}

TEST_F(SqlExtensionsTest, CaseWhen) {
  auto t = Q("SELECT id, CASE WHEN age < 30 THEN 'young' "
             "WHEN age < 60 THEN 'mid' ELSE 'senior' END AS bucket "
             "FROM v ORDER BY id");
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Varchar("young"));
  EXPECT_EQ(t->GetValue(2, 1).ValueOrDie(), Value::Varchar("mid"));
  EXPECT_EQ(t->GetValue(4, 1).ValueOrDie(), Value::Varchar("senior"));
}

TEST_F(SqlExtensionsTest, CaseWithoutElseYieldsNull) {
  auto t = Q("SELECT CASE WHEN age > 60 THEN 1 END AS old FROM v "
             "ORDER BY id");
  EXPECT_TRUE(t->GetValue(0, 0).ValueOrDie().is_null());
  EXPECT_EQ(t->GetValue(4, 0).ValueOrDie(), Value::Int32(1));
}

TEST_F(SqlExtensionsTest, CaseNumericPromotion) {
  auto t = Q("SELECT CASE WHEN age > 40 THEN 1 ELSE 0.5 END AS w FROM v "
             "ORDER BY id");
  EXPECT_EQ(t->schema().field(0).type, TypeId::kDouble);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).ValueOrDie().double_value(), 0.5);
  EXPECT_DOUBLE_EQ(t->GetValue(2, 0).ValueOrDie().double_value(), 1.0);
}

TEST_F(SqlExtensionsTest, CaseInAggregate) {
  // Conditional aggregation — a common meta-analysis idiom.
  auto t = Q("SELECT SUM(CASE WHEN age >= 30 THEN 1 ELSE 0 END) AS adults "
             "FROM v");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(5));
}

TEST_F(SqlExtensionsTest, CaseMismatchedTypesRejected) {
  EXPECT_FALSE(
      db_.Query("SELECT CASE WHEN age > 1 THEN 'a' ELSE 2 END FROM v")
          .ok());
}

TEST_F(SqlExtensionsTest, DeleteWithWhere) {
  auto status = Q("DELETE FROM v WHERE age > 60");
  EXPECT_EQ(status->GetValue(0, 0).ValueOrDie(), Value::Varchar("DELETE 2"));
  EXPECT_EQ(Q("SELECT COUNT(*) FROM v")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(5));
}

TEST_F(SqlExtensionsTest, DeleteAll) {
  ASSERT_TRUE(db_.Query("DELETE FROM v").ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM v")->GetValue(0, 0).ValueOrDie(),
            Value::Int64(0));
  // Schema survives.
  EXPECT_TRUE(db_.Query("INSERT INTO v VALUES (1, 1, 1)").ok());
}

TEST_F(SqlExtensionsTest, DeleteMissingTableFails) {
  EXPECT_FALSE(db_.Query("DELETE FROM ghost").ok());
}

TEST_F(SqlExtensionsTest, UpdateWithWhere) {
  auto status = Q("UPDATE v SET age = age + 1 WHERE precinct = 10");
  EXPECT_EQ(status->GetValue(0, 0).ValueOrDie(), Value::Varchar("UPDATE 2"));
  auto t = Q("SELECT age FROM v WHERE precinct = 10 ORDER BY id");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(26));
  EXPECT_EQ(t->GetValue(1, 0).ValueOrDie(), Value::Int32(36));
  // Untouched rows keep their values.
  EXPECT_EQ(Q("SELECT age FROM v WHERE id = 3")
                ->GetValue(0, 0)
                .ValueOrDie(),
            Value::Int32(45));
}

TEST_F(SqlExtensionsTest, UpdateAllRowsMultipleColumns) {
  ASSERT_TRUE(db_.Query("UPDATE v SET age = 0, precinct = 99").ok());
  EXPECT_EQ(Q("SELECT SUM(age), MIN(precinct) FROM v")
                ->GetValue(0, 0)
                .ValueOrDie(),
            Value::Int64(0));
}

TEST_F(SqlExtensionsTest, UpdateRhsSeesPreUpdateValues) {
  // Swap-style update: both right-hand sides read the old values.
  ASSERT_TRUE(db_.Run("CREATE TABLE p (a INTEGER, b INTEGER);"
                      "INSERT INTO p VALUES (1, 2);")
                  .ok());
  ASSERT_TRUE(db_.Query("UPDATE p SET a = b, b = a").ok());
  auto t = Q("SELECT a, b FROM p");
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int32(2));
  EXPECT_EQ(t->GetValue(0, 1).ValueOrDie(), Value::Int32(1));
}

TEST_F(SqlExtensionsTest, UpdateValidation) {
  EXPECT_FALSE(db_.Query("UPDATE v SET ghost = 1").ok());
  EXPECT_FALSE(db_.Query("UPDATE ghost SET x = 1").ok());
  EXPECT_FALSE(db_.Query("UPDATE v SET age = 1, age = 2").ok());
  EXPECT_FALSE(db_.Query("UPDATE v SET age = 'not a number'").ok());
}

TEST_F(SqlExtensionsTest, UpdateDoesNotMutatePriorResults) {
  auto before = Q("SELECT age FROM v WHERE id = 1");
  ASSERT_TRUE(db_.Query("UPDATE v SET age = 99").ok());
  // The previously returned result set still shows the old value
  // (copy-on-write).
  EXPECT_EQ(before->GetValue(0, 0).ValueOrDie(), Value::Int32(25));
}

TEST_F(SqlExtensionsTest, DistinctWithAggregatesComposes) {
  auto t = Q("SELECT DISTINCT COUNT(*) AS n FROM v GROUP BY precinct "
             "ORDER BY n");
  // Counts per precinct are 2, 2, 3 → distinct {2, 3}.
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).ValueOrDie(), Value::Int64(2));
  EXPECT_EQ(t->GetValue(1, 0).ValueOrDie(), Value::Int64(3));
}

}  // namespace
}  // namespace mlcs
