#include "io/npy.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>

#include "common/random.h"

namespace mlcs::io {
namespace {

std::string TempDirFor(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  mkdir(dir.c_str(), 0755);
  return dir;
}

class NpyTypeTest : public ::testing::TestWithParam<TypeId> {};

TEST_P(NpyTypeTest, RoundTrip) {
  TypeId type = GetParam();
  Rng rng(static_cast<uint64_t>(type) + 7);
  Column col(type);
  for (int i = 0; i < 1000; ++i) {
    switch (type) {
      case TypeId::kBool:
        col.AppendBool(rng.NextBounded(2) == 1);
        break;
      case TypeId::kInt32:
        col.AppendInt32(static_cast<int32_t>(rng.NextU64()));
        break;
      case TypeId::kInt64:
        col.AppendInt64(static_cast<int64_t>(rng.NextU64()));
        break;
      case TypeId::kDouble:
        col.AppendDouble(rng.NextGaussian());
        break;
      default:
        break;
    }
  }
  std::string path = testing::TempDir() + "/col.npy";
  ASSERT_TRUE(WriteNpy(col, path).ok());
  auto back = ReadNpy(path).ValueOrDie();
  EXPECT_TRUE(col.Equals(*back));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(NumericTypes, NpyTypeTest,
                         ::testing::Values(TypeId::kBool, TypeId::kInt32,
                                           TypeId::kInt64, TypeId::kDouble));

TEST(NpyTest, HeaderIsNumpyV1Compatible) {
  Column col(TypeId::kInt32);
  col.AppendInt32(42);
  std::string path = testing::TempDir() + "/hdr.npy";
  ASSERT_TRUE(WriteNpy(col, path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[8];
  ASSERT_EQ(fread(magic, 1, 8, f), 8u);
  EXPECT_EQ(memcmp(magic, "\x93NUMPY\x01\x00", 8), 0);
  uint16_t hlen;
  ASSERT_EQ(fread(&hlen, 2, 1, f), 1u);
  // Total header (10 + hlen) must be 64-aligned, per the npy spec.
  EXPECT_EQ((10 + hlen) % 64, 0);
  std::string header(hlen, '\0');
  ASSERT_EQ(fread(header.data(), 1, hlen, f), hlen);
  EXPECT_NE(header.find("'descr': '<i4'"), std::string::npos);
  EXPECT_NE(header.find("'shape': (1,)"), std::string::npos);
  EXPECT_EQ(header.back(), '\n');
  fclose(f);
  std::remove(path.c_str());
}

TEST(NpyTest, VarcharAndNullsRejected) {
  Column s(TypeId::kVarchar);
  s.AppendString("x");
  EXPECT_FALSE(WriteNpy(s, testing::TempDir() + "/s.npy").ok());
  Column n(TypeId::kInt32);
  n.AppendNull();
  EXPECT_FALSE(WriteNpy(n, testing::TempDir() + "/n.npy").ok());
}

TEST(NpyTest, GarbageRejected) {
  std::string path = testing::TempDir() + "/garbage.npy";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not numpy", f);
  fclose(f);
  EXPECT_FALSE(ReadNpy(path).ok());
  std::remove(path.c_str());
}

TEST(NpyTest, TableDirRoundTrip) {
  std::string dir = TempDirFor("npy_table");
  Schema s;
  s.AddField("a", TypeId::kInt32);
  s.AddField("b", TypeId::kDouble);
  auto t = Table::Make(std::move(s));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t->AppendRow({Value::Int32(i), Value::Double(i * 0.5)}).ok());
  }
  ASSERT_TRUE(SaveTableAsNpyDir(*t, dir).ok());
  auto back = LoadTableFromNpyDir(dir).ValueOrDie();
  EXPECT_TRUE(t->Equals(*back));
}

TEST(NpyTest, MissingManifestReported) {
  EXPECT_FALSE(LoadTableFromNpyDir("/no/such/dir").ok());
}

}  // namespace
}  // namespace mlcs::io
