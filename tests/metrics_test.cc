#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlcs::ml {
namespace {

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 0, 1}).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 0}, {1, 1, 1, 1}).ValueOrDie(), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy({1}, {0}).ValueOrDie(), 0.0);
  EXPECT_FALSE(Accuracy({1}, {0, 1}).ok());
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

TEST(MetricsTest, ConfusionMatrixCounts) {
  auto cm = ComputeConfusionMatrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0})
                .ValueOrDie();
  EXPECT_EQ(cm.classes, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(cm.At(0, 0), 1);
  EXPECT_EQ(cm.At(0, 1), 1);
  EXPECT_EQ(cm.At(1, 0), 1);
  EXPECT_EQ(cm.At(1, 1), 2);
  EXPECT_EQ(cm.At(9, 9), 0);  // unknown class
}

TEST(MetricsTest, ConfusionMatrixIncludesPredOnlyClasses) {
  auto cm = ComputeConfusionMatrix({0, 0}, {0, 5}).ValueOrDie();
  EXPECT_EQ(cm.classes, (std::vector<int32_t>{0, 5}));
  EXPECT_EQ(cm.At(0, 5), 1);
}

TEST(MetricsTest, ClassificationReportPerfect) {
  auto report =
      ComputeClassificationReport({0, 1, 0, 1}, {0, 1, 0, 1}).ValueOrDie();
  EXPECT_DOUBLE_EQ(report.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(report.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(report.macro_recall, 1.0);
  ASSERT_EQ(report.per_class.size(), 2u);
  EXPECT_EQ(report.per_class[0].support, 2);
}

TEST(MetricsTest, ClassificationReportKnownValues) {
  // true: 0,0,0,1  pred: 0,0,1,1
  auto report =
      ComputeClassificationReport({0, 0, 0, 1}, {0, 0, 1, 1}).ValueOrDie();
  const auto& c0 = report.per_class[0];
  EXPECT_DOUBLE_EQ(c0.precision, 1.0);          // 2/(2+0)
  EXPECT_DOUBLE_EQ(c0.recall, 2.0 / 3.0);       // 2/(2+1)
  const auto& c1 = report.per_class[1];
  EXPECT_DOUBLE_EQ(c1.precision, 0.5);          // 1/(1+1)
  EXPECT_DOUBLE_EQ(c1.recall, 1.0);             // 1/(1+0)
}

TEST(MetricsTest, LogLoss) {
  // Perfectly confident correct predictions → ~0.
  EXPECT_NEAR(LogLoss({1, 0}, {1.0, 1.0}).ValueOrDie(), 0.0, 1e-12);
  // p=0.5 everywhere → ln 2.
  EXPECT_NEAR(LogLoss({1, 0}, {0.5, 0.5}).ValueOrDie(), std::log(2.0),
              1e-12);
  // Zero probability is clamped, not infinite.
  EXPECT_TRUE(std::isfinite(LogLoss({1}, {0.0}).ValueOrDie()));
  EXPECT_FALSE(LogLoss({1}, {}).ok());
}

TEST(MetricsTest, ToStringRenders) {
  auto cm = ComputeConfusionMatrix({0, 1}, {0, 1}).ValueOrDie();
  EXPECT_NE(cm.ToString().find("true\\pred"), std::string::npos);
  auto report = ComputeClassificationReport({0, 1}, {0, 1}).ValueOrDie();
  EXPECT_NE(report.ToString().find("macro"), std::string::npos);
}

}  // namespace
}  // namespace mlcs::ml
