#include "ml/pickle.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace mlcs::ml {
namespace {

void MakeBlobs(size_t n, Matrix* x, Labels* y) {
  Rng rng(17);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
    x->Set(i, 0, cls * 4.0 + rng.NextGaussian());
    x->Set(i, 1, cls * 4.0 + rng.NextGaussian());
    (*y)[i] = cls;
  }
}

class PickleRoundTripTest : public ::testing::TestWithParam<ModelType> {};

/// Property: dumps → loads preserves type, classes and all predictions,
/// for every model family — the paper's model-BLOB storage invariant.
TEST_P(PickleRoundTripTest, DumpsLoadsPreservesPredictions) {
  Matrix x;
  Labels y;
  MakeBlobs(300, &x, &y);
  ModelPtr model;
  switch (GetParam()) {
    case ModelType::kDecisionTree:
      model = std::make_shared<DecisionTree>();
      break;
    case ModelType::kRandomForest: {
      RandomForestOptions opt;
      opt.n_estimators = 4;
      model = std::make_shared<RandomForest>(opt);
      break;
    }
    case ModelType::kLogisticRegression:
      model = std::make_shared<LogisticRegression>();
      break;
    case ModelType::kNaiveBayes:
      model = std::make_shared<NaiveBayes>();
      break;
    case ModelType::kKnn:
      model = std::make_shared<Knn>();
      break;
  }
  ASSERT_TRUE(model->Fit(x, y).ok());

  std::string blob = pickle::Dumps(*model);
  EXPECT_GT(blob.size(), 8u);
  ModelPtr back = pickle::Loads(blob).ValueOrDie();
  EXPECT_EQ(back->type(), model->type());
  EXPECT_EQ(back->classes(), model->classes());
  EXPECT_EQ(back->Predict(x).ValueOrDie(), model->Predict(x).ValueOrDie());
  auto pa = model->PredictConfidence(x).ValueOrDie();
  auto pb = back->PredictConfidence(x).ValueOrDie();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllModels, PickleRoundTripTest,
                         ::testing::Values(ModelType::kDecisionTree,
                                           ModelType::kRandomForest,
                                           ModelType::kLogisticRegression,
                                           ModelType::kNaiveBayes,
                                           ModelType::kKnn));

TEST(PickleTest, RejectsGarbage) {
  EXPECT_FALSE(pickle::Loads("not a model").ok());
  EXPECT_FALSE(pickle::Loads("").ok());
}

TEST(PickleTest, RejectsUnknownTypeTag) {
  ByteWriter w;
  w.WriteU32(0x4D4C504B);
  w.WriteU8(0x7E);
  auto r = pickle::Loads(std::string(
      reinterpret_cast<const char*>(w.data().data()), w.size()));
  EXPECT_FALSE(r.ok());
}

TEST(PickleTest, RejectsTruncatedPayload) {
  Matrix x;
  Labels y;
  MakeBlobs(100, &x, &y);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  std::string blob = pickle::Dumps(tree);
  std::string truncated = blob.substr(0, blob.size() / 2);
  EXPECT_FALSE(pickle::Loads(truncated).ok());
}

TEST(PickleTest, DoubleRoundTripIsStable) {
  Matrix x;
  Labels y;
  MakeBlobs(100, &x, &y);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(x, y).ok());
  std::string once = pickle::Dumps(nb);
  ModelPtr back = pickle::Loads(once).ValueOrDie();
  std::string twice = pickle::Dumps(*back);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace mlcs::ml
