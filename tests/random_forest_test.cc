#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"
#include "ml/split.h"

namespace mlcs::ml {
namespace {

/// Noisy XOR-ish problem a single stump cannot solve but a forest can.
void MakeXor(size_t n, Matrix* x, Labels* y, uint64_t seed = 3) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextDouble() * 2 - 1;
    double b = rng.NextDouble() * 2 - 1;
    x->Set(i, 0, a);
    x->Set(i, 1, b);
    (*y)[i] = (a * b > 0) ? 1 : 0;
  }
}

TEST(RandomForestTest, LearnsXor) {
  Matrix x;
  Labels y;
  MakeXor(1000, &x, &y);
  RandomForestOptions opt;
  opt.n_estimators = 12;
  RandomForest forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_EQ(forest.num_trees(), 12u);
  double acc = Accuracy(y, forest.Predict(x).ValueOrDie()).ValueOrDie();
  EXPECT_GT(acc, 0.9);
}

TEST(RandomForestTest, GeneralizesToHeldOutData) {
  Matrix x;
  Labels y;
  MakeXor(2000, &x, &y, 11);
  auto split = TrainTestSplit(2000, 0.3, 5).ValueOrDie();
  Matrix xtr = x.SelectRows(split.train);
  Matrix xte = x.SelectRows(split.test);
  Labels ytr, yte;
  for (auto i : split.train) ytr.push_back(y[i]);
  for (auto i : split.test) yte.push_back(y[i]);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(xtr, ytr).ok());
  double acc = Accuracy(yte, forest.Predict(xte).ValueOrDie()).ValueOrDie();
  EXPECT_GT(acc, 0.85);
}

TEST(RandomForestTest, DeterministicAcrossParallelAndSerialFit) {
  Matrix x;
  Labels y;
  MakeXor(500, &x, &y, 7);
  RandomForestOptions serial;
  serial.parallel_fit = false;
  serial.n_estimators = 6;
  RandomForestOptions parallel = serial;
  parallel.parallel_fit = true;
  RandomForest a(serial), b(parallel);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_EQ(a.Predict(x).ValueOrDie(), b.Predict(x).ValueOrDie());
  auto pa = a.PredictProba(x, 1).ValueOrDie();
  auto pb = b.PredictProba(x, 1).ValueOrDie();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(RandomForestTest, ProbaSumsToOne) {
  Matrix x;
  Labels y;
  MakeXor(300, &x, &y);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  auto p0 = forest.PredictProba(x, 0).ValueOrDie();
  auto p1 = forest.PredictProba(x, 1).ValueOrDie();
  auto conf = forest.PredictConfidence(x).ValueOrDie();
  for (size_t i = 0; i < x.rows(); ++i) {
    // Tree leaf distributions are floats; allow float accumulation error.
    EXPECT_NEAR(p0[i] + p1[i], 1.0, 1e-6);
    EXPECT_NEAR(conf[i], std::max(p0[i], p1[i]), 1e-6);
  }
}

TEST(RandomForestTest, MulticlassSupport) {
  Rng rng(8);
  Matrix x(600, 2);
  Labels y(600);
  for (size_t i = 0; i < 600; ++i) {
    int32_t cls = static_cast<int32_t>(rng.NextBounded(3));
    x.Set(i, 0, cls * 4.0 + rng.NextGaussian());
    x.Set(i, 1, cls * 4.0 + rng.NextGaussian());
    y[i] = cls * 10;  // labels 0, 10, 20
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_EQ(forest.classes(), (std::vector<int32_t>{0, 10, 20}));
  EXPECT_GT(Accuracy(y, forest.Predict(x).ValueOrDie()).ValueOrDie(), 0.9);
}

TEST(RandomForestTest, InvalidOptionsRejected) {
  Matrix x(3, 1);
  Labels y = {0, 1, 0};
  RandomForestOptions opt;
  opt.n_estimators = 0;
  RandomForest forest(opt);
  EXPECT_FALSE(forest.Fit(x, y).ok());
}

TEST(RandomForestTest, SerializationRoundTripPreservesEverything) {
  Matrix x;
  Labels y;
  MakeXor(400, &x, &y, 13);
  RandomForestOptions opt;
  opt.n_estimators = 5;
  RandomForest forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  ByteWriter w;
  forest.Serialize(&w);
  ByteReader r(w.data());
  auto back = RandomForest::DeserializeBody(&r).ValueOrDie();
  EXPECT_EQ(back->num_trees(), 5u);
  EXPECT_EQ(back->classes(), forest.classes());
  EXPECT_EQ(forest.Predict(x).ValueOrDie(), back->Predict(x).ValueOrDie());
  auto pa = forest.PredictConfidence(x).ValueOrDie();
  auto pb = back->PredictConfidence(x).ValueOrDie();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

/// n_estimators sweep: more trees should not reduce training accuracy
/// dramatically, and all sweeps stay above a floor.
class ForestSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ForestSweepTest, AccuracyFloorAcrossForestSizes) {
  Matrix x;
  Labels y;
  MakeXor(600, &x, &y, 21);
  RandomForestOptions opt;
  opt.n_estimators = GetParam();
  RandomForest forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, forest.Predict(x).ValueOrDie()).ValueOrDie(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Estimators, ForestSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace mlcs::ml
