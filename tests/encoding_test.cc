/// Compressed execution (DESIGN.md §13): dictionary/RLE round-trips,
/// auto-detect policy edges (all-NULL, single-value, >64k-distinct spill),
/// encoded serialization + block-file persistence, decoded-value zone maps
/// over unsorted dictionaries, operate-on-code kernel parity, and the
/// streaming-scan pinned-bytes high-water contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bufpool/buffer_pool.h"
#include "bufpool/stored_table.h"
#include "bufpool/zone_map.h"
#include "common/byte_buffer.h"
#include "common/file_util.h"
#include "exec/filter.h"
#include "exec/kernels.h"
#include "obs/metrics.h"
#include "storage/encoding.h"
#include "storage/table.h"

namespace mlcs {
namespace {

std::string TempDirFor(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  MLCS_CHECK_OK(MakeDirs(dir));
  return dir;
}

/// Low-cardinality int32 column (voter-shaped: `rows` rows, 8 distinct),
/// with a null every 13th row.
ColumnPtr MakeCategorical(size_t rows) {
  auto col = Column::Make(TypeId::kInt32);
  for (size_t i = 0; i < rows; ++i) {
    if (i % 13 == 4) {
      col->AppendNull();
    } else {
      col->AppendInt32(static_cast<int32_t>((i * 7) % 8));
    }
  }
  return col;
}

/// Sorted, run-heavy int64 column (precinct-shaped: runs of 32).
ColumnPtr MakeRunHeavy(size_t rows) {
  auto col = Column::Make(TypeId::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    col->AppendInt64(static_cast<int64_t>(i / 32));
  }
  return col;
}

TEST(EncodingTest, DictionaryRoundTrip) {
  ColumnPtr plain = MakeCategorical(512);
  ColumnPtr encoded = EncodeColumn(plain, EncodingPolicy());
  ASSERT_EQ(encoded->encoding(), ColumnEncoding::kDict);
  EXPECT_TRUE(encoded->dict_sorted());
  EXPECT_EQ(encoded->size(), plain->size());
  EXPECT_TRUE(encoded->Equals(*plain));
  ColumnPtr decoded = encoded->Decode();
  EXPECT_EQ(decoded->encoding(), ColumnEncoding::kPlain);
  EXPECT_TRUE(decoded->Equals(*plain));
  // Codes beat the plain payload on bytes — that is the point.
  EXPECT_LT(encoded->ByteSize(), plain->ByteSize());
}

TEST(EncodingTest, RleRoundTrip) {
  ColumnPtr plain = MakeRunHeavy(512);
  ColumnPtr encoded = EncodeColumn(plain, EncodingPolicy());
  ASSERT_EQ(encoded->encoding(), ColumnEncoding::kRle);
  EXPECT_EQ(encoded->run_lengths().size(), 512u / 32u);
  EXPECT_TRUE(encoded->Equals(*plain));
  EXPECT_TRUE(encoded->Decode()->Equals(*plain));
  EXPECT_LT(encoded->ByteSize(), plain->ByteSize());
}

TEST(EncodingTest, PolicyLeavesSmallAndHighCardinalityAlone) {
  // Below min_rows: untouched even though perfectly encodable.
  auto tiny = Column::Make(TypeId::kInt32);
  for (int i = 0; i < 8; ++i) tiny->AppendInt32(1);
  EXPECT_EQ(EncodeColumn(tiny, EncodingPolicy()).get(), tiny.get());
  // All-distinct: no dictionary, no runs.
  auto distinct = Column::Make(TypeId::kInt32);
  for (int i = 0; i < 512; ++i) distinct->AppendInt32(i);
  EXPECT_EQ(EncodeColumn(distinct, EncodingPolicy()).get(), distinct.get());
  // DOUBLE never encodes.
  auto dbl = Column::Make(TypeId::kDouble);
  for (int i = 0; i < 512; ++i) dbl->AppendDouble(1.0);
  EXPECT_FALSE(EncodeColumn(dbl, EncodingPolicy())->is_encoded());
}

TEST(EncodingTest, Over64kDistinctSpillsToPlain) {
  // One more distinct value than the 2^16 dictionary cap: must stay plain
  // even though every value repeats (fraction threshold satisfied).
  constexpr size_t kDistinct = (1u << 16) + 1;
  auto col = Column::Make(TypeId::kInt32);
  for (size_t rep = 0; rep < 4; ++rep) {
    for (size_t i = 0; i < kDistinct; ++i) {
      col->AppendInt32(static_cast<int32_t>((i * 2654435761u) % kDistinct));
    }
  }
  ColumnPtr out = EncodeColumn(col, EncodingPolicy());
  EXPECT_FALSE(out->is_encoded());
}

TEST(EncodingTest, AllNullAndSingleValueColumns) {
  auto all_null = Column::Make(TypeId::kVarchar);
  for (int i = 0; i < 256; ++i) all_null->AppendNull();
  ColumnPtr enc_null = EncodeColumn(all_null, EncodingPolicy());
  EXPECT_TRUE(enc_null->Equals(*all_null));
  EXPECT_TRUE(enc_null->Decode()->Equals(*all_null));
  EXPECT_EQ(enc_null->Decode()->null_count(), 256u);

  auto single = Column::Make(TypeId::kVarchar);
  for (int i = 0; i < 256; ++i) single->AppendString("only");
  ColumnPtr enc_single = EncodeColumn(single, EncodingPolicy());
  ASSERT_TRUE(enc_single->is_encoded());
  EXPECT_TRUE(enc_single->Equals(*single));
  EXPECT_TRUE(enc_single->Decode()->Equals(*single));
}

TEST(EncodingTest, MakeRleRejectsBadRuns) {
  // Zero-length run.
  auto rv = Column::Make(TypeId::kInt32);
  rv->AppendInt32(1);
  rv->AppendInt32(2);
  EXPECT_FALSE(Column::MakeRle(TypeId::kInt32, rv, {4, 0}).ok());
  // Null run values: per-row validity is the only null authority.
  auto with_null = Column::Make(TypeId::kInt32);
  with_null->AppendInt32(1);
  with_null->AppendNull();
  EXPECT_FALSE(Column::MakeRle(TypeId::kInt32, with_null, {2, 2}).ok());
}

TEST(EncodingTest, SerializeRoundTripsBothEncodings) {
  std::vector<ColumnPtr> inputs = {
      EncodeColumn(MakeCategorical(300), EncodingPolicy()),
      EncodeColumn(MakeRunHeavy(300), EncodingPolicy()),
  };
  ASSERT_EQ(inputs[0]->encoding(), ColumnEncoding::kDict);
  ASSERT_EQ(inputs[1]->encoding(), ColumnEncoding::kRle);
  for (const ColumnPtr& col : inputs) {
    ByteWriter writer;
    col->Serialize(&writer);
    ByteReader reader(writer.data());
    auto back = Column::Deserialize(&reader);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.ValueOrDie()->encoding(), col->encoding());
    EXPECT_TRUE(back.ValueOrDie()->Equals(*col));
  }
}

TEST(EncodingTest, AppendColumnMergesCompatibleEncodings) {
  ColumnPtr a = EncodeColumn(MakeCategorical(256), EncodingPolicy());
  ASSERT_EQ(a->encoding(), ColumnEncoding::kDict);
  // Accumulator pattern used by block scans: empty plain adopts, equal
  // dictionaries merge codes.
  auto acc = Column::Make(TypeId::kInt32);
  MLCS_CHECK_OK(acc->AppendColumn(*a));
  MLCS_CHECK_OK(acc->AppendColumn(*a));
  EXPECT_EQ(acc->encoding(), ColumnEncoding::kDict);
  EXPECT_EQ(acc->size(), 512u);
  ColumnPtr twice = a->Decode();
  MLCS_CHECK_OK(twice->AppendColumn(*a->Decode()));
  EXPECT_TRUE(acc->Equals(*twice));

  ColumnPtr r = EncodeColumn(MakeRunHeavy(256), EncodingPolicy());
  auto racc = Column::Make(TypeId::kInt64);
  MLCS_CHECK_OK(racc->AppendColumn(*r));
  MLCS_CHECK_OK(racc->AppendColumn(*r));
  EXPECT_EQ(racc->encoding(), ColumnEncoding::kRle);
  EXPECT_EQ(racc->size(), 512u);
  // The adopt deep-copies RLE state: growing the accumulator must not have
  // grown the source.
  EXPECT_EQ(r->run_lengths().size(), 8u);
}

TEST(EncodingTest, TakeAndSlicePreserveLogicalContents) {
  ColumnPtr dict = EncodeColumn(MakeCategorical(256), EncodingPolicy());
  ColumnPtr rle = EncodeColumn(MakeRunHeavy(256), EncodingPolicy());
  std::vector<uint32_t> idx = {0, 255, 17, 17, 100};
  for (const ColumnPtr& col : {dict, rle}) {
    ColumnPtr taken = col->Take(idx);
    ColumnPtr expect = col->Decode()->Take(idx);
    EXPECT_TRUE(taken->Equals(*expect));
    ColumnPtr sliced = col->Slice(30, 70);
    EXPECT_TRUE(sliced->Equals(*col->Decode()->Slice(30, 70)));
  }
}

/// -- Operate-on-code kernel parity ----------------------------------------

TEST(EncodingTest, KernelsMatchPlainOnEncodedInputs) {
  ColumnPtr dict = EncodeColumn(MakeCategorical(400), EncodingPolicy());
  ColumnPtr rle = EncodeColumn(MakeRunHeavy(400), EncodingPolicy());
  ASSERT_TRUE(dict->is_encoded());
  ASSERT_TRUE(rle->is_encoded());
  for (const ColumnPtr& col : {dict, rle}) {
    ColumnPtr plain = col->Decode();
    ColumnPtr lit = Column::Constant(Value::Int64(3), 1);
    for (exec::BinOpKind op :
         {exec::BinOpKind::kEq, exec::BinOpKind::kNe, exec::BinOpKind::kLt,
          exec::BinOpKind::kAdd, exec::BinOpKind::kMul}) {
      auto enc = exec::BinaryKernel(op, *col, *lit);
      auto ref = exec::BinaryKernel(op, *plain, *lit);
      ASSERT_TRUE(enc.ok() && ref.ok());
      EXPECT_TRUE(enc.ValueOrDie()->Equals(*ref.ValueOrDie()));
    }
    // Hashes drive group-by/join bucketing: non-null rows must hash the
    // same whichever representation they arrive in.
    std::vector<uint64_t> h_enc(col->size(), exec::kHashSeed);
    std::vector<uint64_t> h_ref(col->size(), exec::kHashSeed);
    exec::HashCombineColumn(*col, &h_enc);
    exec::HashCombineColumn(*plain, &h_ref);
    for (size_t i = 0; i < col->size(); ++i) {
      if (!plain->IsNull(i)) {
        EXPECT_EQ(h_enc[i], h_ref[i]) << i;
      }
    }
  }
}

TEST(EncodingTest, RleFilterSelectsPerRun) {
  ColumnPtr rle = EncodeColumn(MakeRunHeavy(400), EncodingPolicy());
  ColumnPtr lit = Column::Constant(Value::Int64(5), 1);
  auto mask = exec::BinaryKernel(exec::BinOpKind::kEq, *rle, *lit);
  ASSERT_TRUE(mask.ok());
  uint64_t before = EncodeCodePathHits();
  auto rows = exec::SelectionIndices(*mask.ValueOrDie(), 400);
  ASSERT_TRUE(rows.ok());
  const std::vector<uint32_t>& idx = rows.ValueOrDie();
  ASSERT_EQ(idx.size(), 32u);
  for (size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(idx[i], 5u * 32u + i);
  }
  // The mask itself came back encoded (gather over per-run results keeps
  // run structure only when the expansion does; either way selection must
  // not have decoded row by row). Just assert the fast-path counter moved
  // somewhere in this pipeline.
  EXPECT_GE(EncodeCodePathHits(), before);
}

/// -- Persistence + zone maps ----------------------------------------------

TEST(EncodingTest, BlockFilesPersistEncodedAndScanBothModes) {
  Schema schema;
  schema.AddField("cat", TypeId::kInt32);
  schema.AddField("run", TypeId::kInt64);
  auto table = Table::Make(schema);
  for (size_t i = 0; i < 640; ++i) {
    table->column(0)->AppendInt32(static_cast<int32_t>(i % 8));
    table->column(1)->AppendInt64(static_cast<int64_t>(i / 64));
  }
  TablePtr encoded = EncodeTable(table);
  ASSERT_TRUE(encoded->column(0)->is_encoded());
  std::string dir = TempDirFor("enc_blocks");
  MLCS_CHECK_OK(bufpool::StoredTable::Write(*encoded, dir, 128));

  bufpool::BufferPool pool(1 << 20);
  auto stored = bufpool::StoredTable::Open(dir, &pool).ValueOrDie();
  auto scanned = stored->Scan(std::nullopt, {}).ValueOrDie();
  EXPECT_TRUE(scanned->column(0)->is_encoded());
  EXPECT_TRUE(scanned->column(1)->is_encoded());
  EXPECT_TRUE(scanned->Equals(*table));

  // Encoding disabled: the same blocks execute plain end-to-end.
  SetEncodingEnabled(false);
  pool.Clear();
  auto plain_scan = stored->Scan(std::nullopt, {}).ValueOrDie();
  SetEncodingEnabled(true);
  EXPECT_FALSE(plain_scan->column(0)->is_encoded());
  EXPECT_FALSE(plain_scan->column(1)->is_encoded());
  EXPECT_TRUE(plain_scan->Equals(*table));

  // Materialize is the promotion path: always plain.
  auto promoted = stored->Materialize().ValueOrDie();
  EXPECT_FALSE(promoted->column(0)->is_encoded());
  EXPECT_TRUE(promoted->Equals(*table));
}

TEST(EncodingTest, ZoneMapsUseDecodedValuesForUnsortedDictionaries) {
  // Dictionary deliberately NOT in value order: code order ≠ value order,
  // so a zone over codes would claim min="zebra", max="mango" and admit or
  // refute the wrong blocks.
  auto dict = Column::Make(TypeId::kVarchar);
  dict->AppendString("zebra");
  dict->AppendString("apple");
  dict->AppendString("mango");
  std::vector<uint32_t> codes;
  for (int i = 0; i < 96; ++i) codes.push_back(static_cast<uint32_t>(i % 3));
  ColumnPtr col =
      Column::MakeDictionary(TypeId::kVarchar, codes, dict).ValueOrDie();
  ASSERT_FALSE(col->dict_sorted());

  bufpool::ZoneMap zone = bufpool::ComputeZoneMap(*col);
  ASSERT_TRUE(zone.has_minmax);
  EXPECT_EQ(zone.min, Value::Varchar("apple"));
  EXPECT_EQ(zone.max, Value::Varchar("zebra"));

  // End-to-end: an equality probe inside the decoded range must not skip
  // the block; one outside it must.
  Schema schema;
  schema.AddField("fruit", TypeId::kVarchar);
  auto table = std::make_shared<Table>(schema, std::vector<ColumnPtr>{col});
  std::string dir = TempDirFor("enc_zone");
  MLCS_CHECK_OK(bufpool::StoredTable::Write(*table, dir, 96));
  auto stored = bufpool::StoredTable::Open(dir).ValueOrDie();
  bufpool::ZonePredicate hit;
  hit.column = "fruit";
  hit.op = bufpool::ZoneOp::kEq;
  hit.literal = Value::Varchar("apple");
  bufpool::StoredTable::ScanCounters counters;
  auto r = stored->Scan(std::nullopt, {hit}, &counters);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(counters.blocks_skipped, 0u);
  EXPECT_EQ(r.ValueOrDie()->num_rows(), 96u);
  bufpool::ZonePredicate miss = hit;
  miss.literal = Value::Varchar("zzz");
  counters = {};
  r = stored->Scan(std::nullopt, {miss}, &counters);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(counters.blocks_skipped, 1u);
  EXPECT_EQ(r.ValueOrDie()->num_rows(), 0u);
}

TEST(EncodingTest, StreamingScanBoundsPinnedBytes) {
  // A 16-block scan must never hold more than one block's chunks pinned:
  // the high-water mark stays near one chunk, far under the total bytes
  // materialized, and everything is unpinned at the end.
  auto table = Table::Make([] {
    Schema s;
    s.AddField("x", TypeId::kInt64);
    s.AddField("y", TypeId::kInt64);
    return s;
  }());
  for (int64_t i = 0; i < 4096; ++i) {
    table->column(0)->AppendInt64(i);  // all-distinct: stays plain
    table->column(1)->AppendInt64(i * 3);
  }
  std::string dir = TempDirFor("enc_stream");
  MLCS_CHECK_OK(bufpool::StoredTable::Write(*table, dir, 256));
  bufpool::BufferPool pool(64u << 20);
  auto stored = bufpool::StoredTable::Open(dir, &pool).ValueOrDie();
  ASSERT_EQ(stored->num_blocks(), 16u);

  obs::Gauge* hw = obs::MetricsRegistry::Global().GetGauge(
      "mlcs.bufpool.pinned_bytes_hw");
  hw->Set(0);
  bufpool::StoredTable::ScanCounters counters;
  auto r = stored->Scan(std::nullopt, {}, &counters);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool.pinned_bytes(), 0u);
  int64_t high_water = hw->Value();
  EXPECT_GT(high_water, 0);
  // 16 blocks were materialized; a streaming scan's pin footprint is ~1/16
  // of that (one chunk pinned at a time). Allow 4x slack for per-chunk
  // overhead variance.
  EXPECT_LT(static_cast<uint64_t>(high_water),
            counters.bytes_materialized / 4);
}

TEST(EncodingTest, MetricsCountEncodedColumnsAndDecodes) {
  uint64_t cols_before = EncodeColumnsEncoded();
  uint64_t bytes_before = EncodeEncodedBytes();
  ColumnPtr enc = EncodeColumn(MakeCategorical(256), EncodingPolicy());
  ASSERT_TRUE(enc->is_encoded());
  EXPECT_EQ(EncodeColumnsEncoded(), cols_before + 1);
  EXPECT_GT(EncodeEncodedBytes(), bytes_before);
  uint64_t dec_before = EncodeDecodeEvents();
  (void)enc->Decode();
  EXPECT_GT(EncodeDecodeEvents(), dec_before);
}

}  // namespace
}  // namespace mlcs
