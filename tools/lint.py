#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Usage: tools/lint.py [PATH ...]
  PATH defaults to `src/ tests/`. Directories are walked for .h/.cc files.

Rules
-----
  naked-valueordie      `x.ValueOrDie()` must be dominated by an `x.ok()`
                        (or `!x.ok()`) check in the same function, or come
                        from MLCS_ASSIGN_OR_RETURN.
  naked-mutex-lock      Direct `.Lock()` / `.Unlock()` / `.TryLock()` (or
                        the std:: spellings) on a mutex member — use the
                        RAII `mlcs::MutexLock` from common/mutex.h so an
                        early return or exception cannot leave the mutex
                        held, and so the deadlock detector sees balanced
                        scopes. common/mutex.{h,cc} implement the facade
                        and are exempt.
  raw-mutex             `std::mutex` / `std::lock_guard` / `std::unique_lock`
                        / `std::condition_variable` (or their includes) in
                        src/ outside common/mutex.{h,cc}. All locking goes
                        through the `mlcs::Mutex` / `MutexLock` / `CondVar`
                        facade (common/mutex.h) so thread-safety annotations
                        apply and Debug builds run lock-order deadlock
                        detection (DESIGN.md §11).
  guarded-member        A class declaring an `mlcs::Mutex` member must
                        annotate every mutable data member with
                        `MLCS_GUARDED_BY(<mutex>)`. Exempt: const members,
                        std::atomic, obs counter handles (atomic by design),
                        Mutex/CondVar themselves. Members intentionally
                        outside the mutex (single-thread-owned, set before
                        sharing) opt out per line with
                        `// lint:allow(guarded-member)` plus a reason.
  guarded-access        Heuristic: a member annotated MLCS_GUARDED_BY may
                        only be touched in a scope that constructed a
                        `MutexLock` (or in a function carrying
                        MLCS_REQUIRES / MLCS_ACQUIRE). Checked within the
                        declaring header and its paired .cc. Constructor
                        warm-up touches (object not yet shared) opt out with
                        `// lint:allow(guarded-access)`.
  include-guard         Headers under src/ use `#ifndef MLCS_<PATH>_H_`
                        guards derived from their path (Google style), with
                        a matching `#define` and trailing `#endif` comment.
  include-hygiene       Repo headers are included as "subdir/file.h" —
                        no "../" relative paths, no <angle> form for repo
                        files, no <bits/...> internals.
  using-namespace-std   `using namespace std;` is forbidden in headers.
  naked-thread          Constructing `std::thread` outside common/thread_pool
                        and client/server (and tests/) — operators and
                        library code must run work on the shared ThreadPool
                        (ParallelMorsels / Submit) so MLCS_THREADS stays the
                        one parallelism knob. Dedicated long-lived loops
                        (e.g. a server's accept thread) opt out with
                        `// lint:allow(naked-thread)`.
  exec-operator-call    Calling the relational operator entry points
                        (`exec::FilterTable` / `HashJoin` / `HashGroupBy` /
                        `SortTable`) outside src/exec/ and the plan layer
                        (src/sql/plan*, src/sql/optimizer*) — SQL execution
                        must flow through physical operators so EXPLAIN,
                        the optimizer, and the plan cache see every
                        operation. tests/ are exempt; deliberate embedded
                        uses (e.g. the DataFrame API) opt out with
                        `// lint:allow(exec-operator-call)`.
  blk-io                Mentioning the on-disk block-file extension `.blk`
                        in src/ outside src/bufpool/ — every block read
                        must go through the buffer pool (StoredTable /
                        BufferPool, src/bufpool/) so pin accounting, LRU
                        eviction, and the mlcs.bufpool.* metrics see it.
                        Deliberate exceptions (e.g. a recovery tool) opt
                        out with `// lint:allow(blk-io)`.
  row-decode            Calling `.Decode()` / `->Decode()` inside a for/
                        while loop body under src/exec/ — decoding per row
                        (or per morsel iteration) throws away compressed
                        execution; operate on codes / run values, or decode
                        the column once before the loop (DESIGN.md §13).
                        Deliberate per-iteration decodes opt out with
                        `// lint:allow(row-decode)` plus a reason.
  matrix-materialize    Dense-matrix materialization (`Matrix::FromColumns`
                        / `Matrix::FromTable`, `DecodeTable`, `.ToMatrix(`)
                        inside src/ml/ outside matrix.{h,cc} — trainers
                        consume `ml::TrainingSource` (per-key LUTs behind a
                        shared key column, DESIGN.md §14) so dimension
                        features are never gathered per fact row. The dense
                        fallback funnels through TrainingSource::FromMatrix,
                        which borrows an already-built matrix. Deliberate
                        conversions (e.g. a UDF boundary that receives
                        columns) opt out with
                        `// lint:allow(matrix-materialize)` plus a reason.
  signal-unsafe         Async-signal-unsafe construct in the crash-handler
                        translation unit (src/obs/crash_dump.cc): heap
                        allocation (malloc/new/std::string/containers),
                        locks, printf-family / stdio / iostream formatting.
                        Everything there must stay callable from a SIGSEGV
                        handler — only atomics, byte copies into static
                        buffers, and raw open()/write()/close() (DESIGN.md
                        §15). A deliberate exception opts out with
                        `// lint:allow(signal-unsafe)` plus a reason.
  adhoc-stats           Declaring a `struct <Name>Stats` outside src/obs/ —
                        new counters belong on the metrics registry
                        (obs::MetricsRegistry, `mlcs.<subsystem>.<series>`)
                        so mlcs_metrics() and the bench JSON metrics block
                        see them. Plain snapshot structs copied from
                        registry-backed counters opt out with
                        `// lint:allow(adhoc-stats)`.

Exit status is 0 when clean, 1 when any violation is found.
A line can opt out with a trailing `// lint:allow(<rule>)` comment.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

VALUEORDIE_RE = re.compile(
    r"(?:std::move\(\s*(?P<m>[A-Za-z_]\w*)\s*\)|(?P<v>[A-Za-z_]\w*))"
    r"\s*\.\s*ValueOrDie\s*\(")
MUTEX_CALL_RE = re.compile(
    r"\b(?P<recv>[A-Za-z_]\w*(?:mutex|mtx|Mutex|_mu)\w*|mu_?)\s*"
    r"(?:\.|->)\s*(?P<op>lock|unlock|try_lock|Lock|Unlock|TryLock)\s*\(")
FUNC_TOP_RE = re.compile(r"^\}")  # closing brace at column 0 ends a function
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?P<form>["<])(?P<path>[^">]+)[">]')
ALLOW_RE = re.compile(r"//\s*lint:allow\((?P<rules>[\w,\- ]+)\)")

violations = []


def report(path, lineno, rule, msg):
    violations.append(f"{path}:{lineno}: [{rule}] {msg}")


def allowed(line, rule):
    m = ALLOW_RE.search(line)
    if not m:
        return False
    rules = {r.strip() for r in m.group("rules").split(",")}
    return rule in rules


def strip_comments_and_strings(line):
    """Best-effort removal of string literals and // comments."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


def check_valueordie(path, lines):
    """Each ValueOrDie() needs a dominating ok() check on the same variable
    earlier in the same function (function boundary ~= closing brace at
    column 0, or a `}` line at the receiver's declaration depth)."""
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        for m in VALUEORDIE_RE.finditer(line):
            var = m.group("m") or m.group("v")
            if allowed(raw, "naked-valueordie"):
                continue
            # MLCS_ASSIGN_OR_RETURN expands to a checked ValueOrDie; the
            # macro body in status.h is the one legitimate naked use.
            if "MLCS_CONCAT" in line or "#define" in line:
                continue
            ok_re = re.compile(r"\b" + re.escape(var) + r"\s*(?:\.|->)\s*ok\s*\(")
            status_re = re.compile(
                r"\b(?:MLCS_CHECK_OK|ASSERT_TRUE|EXPECT_TRUE|MLCS_RETURN_IF_ERROR)\s*\(\s*"
                + re.escape(var))
            found = False
            for j in range(i, max(-1, i - 200), -1):
                prev = strip_comments_and_strings(lines[j])
                if j < i and FUNC_TOP_RE.match(lines[j]):
                    break  # left the enclosing function
                if ok_re.search(prev) or status_re.search(prev):
                    found = True
                    break
            if not found:
                report(path, i + 1, "naked-valueordie",
                       f"`{var}.ValueOrDie()` without a dominating "
                       f"`{var}.ok()` check in the same function")


MUTEX_FACADE_FILES = ("src/common/mutex.h", "src/common/mutex.cc")


def is_facade_file(relpath):
    return relpath.replace(os.sep, "/") in MUTEX_FACADE_FILES


def check_mutex_calls(path, relpath, lines):
    if is_facade_file(relpath):
        return  # the facade's own implementation drives the raw primitives
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        m = MUTEX_CALL_RE.search(line)
        if not m:
            continue
        if allowed(raw, "naked-mutex-lock"):
            continue
        report(path, i + 1, "naked-mutex-lock",
               f"direct `.{m.group('op')}()` on `{m.group('recv')}`; use the "
               "RAII `mlcs::MutexLock` (common/mutex.h) instead")


RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?P<sym>mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
RAW_MUTEX_INCLUDES = ("mutex", "condition_variable", "shared_mutex")


def check_raw_mutex(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or is_facade_file(rel):
        return
    for i, raw in enumerate(lines):
        if allowed(raw, "raw-mutex"):
            continue
        inc = INCLUDE_RE.match(raw)
        if inc and inc.group("form") == "<" and \
                inc.group("path") in RAW_MUTEX_INCLUDES:
            report(path, i + 1, "raw-mutex",
                   f"<{inc.group('path')}> included outside common/mutex.h; "
                   "use the mlcs::Mutex facade (common/mutex.h)")
            continue
        line = strip_comments_and_strings(raw)
        m = RAW_MUTEX_RE.search(line)
        if m:
            report(path, i + 1, "raw-mutex",
                   f"`std::{m.group('sym')}` outside common/mutex.h; use "
                   "mlcs::Mutex / MutexLock / CondVar (common/mutex.h) so "
                   "annotations and deadlock detection apply")


# --- guarded-member / guarded-access -------------------------------------

GUARDED_BY_RE = re.compile(r"\bMLCS_(?:PT_)?GUARDED_BY\s*\(")
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?(?:mlcs::)?Mutex\s+\w+\s*[;{]")
CLASS_HEADER_RE = re.compile(r"\b(?:class|struct)\b")
# Member types that are safe without the mutex: synchronization primitives
# themselves, atomics, and the obs counter handles (internally atomic).
EXEMPT_TYPE_RE = re.compile(
    r"^(?:mutable\s+)?(?:"
    r"(?:mlcs::)?(?:Mutex|CondVar)\b"
    r"|std::atomic\b"
    r"|std::once_flag\b"
    r"|(?:obs::)?(?:Mirrored)?(?:Counter|Gauge|Histogram|WaitSite)\s*[*&]?\s*\w+"
    r")")


def strip_templates(s):
    prev = None
    while prev != s:
        prev = s
        s = re.sub(r"<[^<>]*>", "", s)
    return s


def parse_class_blocks(lines):
    """Best-effort brace matcher. Returns a list of class bodies, each a list
    of (lineno, raw) for lines whose *innermost* enclosing block is that
    class/struct body (function bodies nested inside are excluded)."""
    stack = []  # entries: {"kind": "class"|"other", "lines": [...]}
    blocks = []
    pending = ""  # text since the last '{', '}' or ';' — the block header
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        if code.lstrip().startswith("#"):
            continue
        if stack and stack[-1]["kind"] == "class":
            stack[-1]["lines"].append((i, raw))
        for ch in code:
            if ch == "{":
                is_class = (CLASS_HEADER_RE.search(pending)
                            and not re.search(r"\benum\b", pending)
                            and "=" not in pending)
                entry = {"kind": "class" if is_class else "other",
                         "lines": []}
                stack.append(entry)
                if is_class:
                    blocks.append(entry)
                pending = ""
            elif ch == "}":
                if stack:
                    stack.pop()
                pending = ""
            elif ch == ";":
                pending = ""
            else:
                pending += ch
    return [b["lines"] for b in blocks]


def member_statements(child_lines):
    """Groups a class body's direct lines into statements (a statement ends
    at ';', '{', '}' or an access label)."""
    stmts, cur = [], []
    for ln, raw in child_lines:
        code = strip_comments_and_strings(raw).strip()
        if not cur and not code:
            continue
        cur.append((ln, raw))
        if code.endswith((";", "{", "}", ":")) or code.startswith("}"):
            stmts.append(cur)
            cur = []
    if cur:
        stmts.append(cur)
    return stmts


MEMBER_SKIP_RE = re.compile(
    r"^(?:public|private|protected)\s*:|"
    r"^(?:using|typedef|friend|static|enum|class|struct|union|template|"
    r"MLCS_\w+|~)\b|^\}|^\{")


def check_guarded_member(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or is_facade_file(rel):
        return
    for body in parse_class_blocks(lines):
        text = " ".join(strip_comments_and_strings(raw) for _ln, raw in body)
        if not MUTEX_MEMBER_RE.search(text):
            continue  # class holds no mlcs::Mutex — nothing to guard
        for stmt in member_statements(body):
            if any(allowed(raw, "guarded-member") for _ln, raw in stmt):
                continue
            joined = " ".join(
                strip_comments_and_strings(raw).strip() for _ln, raw in stmt)
            joined = joined.strip()
            if not joined or MEMBER_SKIP_RE.search(joined):
                continue
            if GUARDED_BY_RE.search(joined):
                continue
            flat = strip_templates(joined)
            if "(" in flat:
                continue  # function declaration / definition / ctor
            if EXEMPT_TYPE_RE.search(joined):
                continue
            if re.match(r"^const\b", joined) or \
                    re.search(r"\*\s*const\s+\w+", flat):
                continue  # immutable after construction
            name_m = re.search(r"(\w+)\s*(?:\{[^{}]*\}|=[^;]*)?\s*;\s*$",
                               flat)
            if not name_m:
                continue
            report(path, stmt[0][0] + 1, "guarded-member",
                   f"member `{name_m.group(1)}` of a mutex-holding class "
                   "lacks MLCS_GUARDED_BY(...); annotate it or justify with "
                   "`// lint:allow(guarded-member)`")


GUARDED_NAME_RE = re.compile(r"(\w+)\s+MLCS_(?:PT_)?GUARDED_BY\s*\(")
LOCK_EVIDENCE_RE = re.compile(
    r"\bMutexLock\b|\bMLCS_REQUIRES\b|\bMLCS_ACQUIRE\b|"
    r"\bMLCS_NO_THREAD_SAFETY_ANALYSIS\b")


def sibling_pair(path):
    base, ext = os.path.splitext(path)
    other = base + (".cc" if ext == ".h" else ".h")
    return other if os.path.isfile(other) else None


def check_guarded_access(path, relpath, lines):
    """Heuristic echo of clang's -Wthread-safety for g++-only builds: a use
    of an MLCS_GUARDED_BY member must be preceded, within the enclosing
    function, by a MutexLock construction or an MLCS_REQUIRES/ACQUIRE
    annotation."""
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or is_facade_file(rel):
        return
    texts = ["".join(lines)]
    pair = sibling_pair(path)
    if pair:
        try:
            with open(pair, encoding="utf-8", errors="replace") as f:
                texts.append(f.read())
        except OSError:
            pass
    names = set()
    for text in texts:
        names.update(GUARDED_NAME_RE.findall(text))
    if not names:
        return
    name_re = re.compile(r"\b(" + "|".join(re.escape(n) for n in names)
                         + r")\b")
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if GUARDED_BY_RE.search(line) or line.lstrip().startswith("#"):
            continue
        # A declaration whose MLCS_GUARDED_BY wrapped onto the next line.
        if i + 1 < len(lines) and \
                GUARDED_BY_RE.search(strip_comments_and_strings(lines[i + 1])):
            continue
        m = name_re.search(line)
        if not m:
            continue
        if allowed(raw, "guarded-access"):
            continue
        found = False
        for j in range(i, max(-1, i - 200), -1):
            prev = strip_comments_and_strings(lines[j])
            if j < i and FUNC_TOP_RE.match(lines[j]):
                break  # left the enclosing function
            if LOCK_EVIDENCE_RE.search(prev):
                found = True
                break
        if not found:
            report(path, i + 1, "guarded-access",
                   f"guarded member `{m.group(1)}` used without a MutexLock "
                   "in scope (and no MLCS_REQUIRES on the function)")


def expected_guard(relpath):
    # src/common/status.h -> MLCS_COMMON_STATUS_H_
    parts = relpath.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    token = "_".join(p.upper().replace(".", "_").replace("-", "_")
                     for p in parts)
    return f"MLCS_{token}_"


def check_include_guard(path, relpath, lines):
    if not relpath.startswith("src") or not relpath.endswith(".h"):
        return
    guard = expected_guard(relpath)
    text = "".join(lines)
    ifndef_m = re.search(r"^#ifndef\s+(\S+)", text, re.M)
    if not ifndef_m:
        report(path, 1, "include-guard", f"missing `#ifndef {guard}` guard")
        return
    if ifndef_m.group(1) != guard:
        report(path, 1, "include-guard",
               f"guard `{ifndef_m.group(1)}` should be `{guard}`")
        return
    if not re.search(r"^#define\s+" + re.escape(guard) + r"\s*$", text, re.M):
        report(path, 1, "include-guard", f"missing `#define {guard}`")
    if not re.search(r"^#endif\s*//\s*" + re.escape(guard), text, re.M):
        report(path, len(lines), "include-guard",
               f"missing `#endif  // {guard}` trailer")


def repo_headers():
    out = set()
    src = os.path.join(REPO_ROOT, "src")
    for dirpath, _dirs, files in os.walk(src):
        for f in files:
            if f.endswith(".h"):
                rel = os.path.relpath(os.path.join(dirpath, f), src)
                out.add(rel.replace(os.sep, "/"))
    return out


def check_includes(path, lines, headers):
    for i, raw in enumerate(lines):
        m = INCLUDE_RE.match(raw)
        if not m:
            continue
        if allowed(raw, "include-hygiene"):
            continue
        inc = m.group("path")
        if inc.startswith("bits/"):
            report(path, i + 1, "include-hygiene",
                   f"<{inc}> is a libstdc++ internal; include the public "
                   "header instead")
            continue
        if "../" in inc:
            report(path, i + 1, "include-hygiene",
                   f'"{inc}" uses a relative path; include repo headers as '
                   '"subdir/file.h" from the src/ root')
            continue
        if m.group("form") == "<" and inc in headers:
            report(path, i + 1, "include-hygiene",
                   f"repo header <{inc}> must use the quoted form")
        elif m.group("form") == '"' and inc not in headers:
            report(path, i + 1, "include-hygiene",
                   f'"{inc}" does not resolve from the src/ root '
                   "(quoted includes are reserved for repo headers)")


NAKED_THREAD_RE = re.compile(r"\bstd\s*::\s*thread\s*[({]")
NAKED_THREAD_ALLOWED_PATHS = ("common/thread_pool", "client/server")


def check_naked_thread(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if rel.startswith("tests/"):
        return
    if any(p in rel for p in NAKED_THREAD_ALLOWED_PATHS):
        return
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if not NAKED_THREAD_RE.search(line):
            continue
        if allowed(raw, "naked-thread"):
            continue
        report(path, i + 1, "naked-thread",
               "`std::thread` constructed outside common/thread_pool; run "
               "work on the shared ThreadPool so MLCS_THREADS governs it")


EXEC_OPERATOR_RE = re.compile(
    r"\bexec\s*::\s*(?P<fn>FilterTable|HashJoin|HashGroupBy|SortTable)\s*\(")
EXEC_OPERATOR_ALLOWED_PATHS = ("src/exec/", "src/sql/plan",
                               "src/sql/optimizer")


def check_exec_operator_call(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if rel.startswith("tests/"):
        return
    if any(rel.startswith(p) for p in EXEC_OPERATOR_ALLOWED_PATHS):
        return
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        m = EXEC_OPERATOR_RE.search(line)
        if not m:
            continue
        if allowed(raw, "exec-operator-call"):
            continue
        report(path, i + 1, "exec-operator-call",
               f"`exec::{m.group('fn')}` called outside src/exec/ and the "
               "plan layer; route query execution through the physical "
               "operators (src/sql/planner.h)")


BLK_IO_RE = re.compile(r"\.blk\b")


def check_blk_io(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or rel.startswith("src/bufpool/"):
        return
    for i, raw in enumerate(lines):
        # Match the raw line before string-stripping: the extension only
        # ever appears inside a path literal (`"block_0001.blk"`), which
        # strip_comments_and_strings would erase. Plain comments are fine.
        if not BLK_IO_RE.search(raw.split("//")[0]):
            continue
        if allowed(raw, "blk-io"):
            continue
        report(path, i + 1, "blk-io",
               "direct `.blk` block-file I/O outside src/bufpool/; go "
               "through StoredTable / BufferPool so pins, eviction, and "
               "mlcs.bufpool.* metrics stay accurate")


DECODE_CALL_RE = re.compile(r"(?:\.|->)\s*Decode\s*\(")
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")


def check_row_decode(path, relpath, lines):
    """Brace-depth heuristic: track the depths at which for/while bodies
    open; a Decode() call while any loop body is open re-expands a column
    per iteration. A decode hoisted above the loop (or running once on a
    whole column) is fine and never matches."""
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/exec/"):
        return
    depth = 0
    loop_depths = []   # brace depths at which a loop body opened
    pending_loop = False  # loop header seen, its '{' not yet
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if loop_depths and DECODE_CALL_RE.search(line) and \
                not allowed(raw, "row-decode"):
            report(path, i + 1, "row-decode",
                   "`Decode()` inside a loop body in src/exec/ re-expands "
                   "the column every iteration; operate on codes/run values "
                   "or hoist the decode above the loop")
        if LOOP_HEADER_RE.search(line):
            pending_loop = True
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
            elif ch == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth -= 1
        if pending_loop and line.strip().endswith(";"):
            pending_loop = False  # brace-less single-statement body


MATRIX_MATERIALIZE_RE = re.compile(
    r"\bMatrix\s*::\s*(?:FromColumns|FromTable)\s*\(|\bDecodeTable\s*\(|"
    r"(?:\.|->)\s*ToMatrix\s*\(")
MATRIX_MATERIALIZE_EXEMPT = ("src/ml/matrix.h", "src/ml/matrix.cc")


def check_matrix_materialize(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/ml/") or rel in MATRIX_MATERIALIZE_EXEMPT:
        return
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if not MATRIX_MATERIALIZE_RE.search(line):
            continue
        if allowed(raw, "matrix-materialize"):
            continue
        report(path, i + 1, "matrix-materialize",
               "dense-matrix materialization in ML training code; consume "
               "an ml::TrainingSource (DESIGN.md §14) instead of gathering "
               "the join output, or justify with "
               "`// lint:allow(matrix-materialize)`")


# --- signal-unsafe --------------------------------------------------------
# The crash handler runs with arbitrary locks held and the heap possibly
# corrupt, so its whole TU is restricted to the async-signal-safe set.
SIGNAL_UNSAFE_FILES = ("src/obs/crash_dump.cc",)
SIGNAL_UNSAFE_PATTERNS = (
    (re.compile(r"\b(?:malloc|calloc|realloc|free|aligned_alloc)\s*\("),
     "heap allocation"),
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new allocates"),
    (re.compile(r"\bstd\s*::\s*(?:string|vector|deque|map|unordered_map|"
                r"set|unordered_set|list|ostringstream|stringstream|"
                r"function)\b"),
     "allocating std:: type"),
    (re.compile(r"\b(?:printf|fprintf|sprintf|snprintf|vsnprintf|vprintf|"
                r"vfprintf|puts|fputs|fwrite|fread|fopen|fclose|fflush|"
                r"perror)\s*\("),
     "stdio/printf-family call"),
    (re.compile(r"\bstd\s*::\s*(?:cout|cerr|clog|format|to_string)\b"),
     "iostream/format call"),
    (re.compile(r"\b(?:MutexLock|lock_guard|unique_lock|scoped_lock|"
                r"pthread_mutex_\w+)\b|(?:\.|->)\s*(?:lock|Lock)\s*\("),
     "lock acquisition (handler may interrupt the holder)"),
    (re.compile(r'^\s*#\s*include\s+<(?:cstdio|stdio\.h|iostream|sstream|'
                r'ostream|string|vector|mutex|format)>'),
     "header pulls in allocating/locking machinery"),
)


def check_signal_unsafe(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if rel not in SIGNAL_UNSAFE_FILES:
        return
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        for pat, why in SIGNAL_UNSAFE_PATTERNS:
            m = pat.search(line)
            if not m:
                continue
            if allowed(raw, "signal-unsafe"):
                continue
            report(path, i + 1, "signal-unsafe",
                   f"`{m.group(0).strip()}` in the crash-handler TU: {why}; "
                   "the handler must stay async-signal-safe (atomics, "
                   "static buffers, raw write() only)")
            break


ADHOC_STATS_RE = re.compile(r"^\s*struct\s+\w*Stats\b")


def check_adhoc_stats(path, relpath, lines):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or rel.startswith("src/obs/"):
        return
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if not ADHOC_STATS_RE.search(line):
            continue
        if allowed(raw, "adhoc-stats"):
            continue
        report(path, i + 1, "adhoc-stats",
               "ad-hoc `struct *Stats` outside src/obs/; register the "
               "counters on obs::MetricsRegistry instead so mlcs_metrics() "
               "exports them")


def check_using_namespace(path, relpath, lines):
    if not relpath.endswith(".h"):
        return
    for i, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        if re.search(r"\busing\s+namespace\s+std\b", line):
            if allowed(raw, "using-namespace-std"):
                continue
            report(path, i + 1, "using-namespace-std",
                   "`using namespace std;` in a header pollutes every "
                   "includer")


def lint_file(path, headers):
    relpath = os.path.relpath(path, REPO_ROOT)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as e:
        report(path, 0, "io", str(e))
        return
    check_valueordie(path, lines)
    check_mutex_calls(path, relpath, lines)
    check_raw_mutex(path, relpath, lines)
    check_guarded_member(path, relpath, lines)
    check_guarded_access(path, relpath, lines)
    check_include_guard(path, relpath, lines)
    check_includes(path, lines, headers)
    check_using_namespace(path, relpath, lines)
    check_naked_thread(path, relpath, lines)
    check_exec_operator_call(path, relpath, lines)
    check_blk_io(path, relpath, lines)
    check_row_decode(path, relpath, lines)
    check_matrix_materialize(path, relpath, lines)
    check_adhoc_stats(path, relpath, lines)
    check_signal_unsafe(path, relpath, lines)


def collect(paths):
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirs, files in os.walk(p):
                dirs[:] = [d for d in dirs
                           if not d.startswith("build") and d != ".git"]
                for f in sorted(files):
                    if f.endswith((".h", ".cc", ".cpp")):
                        yield os.path.join(dirpath, f)
        elif os.path.isfile(p):
            yield p
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)


def main(argv):
    paths = argv[1:] or [os.path.join(REPO_ROOT, "src"),
                         os.path.join(REPO_ROOT, "tests")]
    headers = repo_headers()
    count = 0
    for path in collect(paths):
        lint_file(path, headers)
        count += 1
    if violations:
        print("\n".join(violations))
        print(f"\nlint.py: {len(violations)} violation(s) in {count} files")
        return 1
    print(f"lint.py: OK ({count} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
