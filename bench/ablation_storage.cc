/// Ablation abl-storage: what the persistent block layer buys (and costs)
/// on the paper's voter table served from disk. The table is saved to a
/// scratch directory as zone-mapped block files, reopened stored-backed
/// (nothing resident), and scanned through the global buffer pool. Two
/// grids:
///
///   zone maps on/off       — a selective predicate over a clustered
///                            column should skip nearly every block before
///                            any I/O: `blocks_read_per_iter` must drop
///                            ≥5x with `zonemaps:1` (EXPERIMENTS.md,
///                            abl-storage).
///   cold vs. warm pool     — repeat full scans with the pool cleared
///                            every iteration pay `pool_bytes_read` each
///                            time; with the pool warm the reads collapse
///                            to hits and per-iteration disk bytes go to
///                            zero.
///
/// Results land in BENCH_ablation_storage.json; the mlcs.bufpool.* series
/// in its metrics block carry the raw counters. Scale knobs:
/// MLCS_STORAGE_ROWS / _COLS (defaults 50000 / 32), block size via
/// MLCS_BLOCK_ROWS (default 4096).
#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "bench_main.h"
#include "bufpool/buffer_pool.h"
#include "bufpool/zone_map.h"
#include "io/voter_gen.h"
#include "obs/metrics.h"
#include "sql/database.h"

namespace {

using namespace mlcs;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

/// Voter table persisted once, then reopened stored-backed: every scan in
/// the benchmarks below goes through block files and the buffer pool.
Database& StoredDb() {
  static Database* db = [] {
    std::string dir =
        "/tmp/mlcs_abl_storage_" + std::to_string(::getpid());
    {
      Database writer;
      io::VoterDataOptions opt;
      opt.num_voters = EnvSize("MLCS_STORAGE_ROWS", 50000);
      opt.num_columns = EnvSize("MLCS_STORAGE_COLS", 32);
      auto voters = io::GenerateVoters(opt);
      if (!voters.ok()) std::abort();
      if (!writer.catalog().CreateTable("voters", voters.ValueOrDie()).ok())
        std::abort();
      if (!writer.SaveTo(dir).ok()) std::abort();
    }
    auto* d = new Database();
    if (!d->LoadFrom(dir).ok()) std::abort();
    return d;
  }();
  return *db;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

void ReportPerIter(benchmark::State& state, const char* label,
                   uint64_t delta) {
  state.counters[label] = benchmark::Counter(
      static_cast<double>(delta) / static_cast<double>(state.iterations()));
}

/// Selective scan with zone-map skipping set by the grid arg (0 = off,
/// 1 = on). voter_id is generated in insertion order, so a narrow range
/// predicate admits a handful of blocks; with skipping off every block is
/// read and filtered the hard way.
void BM_SelectiveScanZoneMapGrid(benchmark::State& state) {
  Database& db = StoredDb();
  bufpool::SetZoneMapSkippingEnabled(state.range(0) == 1);
  const std::string sql =
      "SELECT voter_id FROM voters WHERE voter_id < 100";
  uint64_t read0 = CounterValue("mlcs.bufpool.bytes_read");
  uint64_t skip0 = CounterValue("mlcs.bufpool.blocks_skipped");
  uint64_t hit0 = CounterValue("mlcs.bufpool.hits");
  uint64_t miss0 = CounterValue("mlcs.bufpool.misses");
  for (auto _ : state) {
    // Cold pool every iteration: skipped blocks must save real reads, not
    // just cache hits.
    state.PauseTiming();
    bufpool::BufferPool::Global().Clear();
    state.ResumeTiming();
    auto r = db.Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  bufpool::SetZoneMapSkippingEnabled(true);
  if (state.iterations() == 0) return;
  ReportPerIter(state, "pool_bytes_read_per_iter",
                CounterValue("mlcs.bufpool.bytes_read") - read0);
  ReportPerIter(state, "blocks_skipped_per_iter",
                CounterValue("mlcs.bufpool.blocks_skipped") - skip0);
  ReportPerIter(state, "blocks_read_per_iter",
                CounterValue("mlcs.bufpool.misses") - miss0 +
                    CounterValue("mlcs.bufpool.hits") - hit0);
}

/// Full scan with the pool state set by the grid arg (0 = cold: cleared
/// every iteration, 1 = warm: kept). Warm per-iteration disk bytes must be
/// ~zero — repeat scans are served from memory.
void BM_FullScanPoolGrid(benchmark::State& state) {
  Database& db = StoredDb();
  const bool warm = state.range(0) == 1;
  if (warm) {
    // Prime outside the timed region so iteration 1 is already warm.
    auto r = db.Query("SELECT COUNT(*) FROM voters");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  uint64_t read0 = CounterValue("mlcs.bufpool.bytes_read");
  uint64_t hit0 = CounterValue("mlcs.bufpool.hits");
  uint64_t miss0 = CounterValue("mlcs.bufpool.misses");
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      bufpool::BufferPool::Global().Clear();
      state.ResumeTiming();
    }
    auto r = db.Query("SELECT COUNT(*) FROM voters");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  if (state.iterations() == 0) return;
  ReportPerIter(state, "pool_bytes_read_per_iter",
                CounterValue("mlcs.bufpool.bytes_read") - read0);
  ReportPerIter(state, "pool_hits_per_iter",
                CounterValue("mlcs.bufpool.hits") - hit0);
  ReportPerIter(state, "pool_misses_per_iter",
                CounterValue("mlcs.bufpool.misses") - miss0);
}

BENCHMARK(BM_SelectiveScanZoneMapGrid)
    ->ArgName("zonemaps")
    ->Arg(0)
    ->Arg(1);
BENCHMARK(BM_FullScanPoolGrid)->ArgName("warm")->Arg(0)->Arg(1);

}  // namespace

MLCS_BENCH_MAIN(ablation_storage)
