/// Ablation abl-compress: what compressed execution buys on the paper's
/// voter table served from block files. The table is saved twice — once
/// with the encoding policy on (dictionary/RLE blocks) and once forced
/// plain — then reopened stored-backed and queried through the buffer
/// pool. One grid axis everywhere: `encoding:0` scans the plain copy with
/// the knob off (the MLCS_DISABLE_ENCODING baseline), `encoding:1` scans
/// the encoded copy operating on codes end-to-end. Expectations
/// (EXPERIMENTS.md, abl-compress):
///
///   scan bytes touched     — encoded full scans must move ≥5x fewer bytes
///                            (`scan_bytes_per_iter`).
///   filter + group-by      — equality filters and low-cardinality
///                            group-bys on dictionary columns run ≥2x
///                            faster operating on codes.
///   on-disk footprint      — the encoded directory is ≤0.5x the plain one
///                            (`disk_bytes` counter on the scan grid).
///
/// Results land in BENCH_ablation_compression.json; the mlcs.encode.*
/// series in its metrics block carry code-path hits and decode-fallback
/// counts, and the context block records the encoding knob. Scale knobs:
/// MLCS_STORAGE_ROWS / _COLS (defaults 50000 / 32), block size via
/// MLCS_BLOCK_ROWS (default 4096).
#include <benchmark/benchmark.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_main.h"
#include "bufpool/buffer_pool.h"
#include "io/voter_gen.h"
#include "obs/metrics.h"
#include "sql/database.h"
#include "storage/encoding.h"

namespace {

using namespace mlcs;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

/// Recursive: SaveTo writes a manifest plus one block-file subdirectory
/// per table.
uint64_t DirSizeBytes(const std::string& dir) {
  uint64_t total = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (struct dirent* e = ::readdir(d)) {
    std::string name(e->d_name);
    if (name == "." || name == "..") continue;
    std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) {
      total += static_cast<uint64_t>(st.st_size);
    } else if (S_ISDIR(st.st_mode)) {
      total += DirSizeBytes(path);
    }
  }
  ::closedir(d);
  return total;
}

/// The two stored copies of the voter table plus a database per copy.
/// Saved once; every benchmark below picks its arm by grid arg.
struct StoredCopies {
  Database plain_db;
  Database encoded_db;
  uint64_t plain_disk_bytes = 0;
  uint64_t encoded_disk_bytes = 0;
};

StoredCopies& Copies() {
  static StoredCopies* copies = [] {
    std::string base =
        "/tmp/mlcs_abl_compress_" + std::to_string(::getpid());
    std::string plain_dir = base + "_plain";
    std::string enc_dir = base + "_enc";
    {
      Database writer;
      io::VoterDataOptions opt;
      opt.num_voters = EnvSize("MLCS_STORAGE_ROWS", 50000);
      opt.num_columns = EnvSize("MLCS_STORAGE_COLS", 32);
      auto gen = io::GenerateVoters(opt);
      if (!gen.ok()) std::abort();
      TablePtr voters = gen.ValueOrDie();
      // Cluster by precinct, like real voter-file extracts (sorted by
      // county/precinct): the precinct column gains run structure the
      // encoder turns into RLE; the demographic columns stay
      // dictionary-shaped.
      {
        auto pre = voters->ColumnByName("precinct_id");
        if (!pre.ok()) std::abort();
        const auto& p = pre.ValueOrDie()->i32_data();
        std::vector<uint32_t> order(voters->num_rows());
        for (size_t i = 0; i < order.size(); ++i) {
          order[i] = static_cast<uint32_t>(i);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) { return p[a] < p[b]; });
        voters = voters->TakeRows(order);
      }
      if (!writer.catalog().CreateTable("voters", voters).ok())
        std::abort();
      SetEncodingEnabled(false);  // SaveTo's EncodeTable becomes a no-op
      if (!writer.SaveTo(plain_dir).ok()) std::abort();
      SetEncodingEnabled(true);
      if (!writer.SaveTo(enc_dir).ok()) std::abort();
    }
    auto* c = new StoredCopies();
    if (!c->plain_db.LoadFrom(plain_dir).ok()) std::abort();
    if (!c->encoded_db.LoadFrom(enc_dir).ok()) std::abort();
    c->plain_disk_bytes = DirSizeBytes(plain_dir);
    c->encoded_disk_bytes = DirSizeBytes(enc_dir);
    return c;
  }();
  return *copies;
}

/// Selects the benchmark arm: plain blocks with the knob off, or encoded
/// blocks operating on codes. Restore the knob after the timed loop.
Database& ArmDb(int64_t encoding) {
  StoredCopies& c = Copies();
  SetEncodingEnabled(encoding == 1);
  return encoding == 1 ? c.encoded_db : c.plain_db;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

void ReportPerIter(benchmark::State& state, const char* label,
                   uint64_t delta) {
  state.counters[label] = benchmark::Counter(
      static_cast<double>(delta) / static_cast<double>(state.iterations()));
}

/// Full warm-pool scan over the precinct-clustered column: bytes
/// materialized per iteration is the headline (the RLE column hands runs
/// to the executor, not 50k expanded rows). Also carries the on-disk
/// footprint of each arm as `disk_bytes`.
void BM_ScanBytesGrid(benchmark::State& state) {
  Database& db = ArmDb(state.range(0));
  uint64_t bytes0 = CounterValue("mlcs.scan.bytes_touched");
  for (auto _ : state) {
    auto r = db.Query("SELECT COUNT(*) FROM voters WHERE precinct_id >= 0");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  SetEncodingEnabled(true);
  if (state.iterations() == 0) return;
  ReportPerIter(state, "scan_bytes_per_iter",
                CounterValue("mlcs.scan.bytes_touched") - bytes0);
  state.counters["disk_bytes"] = benchmark::Counter(static_cast<double>(
      state.range(0) == 1 ? Copies().encoded_disk_bytes
                          : Copies().plain_disk_bytes));
}

/// Equality filters on dictionary-shaped columns: the encoded arm runs
/// each predicate per dictionary entry and expands the tiny result through
/// the codes; the plain arm promotes and compares all 50k rows per
/// conjunct.
void BM_DictFilterGrid(benchmark::State& state) {
  Database& db = ArmDb(state.range(0));
  const std::string sql =
      "SELECT COUNT(*) FROM voters WHERE age = 40 AND gender = 1";
  for (auto _ : state) {
    auto r = db.Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  SetEncodingEnabled(true);
}

/// Low-cardinality group-by with aggregates: encoded arm hashes codes and
/// aggregates per run/entry instead of per expanded row.
void BM_DictGroupByGrid(benchmark::State& state) {
  Database& db = ArmDb(state.range(0));
  const std::string sql =
      "SELECT age, COUNT(*) AS c, SUM(precinct_id) AS s FROM voters "
      "GROUP BY age";
  for (auto _ : state) {
    auto r = db.Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  SetEncodingEnabled(true);
}

/// Join keyed on the dictionary-shaped precinct column against the
/// precinct dimension table — hash-join builds and probes on codes where
/// the dictionaries allow it.
void BM_DictJoinGrid(benchmark::State& state) {
  StoredCopies& c = Copies();
  Database& db = ArmDb(state.range(0));
  // The precinct table is tiny; resident on both arms is fine.
  if (!db.catalog().HasTable("precincts")) {
    io::VoterDataOptions opt;
    auto precincts = io::GeneratePrecincts(opt);
    if (!precincts.ok()) std::abort();
    if (!db.catalog().CreateTable("precincts", precincts.ValueOrDie()).ok())
      std::abort();
  }
  (void)c;
  const std::string sql =
      "SELECT COUNT(*) FROM voters JOIN precincts "
      "ON precinct_id = precinct_id WHERE dem_votes > rep_votes";
  for (auto _ : state) {
    auto r = db.Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  SetEncodingEnabled(true);
}

BENCHMARK(BM_ScanBytesGrid)->ArgName("encoding")->Arg(0)->Arg(1);
BENCHMARK(BM_DictFilterGrid)->ArgName("encoding")->Arg(0)->Arg(1);
BENCHMARK(BM_DictGroupByGrid)->ArgName("encoding")->Arg(0)->Arg(1);
BENCHMARK(BM_DictJoinGrid)->ArgName("encoding")->Arg(0)->Arg(1);

}  // namespace

MLCS_BENCH_MAIN(ablation_compression)
