/// Ablation abl-factorized: what pushing training statistics below the
/// join buys (DESIGN.md §14). A star-shaped training set — fact table with
/// n = K·F rows (two dense features plus the join key) against a dimension
/// table with K rows × D features — is fed to the same trainers two ways:
///
///   arm 0 (materialized)  — the dimension features are gathered through
///                           the key into a dense n×(2+D) matrix before
///                           every fit: the joined-matrix path, whose
///                           bytes grow linearly with the fan-out F.
///   arm 1 (factorized)    — the trainers read the dimension features as
///                           K-entry LUTs behind the shared key column
///                           (ml::TrainingSource): bytes grow only with
///                           the fact side, sub-linear in the feature set
///                           as F rises.
///
/// Grid: (arm, fan_out) with F ∈ {1, 10, 100}. Headline counters:
/// `train_bytes` (what the fit actually touched — linear vs sub-linear in
/// F is the acceptance shape) and wall time per fit. The
/// mlcs.factorized.* registry series (fit counts, source vs materialized
/// bytes, peak source bytes) land in the metrics block of
/// BENCH_ablation_factorized.json. Scale knobs: MLCS_FACTORIZED_KEYS
/// (dimension rows, default 256), MLCS_STORAGE_COLS (dimension features,
/// default 16), MLCS_FACTORIZED_TREES (forest size, default 4).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_main.h"
#include "common/random.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "ml/training_source.h"

namespace {

using namespace mlcs;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

/// One star-shaped training set at a given fan-out: the fact side keeps
/// its two dense features and the key column; the dimension side is D
/// K-entry LUTs. Built once per fan-out, shared by both arms so they
/// train on bit-identical inputs.
struct StarData {
  size_t num_keys = 0;
  std::vector<uint32_t> keys;            // n entries, sorted runs
  std::vector<std::vector<double>> fact; // 2 dense n-vectors
  std::vector<std::vector<double>> dim;  // D K-entry LUTs
  ml::Labels y;
};

const StarData& DataForFanOut(size_t fan_out) {
  static std::map<size_t, StarData>* cache = new std::map<size_t, StarData>();
  auto it = cache->find(fan_out);
  if (it != cache->end()) return it->second;

  StarData d;
  d.num_keys = EnvSize("MLCS_FACTORIZED_KEYS", 256);
  size_t dim_features = EnvSize("MLCS_STORAGE_COLS", 16);
  size_t n = d.num_keys * fan_out;
  Rng rng(1234 + fan_out);
  d.dim.resize(dim_features);
  for (auto& lut : d.dim) {
    lut.resize(d.num_keys);
    for (double& v : lut) v = static_cast<double>(rng.NextInt(-20, 20));
  }
  d.keys.resize(n);
  d.fact.resize(2);
  d.fact[0].resize(n);
  d.fact[1].resize(n);
  d.y.resize(n);
  for (size_t r = 0; r < n; ++r) {
    d.keys[r] = static_cast<uint32_t>(r / fan_out);  // precinct-clustered
    d.fact[0][r] = static_cast<double>(rng.NextInt(-50, 50));
    d.fact[1][r] = static_cast<double>(rng.NextBounded(8));
    d.y[r] = static_cast<int32_t>(
        (d.keys[r] + static_cast<size_t>(d.fact[0][r] + 50)) % 3);
  }
  return (*cache)[fan_out] = std::move(d);
}

/// The joined-matrix path: gather every dimension LUT through the key
/// column into dense n-vectors (this copy IS the join materialization the
/// factorized path avoids, so it stays inside the timed region).
ml::Matrix Materialize(const StarData& d) {
  ml::Matrix x;
  (void)x.AddColumn(d.fact[0]);
  (void)x.AddColumn(d.fact[1]);
  size_t n = d.keys.size();
  for (const auto& lut : d.dim) {
    std::vector<double> gathered(n);
    for (size_t r = 0; r < n; ++r) gathered[r] = lut[d.keys[r]];
    (void)x.AddColumn(std::move(gathered));
  }
  return x;
}

/// The below-the-join path: dense fact features borrowed, dimension
/// features as K-entry LUT copies behind one shared key column.
ml::TrainingSource FactorizedSource(const StarData& d) {
  ml::TrainingSource src;
  (void)src.AddDenseFeature(&d.fact[0]);
  (void)src.AddDenseFeature(&d.fact[1]);
  (void)src.SetKeys(d.keys, d.num_keys);
  for (const auto& lut : d.dim) (void)src.AddFactorizedFeature(lut);
  return src;
}

ml::RandomForestOptions ForestOptions() {
  ml::RandomForestOptions opt;
  opt.n_estimators = static_cast<int>(EnvSize("MLCS_FACTORIZED_TREES", 4));
  opt.max_depth = 8;
  opt.seed = 7;
  return opt;
}

void ReportBytes(benchmark::State& state, size_t bytes) {
  state.counters["train_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
  state.counters["fan_out"] =
      benchmark::Counter(static_cast<double>(state.range(1)));
}

/// Random-forest training, materialized vs factorized, at rising fan-out.
void BM_TrainForestGrid(benchmark::State& state) {
  const StarData& d = DataForFanOut(static_cast<size_t>(state.range(1)));
  size_t bytes = 0;
  for (auto _ : state) {
    ml::RandomForest forest(ForestOptions());
    if (state.range(0) == 0) {
      ml::Matrix x = Materialize(d);
      bytes = x.rows() * x.cols() * sizeof(double);
      if (!forest.Fit(x, d.y).ok()) {
        state.SkipWithError("materialized fit failed");
        break;
      }
    } else {
      ml::TrainingSource src = FactorizedSource(d);
      bytes = src.FactorizedBytes();
      if (!forest.FitSource(src, d.y).ok()) {
        state.SkipWithError("factorized fit failed");
        break;
      }
    }
    benchmark::DoNotOptimize(forest);
  }
  ReportBytes(state, bytes);
}
BENCHMARK(BM_TrainForestGrid)
    ->ArgNames({"factorized", "fan_out"})
    ->ArgsProduct({{0, 1}, {1, 10, 100}})
    ->Unit(benchmark::kMillisecond);

/// Logistic-regression training (gradient sums through standardized
/// per-key LUTs) on the same grid.
void BM_TrainLogRegGrid(benchmark::State& state) {
  const StarData& d = DataForFanOut(static_cast<size_t>(state.range(1)));
  ml::LogisticRegressionOptions opt;
  opt.epochs = 8;
  size_t bytes = 0;
  for (auto _ : state) {
    ml::LogisticRegression model(opt);
    if (state.range(0) == 0) {
      ml::Matrix x = Materialize(d);
      bytes = x.rows() * x.cols() * sizeof(double);
      if (!model.Fit(x, d.y).ok()) {
        state.SkipWithError("materialized fit failed");
        break;
      }
    } else {
      ml::TrainingSource src = FactorizedSource(d);
      bytes = src.FactorizedBytes();
      if (!model.FitSource(src, d.y).ok()) {
        state.SkipWithError("factorized fit failed");
        break;
      }
    }
    benchmark::DoNotOptimize(model);
  }
  ReportBytes(state, bytes);
}
BENCHMARK(BM_TrainLogRegGrid)
    ->ArgNames({"factorized", "fan_out"})
    ->ArgsProduct({{0, 1}, {1, 10, 100}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

MLCS_BENCH_MAIN(ablation_factorized)
