/// Ablation abl-vec: vectorized vs row-at-a-time UDF execution.
///
/// The same arithmetic function (a polynomial over two columns) is
/// registered twice: once vectorized (one call over whole columns — the
/// paper's granularity) and once through the row-at-a-time adapter (one
/// boxed call per tuple — the "traditional UDF" the paper's §1 contrasts
/// against). The gap is the per-row boundary-crossing cost.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "exec/kernels.h"
#include "udf/udf.h"
#include "vscript/vs_interpreter.h"
#include "vscript/vs_parser.h"

namespace {

using namespace mlcs;

udf::UdfRegistry& Registry() {
  static udf::UdfRegistry* registry = [] {
    auto* r = new udf::UdfRegistry();

    udf::ScalarUdfEntry vectorized;
    vectorized.name = "poly_vec";
    vectorized.fn = [](const std::vector<ColumnPtr>& args,
                       size_t) -> Result<ColumnPtr> {
      // x*x + 3*y + 1, fully vectorized.
      MLCS_ASSIGN_OR_RETURN(
          ColumnPtr xx,
          exec::BinaryKernel(exec::BinOpKind::kMul, *args[0], *args[0]));
      MLCS_ASSIGN_OR_RETURN(
          ColumnPtr y3,
          exec::BinaryKernel(exec::BinOpKind::kMul, *args[1],
                             *Column::Constant(Value::Int64(3), 1)));
      MLCS_ASSIGN_OR_RETURN(
          ColumnPtr sum, exec::BinaryKernel(exec::BinOpKind::kAdd, *xx, *y3));
      return exec::BinaryKernel(exec::BinOpKind::kAdd, *sum,
                                *Column::Constant(Value::Int64(1), 1));
    };
    (void)r->RegisterScalar(std::move(vectorized));

    (void)r->RegisterScalarRowAtATime(
        "poly_row", {TypeId::kInt64, TypeId::kInt64}, TypeId::kInt64,
        [](const std::vector<Value>& args) -> Result<Value> {
          int64_t x = args[0].int64_value();
          int64_t y = args[1].int64_value();
          return Value::Int64(x * x + 3 * y + 1);
        });
    return r;
  }();
  return *registry;
}

std::vector<ColumnPtr> MakeArgs(size_t rows) {
  std::vector<int64_t> x(rows), y(rows);
  for (size_t i = 0; i < rows; ++i) {
    x[i] = static_cast<int64_t>(i % 1000);
    y[i] = static_cast<int64_t>(i % 777);
  }
  return {Column::FromInt64(std::move(x)), Column::FromInt64(std::move(y))};
}

void BM_VectorizedUdf(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto args = MakeArgs(rows);
  for (auto _ : state) {
    auto r = Registry().CallScalar("poly_vec", args, rows);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}

void BM_RowAtATimeUdf(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto args = MakeArgs(rows);
  for (auto _ : state) {
    auto r = Registry().CallScalar("poly_row", args, rows);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}

/// The scripting-language variant — where the paper's claim really bites.
/// One interpreter invocation over whole columns amortizes interpretation;
/// one invocation per row pays parse-free but interpret-per-tuple cost
/// (the MonetDB/Python vs classic scalar-Python-UDF contrast).
const vscript::Program& PolyScript() {
  static const vscript::Program* program = [] {
    auto r = vscript::Parse("return x * x + 3 * y + 1;");
    if (!r.ok()) std::abort();
    return new vscript::Program(std::move(r).ValueOrDie());
  }();
  return *program;
}

void BM_VScriptVectorized(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto args = MakeArgs(rows);
  for (auto _ : state) {
    vscript::Environment env;
    env["x"] = vscript::ScriptValue(args[0]);
    env["y"] = vscript::ScriptValue(args[1]);
    auto r = vscript::Execute(PolyScript(), std::move(env));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}

void BM_VScriptPerRow(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto args = MakeArgs(rows);
  const auto& x = args[0]->i64_data();
  const auto& y = args[1]->i64_data();
  for (auto _ : state) {
    Column out(TypeId::kInt64);
    out.Reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      vscript::Environment env;
      env["x"] = vscript::ScriptValue(Value::Int64(x[i]));
      env["y"] = vscript::ScriptValue(Value::Int64(y[i]));
      auto r = vscript::Execute(PolyScript(), std::move(env));
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        break;
      }
      auto v = r.ValueOrDie().AsScalar();
      if (v.ok()) (void)out.AppendValue(v.ValueOrDie());
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}

BENCHMARK(BM_VectorizedUdf)->Range(1 << 10, 1 << 20);
BENCHMARK(BM_RowAtATimeUdf)->Range(1 << 10, 1 << 20);
BENCHMARK(BM_VScriptVectorized)->Range(1 << 10, 1 << 18);
BENCHMARK(BM_VScriptPerRow)->Range(1 << 10, 1 << 18);

}  // namespace

MLCS_BENCH_MAIN(ablation_udf_vectorization)
