/// Ablation abl-obs2: the price of always-on observability.
///
/// The flight recorder's design claim (DESIGN.md §15) is that recording
/// every completed query trace into a byte-budgeted ring is cheap enough
/// to leave on in production. This harness measures that claim directly:
/// a contended multi-threaded query mix (grouped aggregates over a
/// generated voter table, parameter-varied so planning work is included)
/// runs under the four {recorder on/off} x {slow-query log on/off}
/// configurations, and the always-on configuration must stay within 5% of
/// the recorder-off baseline (fatal unless MLCS_OBS_BENCH_STRICT=0, which
/// check.sh --bench-smoke sets — tiny-scale walls are scheduler noise).
///
/// The slow-log-on configurations set the threshold to 0 so EVERY query
/// pays the full capture path — span tree retention plus rendered plan
/// text — an upper bound a real deployment (250ms default threshold)
/// never reaches.
///
/// A second section reports wait-histogram fidelity: known sleeps recorded
/// through a WaitSite must reproduce the measured wall-clock in the
/// site's total and land in the right latency bucket.
///
/// Scale knobs (defaults CI-sized):
///   MLCS_OBS_BENCH_QUERIES   queries per thread per rep   (default 60)
///   MLCS_OBS_BENCH_THREADS   concurrent query threads     (default 4)
///   MLCS_OBS_BENCH_ROWS      rows in the voter table      (default 20000)
///   MLCS_OBS_BENCH_REPS      interleaved reps (mean)      (default 5)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "json_util.h"
#include "obs/flight_recorder.h"
#include "obs/wait_stats.h"
#include "sql/database.h"

namespace {

using namespace mlcs;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

struct BenchConfig {
  size_t queries_per_thread = 60;
  size_t threads = 4;
  size_t rows = 20000;
  size_t reps = 3;
};

struct ConfigResult {
  std::string name;
  bool recorder = false;
  bool slow_log = false;
  std::vector<double> rep_walls_ms;
  double wall_ms = 0;  // median of reps
  double queries_per_sec = 0;
  uint64_t traces_retained = 0;
  uint64_t slow_captured = 0;
};

/// Median of the rep walls — a single scheduler spike in a 40ms pass can
/// double it; the median ignores such outliers where a mean absorbs them
/// and a best-of amplifies the other side's luck.
double MedianWall(std::vector<double> walls) {
  std::sort(walls.begin(), walls.end());
  size_t n = walls.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? walls[n / 2]
                    : (walls[n / 2 - 1] + walls[n / 2]) / 2.0;
}

bool PopulateVoters(Database* db, size_t rows) {
  if (!db->Run("CREATE TABLE voters (id INTEGER, precinct INTEGER, "
               "age INTEGER, score DOUBLE);")
           .ok()) {
    return false;
  }
  Rng rng(17);
  std::string batch;
  for (size_t r = 0; r < rows; ++r) {
    if (batch.empty()) batch = "INSERT INTO voters VALUES ";
    // Appended piecewise: GCC 12's -Wrestrict false-positives on
    // `const char* + std::string&&` chains at -O3 (see the notes in
    // bufpool_test.cc / sql_introspection_test.cc).
    batch += "(";
    batch += std::to_string(r);
    batch += ",";
    batch += std::to_string(r % 97);
    batch += ",";
    batch += std::to_string(18 + r % 70);
    batch += ",";
    batch += std::to_string(rng.NextDouble());
    batch += ")";
    if (batch.size() > 60000 || r + 1 == rows) {
      batch += ";";
      if (!db->Run(batch).ok()) return false;
      batch.clear();
    } else {
      batch += ",";
    }
  }
  return true;
}

/// The per-thread query mix: grouped aggregate with a varied predicate
/// (planning included since each text is distinct) alternating with a
/// cache-friendly repeated aggregate — the fig-1 pipeline's analytic
/// shape under concurrency.
void RunQueryThread(Database* db, size_t queries, size_t seed,
                    std::atomic<uint64_t>* errors) {
  for (size_t i = 0; i < queries; ++i) {
    std::string sql;
    if (i % 2 == 0) {
      sql = "SELECT precinct, COUNT(*) AS n, SUM(age) AS total FROM voters "
            "WHERE age > " +
            std::to_string(18 + (seed * 7 + i * 13) % 60) +
            " GROUP BY precinct";
    } else {
      sql = "SELECT COUNT(*) FROM voters WHERE score > 0.5";
    }
    if (!db->Query(sql).ok()) errors->fetch_add(1);
  }
}

/// One timed pass of the concurrent query mix under the given recorder /
/// slow-log configuration. Returns the wall time; updates sanity fields.
double RunOnePass(Database* db, const BenchConfig& config,
                  ConfigResult* result) {
  obs::FlightRecorder::SetRecordingEnabled(result->recorder);
  // Threshold 0 → every query is "slow" (worst case: plan text rendered
  // and retained per query); a huge threshold disables capture.
  obs::FlightRecorder::SetSlowQueryThresholdMsForTesting(
      result->slow_log ? 0.0 : 1e9);
  uint64_t slow_before = obs::MetricsRegistry::Global()
                             .GetCounter("mlcs.slow_query.captured")
                             ->Value();
  obs::FlightRecorder::Global().Clear();

  std::atomic<uint64_t> errors{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < config.threads; ++t) {
    threads.emplace_back(RunQueryThread, db, config.queries_per_thread,
                         t + 1, &errors);
  }
  for (auto& t : threads) t.join();
  double wall = timer.ElapsedMillis();
  if (errors.load() != 0) {
    std::fprintf(stderr, "%s: %llu query errors\n", result->name.c_str(),
                 static_cast<unsigned long long>(errors.load()));
    std::exit(1);
  }
  result->traces_retained = obs::FlightRecorder::Global().trace_count();
  result->slow_captured = obs::MetricsRegistry::Global()
                              .GetCounter("mlcs.slow_query.captured")
                              ->Value() -
                          slow_before;

  // Sanity: the configuration did what its name says.
  if (result->recorder && result->traces_retained == 0) {
    std::fprintf(stderr, "%s: recorder on but ring is empty\n",
                 result->name.c_str());
    std::exit(1);
  }
  if (!result->recorder && result->traces_retained != 0) {
    std::fprintf(stderr, "%s: recorder off but ring holds %llu traces\n",
                 result->name.c_str(),
                 static_cast<unsigned long long>(result->traces_retained));
    std::exit(1);
  }
  if (result->recorder && result->slow_log && result->slow_captured == 0) {
    std::fprintf(stderr, "%s: threshold 0 captured no slow queries\n",
                 result->name.c_str());
    std::exit(1);
  }
  return wall;
}

/// Wait-histogram fidelity: N sleeps of a known length recorded into one
/// site must reproduce the wall-clock total and the right bucket.
struct FidelityResult {
  double wall_ms = 0;
  double recorded_ms = 0;
  double ratio = 0;
  uint64_t count = 0;
};

FidelityResult RunWaitFidelity() {
  FidelityResult result;
  obs::WaitSite* site = obs::WaitStats::Global().GetSite(
      obs::WaitKind::kQueue, "bench.fidelity");
  uint64_t count_before = site->Count();
  uint64_t total_before = site->TotalNs();
  constexpr int kSleeps = 20;
  constexpr auto kSleep = std::chrono::milliseconds(2);
  WallTimer timer;
  for (int i = 0; i < kSleeps; ++i) {
    auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(kSleep);
    site->RecordWaitNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  result.wall_ms = timer.ElapsedMillis();
  result.count = site->Count() - count_before;
  result.recorded_ms =
      static_cast<double>(site->TotalNs() - total_before) / 1e6;
  result.ratio =
      result.wall_ms > 0 ? result.recorded_ms / result.wall_ms : 0;
  return result;
}

}  // namespace

int main() {
  BenchConfig config;
  config.queries_per_thread = EnvSize("MLCS_OBS_BENCH_QUERIES", 60);
  config.threads = EnvSize("MLCS_OBS_BENCH_THREADS", 4);
  config.rows = EnvSize("MLCS_OBS_BENCH_ROWS", 20000);
  config.reps = EnvSize("MLCS_OBS_BENCH_REPS", 5);
  const bool strict = EnvSize("MLCS_OBS_BENCH_STRICT", 1) != 0;

  std::printf("== abl-obs2: always-on flight recorder overhead ==\n");
  std::printf("%zu threads x %zu queries, %zu rows, mean of %zu "
              "interleaved reps\n\n",
              config.threads, config.queries_per_thread, config.rows,
              config.reps);

  Database db;
  if (!PopulateVoters(&db, config.rows)) {
    std::fprintf(stderr, "table population failed\n");
    return 1;
  }
  // Warm the buffer of compiled plans / first-touch allocations once so
  // no configuration pays cold-start costs.
  {
    std::atomic<uint64_t> errors{0};
    RunQueryThread(&db, 8, 0, &errors);
    if (errors.load() != 0) {
      std::fprintf(stderr, "warmup failed\n");
      return 1;
    }
  }

  // The grid measurement, repeatable for the retry below.
  std::vector<ConfigResult> results;
  double overhead = 0;
  double noise = 0;
  double budget = 0.05;
  auto measure_grid = [&] {
    results.clear();
    for (bool recorder : {false, true}) {
      for (bool slow_log : {false, true}) {
        ConfigResult r;
        r.recorder = recorder;
        r.slow_log = slow_log;
        r.name = std::string(recorder ? "recorder" : "off") + "/" +
                 (slow_log ? "slowlog" : "off");
        results.push_back(std::move(r));
      }
    }
    // A duplicate of the baseline rides along as a noise probe: the
    // spread between two identical configurations is this run's noise
    // floor, and the overhead budget is asserted above it (shared CI
    // boxes jitter more than the effect being measured).
    {
      ConfigResult probe;
      probe.name = "off/off(probe)";
      results.push_back(std::move(probe));
    }
    // Interleaved reps (A,B,C,D, A,B,C,D, ...): thermal and scheduler
    // drift hits every configuration equally instead of biasing whichever
    // ran last. The median over reps is the per-config estimate.
    for (size_t rep = 0; rep < config.reps; ++rep) {
      for (ConfigResult& r : results) {
        r.rep_walls_ms.push_back(RunOnePass(&db, config, &r));
      }
    }
    double total_queries =
        static_cast<double>(config.queries_per_thread * config.threads);
    std::printf("%-18s %12s %12s %10s %10s\n", "config", "wall(ms)",
                "queries/s", "retained", "slow_cap");
    for (ConfigResult& r : results) {
      r.wall_ms = MedianWall(r.rep_walls_ms);
      r.queries_per_sec =
          r.wall_ms > 0 ? total_queries / (r.wall_ms / 1000.0) : 0;
      std::printf("%-18s %12.1f %12.0f %10llu %10llu\n", r.name.c_str(),
                  r.wall_ms, r.queries_per_sec,
                  static_cast<unsigned long long>(r.traces_retained),
                  static_cast<unsigned long long>(r.slow_captured));
      std::fflush(stdout);
    }
    // Paired comparison: each rep round runs every config back-to-back,
    // so the ratio within one round cancels whatever state the machine
    // was in; the median over rounds then discards rounds a scheduler
    // spike hit anyway.
    const ConfigResult& baseline = results[0];   // off/off
    const ConfigResult& always_on = results[2];  // recorder/off
    const ConfigResult& probe = results.back();  // off/off duplicate
    std::vector<double> overhead_pairs;
    std::vector<double> noise_pairs;
    for (size_t i = 0; i < config.reps; ++i) {
      if (baseline.rep_walls_ms[i] <= 0) continue;
      overhead_pairs.push_back(always_on.rep_walls_ms[i] /
                                   baseline.rep_walls_ms[i] -
                               1.0);
      noise_pairs.push_back(std::abs(
          probe.rep_walls_ms[i] / baseline.rep_walls_ms[i] - 1.0));
    }
    overhead = MedianWall(overhead_pairs);
    noise = MedianWall(noise_pairs);
    budget = 0.05 + noise;
    std::printf(
        "\nalways-on recorder overhead vs off: %+.1f%% "
        "(budget 5%% + %.1f%% noise floor)\n",
        overhead * 100.0, noise * 100.0);
  };

  measure_grid();
  if (overhead > budget) {
    // One retry: a genuinely regressed recorder fails twice in a row; a
    // scheduler artifact (cgroup throttling, noisy neighbor) almost never
    // survives an independent second measurement.
    std::printf("budget exceeded — re-measuring once to rule out "
                "scheduler interference\n\n");
    measure_grid();
  }
  // Leave the process in the default state for the metrics block below.
  obs::FlightRecorder::SetRecordingEnabled(true);
  obs::FlightRecorder::SetSlowQueryThresholdMsForTesting(
      obs::FlightRecorder::kDefaultSlowQueryMs);
  if (overhead > budget) {
    std::fprintf(stderr,
                 "always-on overhead %.1f%% exceeds the budget %.1f%% "
                 "in both measurements\n",
                 overhead * 100.0, budget * 100.0);
    if (strict) return 1;
  }

  FidelityResult fidelity = RunWaitFidelity();
  std::printf(
      "wait-histogram fidelity: %llu waits, %.1fms recorded / %.1fms wall "
      "= %.3f\n",
      static_cast<unsigned long long>(fidelity.count), fidelity.recorded_ms,
      fidelity.wall_ms, fidelity.ratio);
  // The recorded total must track wall time closely — it is measured
  // around the sleep itself, so only clock-read jitter separates them.
  if (fidelity.count != 20 || fidelity.ratio < 0.8 ||
      fidelity.ratio > 1.05) {
    std::fprintf(stderr, "wait fidelity out of range\n");
    if (strict) return 1;
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "ablation_observability");
  json.Field("mlcs_threads",
             static_cast<uint64_t>(ThreadPool::DefaultThreadCount()));
  json.Field("plan_optimizer",
             bench::PlanOptimizerEnabledByEnv() ? "on" : "off");
  bench::WriteMetricsBlock(&json);
  json.Key("workload");
  json.BeginObject();
  json.Field("queries_per_thread", config.queries_per_thread);
  json.Field("threads", config.threads);
  json.Field("rows", config.rows);
  json.Field("reps", config.reps);
  json.EndObject();
  json.Key("configs");
  json.BeginArray();
  for (const auto& r : results) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("recorder", r.recorder);
    json.Field("slow_log", r.slow_log);
    json.Field("wall_ms", r.wall_ms);
    json.Field("queries_per_sec", r.queries_per_sec);
    json.Field("traces_retained", r.traces_retained);
    json.Field("slow_captured", r.slow_captured);
    json.EndObject();
  }
  json.EndArray();
  json.Field("always_on_overhead", overhead);
  json.Field("noise_floor", noise);
  json.Key("wait_fidelity");
  json.BeginObject();
  json.Field("count", fidelity.count);
  json.Field("recorded_ms", fidelity.recorded_ms);
  json.Field("wall_ms", fidelity.wall_ms);
  json.Field("ratio", fidelity.ratio);
  json.EndObject();
  json.EndObject();
  if (!json.WriteTo("BENCH_ablation_observability.json")) {
    std::fprintf(stderr, "failed to write BENCH json\n");
    return 1;
  }
  std::printf("wrote BENCH_ablation_observability.json\n");
  return 0;
}
