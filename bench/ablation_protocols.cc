/// Ablation abl-proto: pure result-set transfer cost per protocol —
/// the micro-mechanics behind Figure 1's socket bars (cf. "Don't Hold My
/// Data Hostage", the paper's [15]).
///
/// A 100k-row, 8-int-column table is serialized and re-materialized
/// through each wire format; the in-process "zero-copy" row shows what the
/// in-database path pays instead (sharing column pointers).
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "client/protocol.h"
#include "client/sqlite_like.h"
#include "common/random.h"
#include "sql/database.h"

namespace {

using namespace mlcs;

TablePtr& Fixture() {
  static TablePtr table = [] {
    Schema s;
    for (int c = 0; c < 8; ++c) {
      std::string name = "c";
      name += std::to_string(c);
      s.AddField(std::move(name), TypeId::kInt32);
    }
    auto t = Table::Make(std::move(s));
    Rng rng(15);
    for (size_t c = 0; c < 8; ++c) {
      auto& data = t->column(c)->i32_data();
      data.resize(100000);
      for (auto& v : data) v = static_cast<int32_t>(rng.NextBounded(100000));
    }
    return t;
  }();
  return table;
}

void BM_TransferPgText(benchmark::State& state) {
  auto& t = Fixture();
  size_t bytes = 0;
  for (auto _ : state) {
    ByteWriter out;
    client::EncodeHeader(t->schema(), &out);
    if (!client::EncodeRows(*t, client::WireProtocol::kPgText, 0,
                            t->num_rows(), &out)
             .ok()) {
      state.SkipWithError("encode failed");
    }
    client::EncodeEnd(&out);
    bytes = out.size();
    ByteReader in(out.data());
    auto back = client::DecodeResultSet(&in, client::WireProtocol::kPgText);
    if (!back.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t->num_rows()));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

void BM_TransferMyBinary(benchmark::State& state) {
  auto& t = Fixture();
  size_t bytes = 0;
  for (auto _ : state) {
    ByteWriter out;
    client::EncodeHeader(t->schema(), &out);
    if (!client::EncodeRows(*t, client::WireProtocol::kMyBinary, 0,
                            t->num_rows(), &out)
             .ok()) {
      state.SkipWithError("encode failed");
    }
    client::EncodeEnd(&out);
    bytes = out.size();
    ByteReader in(out.data());
    auto back =
        client::DecodeResultSet(&in, client::WireProtocol::kMyBinary);
    if (!back.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t->num_rows()));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

/// The columnar block protocol: contiguous per-column runs, memcpy fast
/// path on both ends for this all-valid fixed-width table.
void BM_TransferColumnar(benchmark::State& state) {
  auto& t = Fixture();
  size_t bytes = 0;
  for (auto _ : state) {
    ByteWriter out;
    client::EncodeHeader(t->schema(), &out);
    if (!client::EncodeRows(*t, client::WireProtocol::kColumnar, 0,
                            t->num_rows(), &out)
             .ok()) {
      state.SkipWithError("encode failed");
    }
    client::EncodeEnd(&out);
    bytes = out.size();
    ByteReader in(out.data());
    auto back =
        client::DecodeResultSet(&in, client::WireProtocol::kColumnar);
    if (!back.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t->num_rows()));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

/// SQLite-style per-cell boxing, no serialization.
void BM_TransferRowCursor(benchmark::State& state) {
  static Database* db = [] {
    auto* d = new Database();
    (void)d->catalog().CreateTable("t", Fixture());
    return d;
  }();
  for (auto _ : state) {
    auto back = client::FetchAllRowAtATime(db, "SELECT * FROM t");
    if (!back.ok()) state.SkipWithError("cursor fetch failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Fixture()->num_rows()));
}

/// What the in-database UDF path pays: nothing but pointer sharing.
void BM_TransferZeroCopyColumns(benchmark::State& state) {
  auto& t = Fixture();
  for (auto _ : state) {
    std::vector<ColumnPtr> handoff;
    handoff.reserve(t->num_columns());
    for (size_t c = 0; c < t->num_columns(); ++c) {
      handoff.push_back(t->column(c));
    }
    benchmark::DoNotOptimize(handoff);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t->num_rows()));
}

BENCHMARK(BM_TransferPgText);
BENCHMARK(BM_TransferMyBinary);
BENCHMARK(BM_TransferColumnar);
BENCHMARK(BM_TransferRowCursor);
BENCHMARK(BM_TransferZeroCopyColumns);

}  // namespace

MLCS_BENCH_MAIN(ablation_protocols)
