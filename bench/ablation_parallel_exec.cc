/// Ablation abl-par-exec: morsel-driven parallel relational operators
/// (PR 3) — each operator measured over an nthreads grid on dedicated
/// pools, plus a `serial0` baseline that reproduces the pre-morsel code
/// path exactly (one morsel spanning the whole input, executed inline).
/// The interesting deltas:
///
///   serial0 vs nthreads=1  — scheduling overhead of the morsel layer when
///                            it cannot help (target: <= 5%),
///   nthreads=1 vs 2 vs 4   — scaling (reported, not gated: CI has 1 core).
///
/// Results land in BENCH_ablation_parallel_exec.json; the context block's
/// "mlcs_threads" field records the pool size MLCS_THREADS would give.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "common/parallel_for.h"
#include "common/random.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/kernels.h"
#include "exec/sort.h"
#include "obs/trace.h"

namespace {

using namespace mlcs;

constexpr size_t kRows = 1 << 20;
constexpr size_t kGroups = 2751;  // the paper's precinct count

struct Fixture {
  TablePtr facts;      // (key, payload, weight) — voters-shaped
  TablePtr dimension;  // (key, attr)            — precincts-shaped
  ColumnPtr half_mask;
};

Fixture& Data() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(71);
    Schema fs;
    fs.AddField("key", TypeId::kInt32);
    fs.AddField("payload", TypeId::kInt32);
    fs.AddField("weight", TypeId::kDouble);
    f->facts = Table::Make(std::move(fs));
    auto& key = f->facts->column(0)->i32_data();
    auto& payload = f->facts->column(1)->i32_data();
    auto& weight = f->facts->column(2)->f64_data();
    key.resize(kRows);
    payload.resize(kRows);
    weight.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      key[i] = static_cast<int32_t>(rng.NextBounded(kGroups));
      payload[i] = static_cast<int32_t>(rng.NextBounded(1000));
      weight[i] = rng.NextDouble();
    }
    Schema ds;
    ds.AddField("key", TypeId::kInt32);
    ds.AddField("attr", TypeId::kInt32);
    f->dimension = Table::Make(std::move(ds));
    for (size_t g = 0; g < kGroups; ++g) {
      (void)f->dimension->AppendRow(
          {Value::Int32(static_cast<int32_t>(g)),
           Value::Int32(static_cast<int32_t>(g * 7))});
    }
    std::vector<uint8_t> mask(kRows);
    for (size_t i = 0; i < kRows; ++i) mask[i] = rng.NextBounded(2);
    f->half_mask = Column::FromBool(std::move(mask));
    return f;
  }();
  return *fixture;
}

/// Grid axis: 0 = serial0 baseline (single morsel, inline — the exact
/// pre-morsel code path); N > 0 = N-thread pool with the default morsel
/// width.
MorselPolicy PolicyFor(int64_t nthreads) {
  static ThreadPool* pool1 = new ThreadPool(1);
  static ThreadPool* pool2 = new ThreadPool(2);
  static ThreadPool* pool4 = new ThreadPool(4);
  MorselPolicy policy;
  switch (nthreads) {
    case 0:
      policy.pool = pool1;
      policy.morsel_rows = kRows;  // one morsel → inline serial fast path
      break;
    case 1:
      policy.pool = pool1;
      break;
    case 2:
      policy.pool = pool2;
      break;
    default:
      policy.pool = pool4;
      break;
  }
  return policy;
}

void BM_BinaryKernelAdd(benchmark::State& state) {
  auto& f = Data();
  MorselPolicy policy = PolicyFor(state.range(0));
  for (auto _ : state) {
    auto r = exec::BinaryKernel(exec::BinOpKind::kAdd, *f.facts->column(1),
                                *f.facts->column(2), policy);
    if (!r.ok()) state.SkipWithError("kernel failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_Filter50Percent(benchmark::State& state) {
  auto& f = Data();
  MorselPolicy policy = PolicyFor(state.range(0));
  for (auto _ : state) {
    auto r = exec::FilterTable(*f.facts, *f.half_mask, policy);
    if (!r.ok()) state.SkipWithError("filter failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_HashJoinFactsToDimension(benchmark::State& state) {
  auto& f = Data();
  MorselPolicy policy = PolicyFor(state.range(0));
  for (auto _ : state) {
    auto r = exec::HashJoin(*f.facts, *f.dimension, {"key"}, {"key"},
                            exec::JoinType::kInner, policy);
    if (!r.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_HashGroupBy(benchmark::State& state) {
  auto& f = Data();
  MorselPolicy policy = PolicyFor(state.range(0));
  std::vector<exec::AggSpec> aggs = {
      {exec::AggOp::kSum, "weight", "total"},
      {exec::AggOp::kCountStar, "", "n"}};
  for (auto _ : state) {
    auto r = exec::HashGroupBy(*f.facts, {"key"}, aggs, policy);
    if (!r.ok()) state.SkipWithError("group-by failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_SortByPayloadKey(benchmark::State& state) {
  auto& f = Data();
  MorselPolicy policy = PolicyFor(state.range(0));
  std::vector<exec::SortKey> keys = {{"payload", false}, {"key", true}};
  for (auto _ : state) {
    auto r = exec::SortTable(*f.facts, keys, policy);
    if (!r.ok()) state.SkipWithError("sort failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

/// Tracing-overhead ablation (the DESIGN.md §10 contract: <= 5% slower
/// with tracing on, ~0% off). One filter+aggregate SELECT through the full
/// SQL stack — parse/plan skipped after the first hit, operators traced
/// per execution — with the `traced` axis flipping the global flag.
/// Reported, not gated; EXPERIMENTS.md records the comparison.
void BM_SqlQueryTracing(benchmark::State& state) {
  static Database* db = [] {
    auto* d = new Database();
    MLCS_CHECK_OK(d->catalog().CreateTable("facts", Data().facts));
    return d;
  }();
  obs::SetTracingEnabled(state.range(0) != 0);
  for (auto _ : state) {
    auto r = db->Query(
        "SELECT key, COUNT(*), SUM(weight) FROM facts "
        "WHERE payload > 500 GROUP BY key");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
  obs::SetTracingEnabled(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

#define MLCS_PAR_EXEC_GRID(fn) \
  BENCHMARK(fn)->ArgName("nthreads")->Arg(0)->Arg(1)->Arg(2)->Arg(4)

MLCS_PAR_EXEC_GRID(BM_BinaryKernelAdd);
MLCS_PAR_EXEC_GRID(BM_Filter50Percent);
MLCS_PAR_EXEC_GRID(BM_HashJoinFactsToDimension);
MLCS_PAR_EXEC_GRID(BM_HashGroupBy);
MLCS_PAR_EXEC_GRID(BM_SortByPayloadKey);
BENCHMARK(BM_SqlQueryTracing)->ArgName("traced")->Arg(0)->Arg(1);

}  // namespace

MLCS_BENCH_MAIN(ablation_parallel_exec)
