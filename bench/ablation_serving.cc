/// Ablation abl-serve: micro-batched columnar serving vs unbatched
/// row-major RPC — the request-path analogue of abl-vec's vectorized vs
/// row-at-a-time UDF contrast.
///
/// Concurrent pipelined clients fire tiny predict requests at an
/// InferenceServer in four configurations ({unbatched, batched} x
/// {row-major, columnar}). Unbatched pays the full per-request toll —
/// model lookup in the store, blob hash, dispatch — once per request;
/// micro-batching amortizes it across every request the linger window
/// coalesces, exactly as vectorization amortizes per-row UDF overhead.
/// A final scenario overloads a tiny admission queue on purpose and
/// checks that degradation is explicit: every request is answered, the
/// excess with `overloaded`, and the queue depth never passes its bound.
///
/// Scale knobs (defaults CI-sized):
///   MLCS_SERVE_BENCH_REQUESTS   total predict requests    (default 2000)
///   MLCS_SERVE_BENCH_CLIENTS    concurrent clients        (default 4)
///   MLCS_SERVE_BENCH_ROWS       rows per request          (default 1)
///   MLCS_SERVE_BENCH_FEATURES   feature columns           (default 8)
///   MLCS_SERVE_BENCH_WINDOW     outstanding reqs/client   (default 16)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/inference_client.h"
#include "common/random.h"
#include "common/timer.h"
#include "json_util.h"
#include "ml/logistic_regression.h"
#include "modelstore/model_cache.h"
#include "modelstore/model_store.h"
#include "serve/inference_server.h"
#include "sql/database.h"

namespace {

using namespace mlcs;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

struct BenchConfig {
  size_t requests = 2000;
  size_t clients = 4;
  size_t rows_per_request = 1;
  size_t features = 8;
  size_t window = 16;
};

struct ClientOutcome {
  std::vector<double> latencies_ms;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t other = 0;
};

struct ScenarioResult {
  std::string name;
  bool batching = false;
  serve::Layout layout = serve::Layout::kRowMajor;
  double wall_ms = 0;
  double rows_per_sec = 0;
  double requests_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double avg_batch_requests = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t other = 0;
  serve::InferenceServerStats stats;
};

ml::Matrix RequestMatrix(const BenchConfig& config, uint64_t seed) {
  Rng rng(seed);
  ml::Matrix x(config.rows_per_request, config.features);
  for (size_t r = 0; r < config.rows_per_request; ++r) {
    for (size_t c = 0; c < config.features; ++c) {
      x.Set(r, c, rng.NextGaussian());
    }
  }
  return x;
}

/// One pipelined client: keeps up to `window` requests outstanding and
/// records the client-observed latency of each.
void RunClient(uint16_t port, const BenchConfig& config,
               serve::Layout layout, size_t per_client, uint64_t seed,
               ClientOutcome* out) {
  client::InferenceClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    out->other += per_client;
    return;
  }
  ml::Matrix x = RequestMatrix(config, seed);
  client::InferenceCallOptions call;
  call.layout = layout;
  using Clock = std::chrono::steady_clock;
  std::unordered_map<uint64_t, Clock::time_point> inflight;
  out->latencies_ms.reserve(per_client);
  size_t sent = 0;
  size_t received = 0;
  while (received < per_client) {
    while (sent < per_client && inflight.size() < config.window) {
      auto id = client.Send("serve_lr", x, call);
      if (!id.ok()) {
        out->other += per_client - received;
        return;
      }
      inflight.emplace(id.ValueOrDie(), Clock::now());
      ++sent;
    }
    auto response = client.Receive();
    if (!response.ok()) {
      out->other += per_client - received;
      return;
    }
    auto now = Clock::now();
    const serve::PredictResponse& r = response.ValueOrDie();
    auto it = inflight.find(r.request_id);
    if (it != inflight.end()) {
      out->latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - it->second)
              .count());
      inflight.erase(it);
    }
    ++received;
    switch (r.code) {
      case serve::ServeCode::kOk:
        ++out->ok;
        break;
      case serve::ServeCode::kOverloaded:
        ++out->overloaded;
        break;
      default:
        ++out->other;
    }
  }
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values->size()));
  if (idx >= values->size()) idx = values->size() - 1;
  return (*values)[idx];
}

ScenarioResult RunScenario(Database* db, modelstore::ModelStore* store,
                           const BenchConfig& config, bool batching,
                           serve::Layout layout) {
  ScenarioResult result;
  result.batching = batching;
  result.layout = layout;
  result.name = std::string(batching ? "batched" : "unbatched") + "/" +
                serve::LayoutToString(layout);

  // Fresh cache per scenario so no configuration inherits warm state.
  modelstore::ModelCache cache(4);
  serve::InferenceServerOptions opts;
  opts.batching_enabled = batching;
  opts.max_batch_rows = 1024;
  opts.batch_linger = std::chrono::microseconds(200);
  opts.max_queue_requests = 1024;
  opts.model_cache = &cache;
  serve::InferenceServer server(db, store, opts);
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "server start failed\n");
    return result;
  }

  size_t per_client = config.requests / config.clients;
  std::vector<ClientOutcome> outcomes(config.clients);
  std::vector<std::thread> threads;
  WallTimer timer;
  for (size_t c = 0; c < config.clients; ++c) {
    threads.emplace_back(RunClient, server.port(), std::cref(config),
                         layout, per_client, 1000 + c, &outcomes[c]);
  }
  for (auto& t : threads) t.join();
  result.wall_ms = timer.ElapsedMillis();
  server.Stop();
  result.stats = server.stats();

  std::vector<double> latencies;
  for (const auto& o : outcomes) {
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
    result.ok += o.ok;
    result.overloaded += o.overloaded;
    result.other += o.other;
  }
  double wall_s = result.wall_ms / 1000.0;
  double answered = static_cast<double>(per_client * config.clients);
  result.requests_per_sec = wall_s > 0 ? answered / wall_s : 0;
  result.rows_per_sec =
      wall_s > 0 ? answered * static_cast<double>(config.rows_per_request) /
                       wall_s
                 : 0;
  result.p50_ms = Percentile(&latencies, 0.50);
  result.p99_ms = Percentile(&latencies, 0.99);
  result.avg_batch_requests =
      result.stats.batches_executed > 0
          ? static_cast<double>(result.stats.batched_requests) /
                static_cast<double>(result.stats.batches_executed)
          : 0;
  return result;
}

/// Overload scenario: a queue far smaller than the in-flight window, plus
/// a batch hook that slows the consumer, guarantees rejections. The
/// properties checked are the serving contract: every request answered,
/// overflow answered `overloaded`, queue depth never above the bound.
ScenarioResult RunOverloadScenario(Database* db,
                                   modelstore::ModelStore* store,
                                   const BenchConfig& config) {
  ScenarioResult result;
  result.name = "overload";
  constexpr size_t kQueueCap = 8;
  modelstore::ModelCache cache(4);
  serve::InferenceServerOptions opts;
  opts.max_queue_requests = kQueueCap;
  opts.batch_linger = std::chrono::microseconds(200);
  opts.model_cache = &cache;
  // Slow the batcher so admission genuinely overflows on any machine.
  opts.test_batch_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  serve::InferenceServer server(db, store, opts);
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "server start failed\n");
    return result;
  }
  BenchConfig flood = config;
  flood.window = 256;
  size_t per_client = std::max<size_t>(config.requests / 4, 256);
  ClientOutcome outcome;
  WallTimer timer;
  RunClient(server.port(), flood, serve::Layout::kColumnar, per_client,
            4242, &outcome);
  result.wall_ms = timer.ElapsedMillis();
  server.Stop();
  result.stats = server.stats();
  result.ok = outcome.ok;
  result.overloaded = outcome.overloaded;
  result.other = outcome.other;
  bool all_answered =
      outcome.ok + outcome.overloaded + outcome.other == per_client;
  bool bound_held = result.stats.peak_queue_depth <= kQueueCap;
  std::printf(
      "overload: %llu ok, %llu overloaded, %llu other "
      "(all answered: %s; peak queue %llu <= %zu: %s)\n",
      static_cast<unsigned long long>(outcome.ok),
      static_cast<unsigned long long>(outcome.overloaded),
      static_cast<unsigned long long>(outcome.other),
      all_answered ? "yes" : "NO",
      static_cast<unsigned long long>(result.stats.peak_queue_depth),
      kQueueCap, bound_held ? "yes" : "NO");
  if (!all_answered || !bound_held || outcome.overloaded == 0) {
    std::fprintf(stderr,
                 "overload contract violated (answered=%d bound=%d "
                 "overloaded=%llu)\n",
                 all_answered, bound_held,
                 static_cast<unsigned long long>(outcome.overloaded));
    std::exit(1);
  }
  return result;
}

void PrintScenario(const ScenarioResult& r) {
  std::printf("%-22s %12.0f %12.0f %9.3f %9.3f %10.1f\n", r.name.c_str(),
              r.rows_per_sec, r.requests_per_sec, r.p50_ms, r.p99_ms,
              r.avg_batch_requests);
  std::fflush(stdout);
}

}  // namespace

int main() {
  BenchConfig config;
  config.requests = EnvSize("MLCS_SERVE_BENCH_REQUESTS", 2000);
  config.clients = EnvSize("MLCS_SERVE_BENCH_CLIENTS", 4);
  config.rows_per_request = EnvSize("MLCS_SERVE_BENCH_ROWS", 1);
  config.features = EnvSize("MLCS_SERVE_BENCH_FEATURES", 8);
  config.window = EnvSize("MLCS_SERVE_BENCH_WINDOW", 16);

  std::printf("== abl-serve: micro-batched columnar serving ==\n");
  std::printf(
      "%zu requests, %zu clients, %zu rows/request, %zu features, "
      "window %zu\n\n",
      config.requests, config.clients, config.rows_per_request,
      config.features, config.window);

  Database db;
  modelstore::ModelStore store(&db);
  if (!store.Init().ok()) {
    std::fprintf(stderr, "model store init failed\n");
    return 1;
  }
  {
    Rng rng(3);
    ml::Matrix train(256, config.features);
    ml::Labels labels(256);
    for (size_t r = 0; r < 256; ++r) {
      int cls = static_cast<int>(r % 2);
      for (size_t c = 0; c < config.features; ++c) {
        train.Set(r, c, rng.NextGaussian() + cls * 2.0);
      }
      labels[r] = cls;
    }
    ml::LogisticRegression model{ml::LogisticRegressionOptions{}};
    if (!model.Fit(train, labels).ok() ||
        !store.SaveModel("serve_lr", model, 0.95,
                         static_cast<int64_t>(train.rows()))
             .ok()) {
      std::fprintf(stderr, "model training/save failed\n");
      return 1;
    }
  }

  std::printf("%-22s %12s %12s %9s %9s %10s\n", "scenario", "rows/s",
              "reqs/s", "p50(ms)", "p99(ms)", "avg_batch");
  std::vector<ScenarioResult> scenarios;
  for (bool batching : {false, true}) {
    for (serve::Layout layout :
         {serve::Layout::kRowMajor, serve::Layout::kColumnar}) {
      scenarios.push_back(
          RunScenario(&db, &store, config, batching, layout));
      PrintScenario(scenarios.back());
    }
  }
  ScenarioResult overload = RunOverloadScenario(&db, &store, config);

  const ScenarioResult& baseline = scenarios[0];   // unbatched/row-major
  const ScenarioResult& full = scenarios.back();   // batched/columnar
  std::printf(
      "\nmicro-batched columnar vs unbatched row-major: %.2fx rows/s\n",
      baseline.rows_per_sec > 0 ? full.rows_per_sec / baseline.rows_per_sec
                                : 0.0);
  // The throughput comparison needs enough requests to rise above
  // scheduler noise; MLCS_SERVE_BENCH_STRICT=0 (check.sh --bench-smoke)
  // demotes a violation to a warning at tiny scale. The overload-contract
  // checks above are behavioral and stay fatal at any scale.
  if (full.rows_per_sec <= baseline.rows_per_sec) {
    std::fprintf(stderr,
                 "expected shape violated: batched columnar (%.0f rows/s) "
                 "did not beat unbatched row-major (%.0f rows/s)\n",
                 full.rows_per_sec, baseline.rows_per_sec);
    if (EnvSize("MLCS_SERVE_BENCH_STRICT", 1) != 0) return 1;
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "ablation_serving");
  json.Field("mlcs_threads",
             static_cast<uint64_t>(ThreadPool::DefaultThreadCount()));
  json.Field("plan_optimizer",
             bench::PlanOptimizerEnabledByEnv() ? "on" : "off");
  bench::WriteMetricsBlock(&json);
  json.Key("workload");
  json.BeginObject();
  json.Field("requests", config.requests);
  json.Field("clients", config.clients);
  json.Field("rows_per_request", config.rows_per_request);
  json.Field("features", config.features);
  json.Field("window", config.window);
  json.EndObject();
  json.Key("scenarios");
  json.BeginArray();
  for (const auto& r : scenarios) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("wall_ms", r.wall_ms);
    json.Field("rows_per_sec", r.rows_per_sec);
    json.Field("requests_per_sec", r.requests_per_sec);
    json.Field("p50_ms", r.p50_ms);
    json.Field("p99_ms", r.p99_ms);
    json.Field("avg_batch_requests", r.avg_batch_requests);
    json.Field("ok", r.ok);
    json.Field("batches_executed", r.stats.batches_executed);
    json.Field("peak_batch_requests", r.stats.peak_batch_requests);
    json.EndObject();
  }
  json.EndArray();
  json.Key("overload");
  json.BeginObject();
  json.Field("ok", overload.ok);
  json.Field("overloaded", overload.overloaded);
  json.Field("other", overload.other);
  json.Field("peak_queue_depth", overload.stats.peak_queue_depth);
  json.Field("rejected_overload", overload.stats.rejected_overload);
  json.EndObject();
  json.EndObject();
  if (!json.WriteTo("BENCH_ablation_serving.json")) {
    std::fprintf(stderr, "failed to write BENCH json\n");
    return 1;
  }
  std::printf("wrote BENCH_ablation_serving.json\n");
  return 0;
}
