/// Ablation abl-split: histogram vs exact CART splitter — the substrate
/// design choice DESIGN.md §4 calls out. The histogram splitter is
/// O(n·d·bins) per node; the exact splitter sorts candidates
/// (O(n log n · d) per node). Counters report training accuracy so the
/// speed/quality trade is visible in one table.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace {

using namespace mlcs;

struct Fixture {
  ml::Matrix x;
  ml::Labels y;
};

Fixture& Data() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(77);
    constexpr size_t kRows = 50000, kCols = 16;
    f->x = ml::Matrix(kRows, kCols);
    f->y.resize(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
      for (size_t c = 0; c < kCols; ++c) {
        double signal = c < 4 ? cls * 1.5 : 0.0;  // 4 informative features
        f->x.Set(r, c, signal + rng.NextGaussian());
      }
      f->y[r] = cls;
    }
    return f;
  }();
  return *fixture;
}

void RunSplitter(benchmark::State& state, bool exact, int bins) {
  double accuracy = 0;
  for (auto _ : state) {
    ml::DecisionTreeOptions opt;
    opt.max_depth = 10;
    opt.exact_splits = exact;
    opt.num_bins = bins;
    ml::DecisionTree tree(opt);
    if (!tree.Fit(Data().x, Data().y).ok()) {
      state.SkipWithError("fit failed");
      break;
    }
    auto pred = tree.Predict(Data().x);
    if (pred.ok()) {
      accuracy = ml::Accuracy(Data().y, pred.ValueOrDie()).ValueOr(0);
    }
    benchmark::DoNotOptimize(tree);
  }
  state.counters["train_accuracy"] = accuracy;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Data().x.rows()));
}

void BM_HistogramSplitter(benchmark::State& state) {
  RunSplitter(state, /*exact=*/false, static_cast<int>(state.range(0)));
}

void BM_ExactSplitter(benchmark::State& state) {
  RunSplitter(state, /*exact=*/true, 32);
}

BENCHMARK(BM_HistogramSplitter)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_ExactSplitter);

}  // namespace

MLCS_BENCH_MAIN(ablation_tree_splitter)
