#ifndef MLCS_BENCH_JSON_UTIL_H_
#define MLCS_BENCH_JSON_UTIL_H_

// Minimal streaming JSON writer for the custom benchmark harnesses (fig1,
// ablation_serving). The google-benchmark binaries get their JSON from the
// library's own JSONReporter (see bench_main.h); this exists so the custom
// harnesses emit the same machine-readable BENCH_<name>.json artifacts.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mlcs::bench {

/// Whether the plan rewrite rules are active for Databases created in this
/// process (MLCS_DISABLE_OPTIMIZER, see sql/database.h). Every bench JSON
/// records this so a result file says which planner produced it.
inline bool PlanOptimizerEnabledByEnv() {
  const char* disable = std::getenv("MLCS_DISABLE_OPTIMIZER");
  return disable == nullptr || disable[0] == '\0';
}

class JsonWriter {
 public:
  void BeginObject() {
    Comma();
    out_ << '{';
    stack_.push_back(true);
  }
  void EndObject() {
    out_ << '}';
    stack_.pop_back();
  }
  void BeginArray() {
    Comma();
    out_ << '[';
    stack_.push_back(true);
  }
  void EndArray() {
    out_ << ']';
    stack_.pop_back();
  }
  void Key(const std::string& name) {
    Comma();
    WriteString(name);
    out_ << ':';
    pending_value_ = true;
  }
  void Value(const std::string& v) {
    Comma();
    WriteString(v);
  }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    Comma();
    std::ostringstream s;
    s.precision(12);
    s << v;
    out_ << s.str();
  }
  void Value(uint64_t v) {
    Comma();
    out_ << v;
  }
  void Value(int v) {
    Comma();
    out_ << v;
  }
  void Value(bool v) {
    Comma();
    out_ << (v ? "true" : "false");
  }

  template <typename T>
  void Field(const std::string& name, T v) {
    Key(name);
    Value(v);
  }

  std::string str() const { return out_.str(); }

  /// Writes the accumulated document to `path` with a trailing newline.
  [[nodiscard]] bool WriteTo(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << out_.str() << '\n';
    return static_cast<bool>(f);
  }

 private:
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // this value belongs to the key just written
    }
    if (!stack_.empty() && !stack_.back()) out_ << ',';
    if (!stack_.empty()) stack_.back() = false;
  }
  void WriteString(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  /// One flag per open container: true = no element written yet.
  std::vector<bool> stack_;
  bool pending_value_ = false;
};

/// Writes the process-wide metrics registry snapshot as an "mlcs_metrics"
/// object field: series name → value. Every BENCH_<name>.json carries this
/// block (scripts/check.sh --bench-smoke asserts it), so a result file
/// always records the cache/pool/serving counters behind its timings.
inline void WriteMetricsBlock(JsonWriter* w) {
  w->Key("mlcs_metrics");
  w->BeginObject();
  for (const obs::MetricSample& s : obs::MetricsRegistry::Global().Snapshot()) {
    w->Field(s.name, s.value);
  }
  w->EndObject();
}

}  // namespace mlcs::bench

#endif  // MLCS_BENCH_JSON_UTIL_H_
