/// Figure 1 reproduction — "Voter Classification Benchmark".
///
/// Runs the complete voter-classification pipeline once per data channel
/// and prints one row per bar of the paper's Figure 1: total pipeline time
/// plus the load/initial-wrangling share (the paper's gray sub-bar).
///
/// Scale knobs (defaults keep the suite CI-sized; the paper's full scale
/// is rows=7500000):
///   MLCS_FIG1_ROWS       voters            (default 100000)
///   MLCS_FIG1_COLS       voter columns     (default 96, as in the paper)
///   MLCS_FIG1_PRECINCTS  precincts         (default 2751, as in the paper)
///   MLCS_FIG1_TREES      n_estimators      (default 8)
///   MLCS_FIG1_REPS       repetitions; the min-total run is reported
///                        (default 3)
///
/// Expected shape (paper §4): the in-database channel is fastest with an
/// order-of-magnitude lower wrangling share; binary files (npy, h5b) load
/// fast but stay slower overall; CSV is comparable to socket transfer;
/// the socket channels are the slowest.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "client/server.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "io/csv.h"
#include "io/h5b.h"
#include "io/npy.h"
#include "json_util.h"
#include "pipeline/voter_pipeline.h"
#include "sql/database.h"

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

size_t g_reps = 1;
std::vector<mlcs::pipeline::PipelineResult> g_results;

/// Runs a channel g_reps times and keeps the fastest run (min total) —
/// standard practice to suppress scheduler noise on a busy host.
template <typename Fn>
mlcs::Result<mlcs::pipeline::PipelineResult> Repeated(Fn&& run) {
  mlcs::Result<mlcs::pipeline::PipelineResult> best = run();
  if (!best.ok()) return best;
  for (size_t i = 1; i < g_reps; ++i) {
    auto next = run();
    if (!next.ok()) return next;
    if (next.ValueOrDie().total_seconds < best.ValueOrDie().total_seconds) {
      best = std::move(next);
    }
  }
  return best;
}

void PrintRow(const mlcs::pipeline::PipelineResult& r) {
  std::printf("%-28s %12.3f %10.3f %11.3f %11.3f %8.4f\n",
              r.method.c_str(), r.load_wrangle_seconds, r.train_seconds,
              r.predict_seconds, r.total_seconds, r.precinct_share_mae);
  std::fflush(stdout);
  g_results.push_back(r);
}

/// Machine-readable twin of the printed table, same schema for every
/// bench binary: BENCH_<name>.json in the working directory.
bool WriteJson(const mlcs::pipeline::PipelineConfig& config) {
  mlcs::bench::JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "fig1_voter_classification");
  json.Field("mlcs_threads",
             static_cast<uint64_t>(mlcs::ThreadPool::DefaultThreadCount()));
  json.Field("plan_optimizer",
             mlcs::bench::PlanOptimizerEnabledByEnv() ? "on" : "off");
  mlcs::bench::WriteMetricsBlock(&json);
  json.Key("workload");
  json.BeginObject();
  json.Field("rows", config.data.num_voters);
  json.Field("cols", config.data.num_columns);
  json.Field("precincts", config.data.num_precincts);
  json.Field("n_estimators", config.n_estimators);
  json.Field("reps", g_reps);
  json.EndObject();
  json.Key("channels");
  json.BeginArray();
  for (const auto& r : g_results) {
    json.BeginObject();
    json.Field("method", r.method);
    json.Field("load_wrangle_seconds", r.load_wrangle_seconds);
    json.Field("train_seconds", r.train_seconds);
    json.Field("predict_seconds", r.predict_seconds);
    json.Field("total_seconds", r.total_seconds);
    json.Field("precinct_share_mae", r.precinct_share_mae);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.WriteTo("BENCH_fig1_voter_classification.json");
}

bool Check(const mlcs::Status& st, const char* what) {
  if (st.ok()) return true;
  std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
  return false;
}

}  // namespace

int main() {
  using namespace mlcs;
  pipeline::PipelineConfig config;
  config.data.num_voters = EnvSize("MLCS_FIG1_ROWS", 100000);
  config.data.num_columns = EnvSize("MLCS_FIG1_COLS", 96);
  config.data.num_precincts = EnvSize("MLCS_FIG1_PRECINCTS", 2751);
  config.n_estimators = static_cast<int>(EnvSize("MLCS_FIG1_TREES", 8));
  g_reps = EnvSize("MLCS_FIG1_REPS", 3);

  std::printf("== Figure 1: Voter Classification Benchmark ==\n");
  std::printf("dataset: %zu voters x %zu columns, %zu precincts; "
              "random forest n_estimators=%d\n\n",
              config.data.num_voters, config.data.num_columns,
              config.data.num_precincts, config.n_estimators);

  // Stage the external inputs (write time is not part of any bar — the
  // paper's files pre-exist on disk).
  std::string dir = "/tmp/mlcs_fig1";
  mkdir(dir.c_str(), 0755);
  std::string voters_npy = dir + "/voters_npy";
  std::string precincts_npy = dir + "/precincts_npy";
  mkdir(voters_npy.c_str(), 0755);
  mkdir(precincts_npy.c_str(), 0755);

  auto voters = io::GenerateVoters(config.data);
  auto precincts = io::GeneratePrecincts(config.data);
  if (!voters.ok() || !precincts.ok()) {
    std::fprintf(stderr, "data generation failed\n");
    return 1;
  }
  WallTimer stage_timer;
  if (!Check(io::WriteCsv(*voters.ValueOrDie(), dir + "/voters.csv"),
             "stage csv") ||
      !Check(io::WriteCsv(*precincts.ValueOrDie(), dir + "/precincts.csv"),
             "stage csv") ||
      !Check(io::SaveTableAsNpyDir(*voters.ValueOrDie(), voters_npy),
             "stage npy") ||
      !Check(io::SaveTableAsNpyDir(*precincts.ValueOrDie(), precincts_npy),
             "stage npy") ||
      !Check(io::WriteH5b(*voters.ValueOrDie(), dir + "/voters.h5b"),
             "stage h5b") ||
      !Check(io::WriteH5b(*precincts.ValueOrDie(), dir + "/precincts.h5b"),
             "stage h5b")) {
    return 1;
  }
  std::printf("staged file inputs in %s (%.2fs, not counted)\n\n",
              dir.c_str(), stage_timer.ElapsedSeconds());

  std::printf("%-28s %12s %10s %11s %11s %8s\n", "method",
              "wrangle(s)", "train(s)", "predict(s)", "total(s)", "mae");

  // In-database (MonetDB/Python analogue).
  {
    Database db;
    if (!Check(pipeline::LoadVoterData(&db, config), "load")) return 1;
    auto r = Repeated([&] { return pipeline::RunInDatabase(&db, config); });
    if (!Check(r.status(), "in-database")) return 1;
    PrintRow(r.ValueOrDie());
  }
  // Binary files.
  {
    auto r = Repeated(
        [&] { return pipeline::RunFromNpyDir(voters_npy, precincts_npy,
                                             config); });
    if (!Check(r.status(), "npy")) return 1;
    PrintRow(r.ValueOrDie());
  }
  {
    auto r = Repeated([&] {
      return pipeline::RunFromH5b(dir + "/voters.h5b",
                                  dir + "/precincts.h5b", config);
    });
    if (!Check(r.status(), "h5b")) return 1;
    PrintRow(r.ValueOrDie());
  }
  // CSV text.
  {
    auto r = Repeated([&] {
      return pipeline::RunFromCsv(dir + "/voters.csv",
                                  dir + "/precincts.csv", config);
    });
    if (!Check(r.status(), "csv")) return 1;
    PrintRow(r.ValueOrDie());
  }
  // Socket channels (PostgreSQL-like text, MySQL-like binary).
  {
    Database server_db;
    if (!Check(pipeline::LoadVoterData(&server_db, config), "server load") ||
        !Check(pipeline::RegisterVoterUdfs(&server_db), "server udfs")) {
      return 1;
    }
    client::TableServer server(&server_db);
    if (!Check(server.Start(0), "server start")) return 1;
    for (auto protocol :
         {client::WireProtocol::kPgText, client::WireProtocol::kMyBinary,
          client::WireProtocol::kColumnar}) {
      auto r = Repeated([&] {
        return pipeline::RunFromSocket("127.0.0.1", server.port(), protocol,
                                       config);
      });
      if (!Check(r.status(), "socket")) return 1;
      PrintRow(r.ValueOrDie());
    }
    server.Stop();
  }
  // SQLite-like in-process row-at-a-time.
  {
    Database db;
    if (!Check(pipeline::LoadVoterData(&db, config), "load")) return 1;
    auto r = Repeated([&] { return pipeline::RunSqliteLike(&db, config); });
    if (!Check(r.status(), "sqlite-like")) return 1;
    PrintRow(r.ValueOrDie());
  }

  std::printf(
      "\nshape check (paper): in-database fastest, wrangle share ~an order "
      "of magnitude below the socket channels; binary files fast to load; "
      "csv comparable to sockets.\n");
  if (!WriteJson(config)) {
    std::fprintf(stderr, "failed to write BENCH json\n");
    return 1;
  }
  std::printf("wrote BENCH_fig1_voter_classification.json\n");
  return 0;
}
