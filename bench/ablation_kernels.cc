/// Ablation abl-kern: throughput of the relational substrate operators
/// that produce Figure 1's wrangling bar — filter, hash join (7.5M:2751
/// shape scaled down), and hash group-by.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "common/random.h"
#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/kernels.h"

namespace {

using namespace mlcs;

constexpr size_t kRows = 1 << 20;
constexpr size_t kGroups = 2751;  // the paper's precinct count

struct Fixture {
  TablePtr facts;      // (key, payload) — voters-shaped
  TablePtr dimension;  // (key, attr)    — precincts-shaped
  ColumnPtr half_mask;
};

Fixture& Data() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(33);
    Schema fs;
    fs.AddField("key", TypeId::kInt32);
    fs.AddField("payload", TypeId::kInt32);
    f->facts = Table::Make(std::move(fs));
    auto& key = f->facts->column(0)->i32_data();
    auto& payload = f->facts->column(1)->i32_data();
    key.resize(kRows);
    payload.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      key[i] = static_cast<int32_t>(rng.NextBounded(kGroups));
      payload[i] = static_cast<int32_t>(rng.NextBounded(1000));
    }
    Schema ds;
    ds.AddField("key", TypeId::kInt32);
    ds.AddField("attr", TypeId::kInt32);
    f->dimension = Table::Make(std::move(ds));
    for (size_t g = 0; g < kGroups; ++g) {
      (void)f->dimension->AppendRow(
          {Value::Int32(static_cast<int32_t>(g)),
           Value::Int32(static_cast<int32_t>(g * 7))});
    }
    std::vector<uint8_t> mask(kRows);
    for (size_t i = 0; i < kRows; ++i) mask[i] = rng.NextBounded(2);
    f->half_mask = Column::FromBool(std::move(mask));
    return f;
  }();
  return *fixture;
}

void BM_Filter50Percent(benchmark::State& state) {
  auto& f = Data();
  for (auto _ : state) {
    auto r = exec::FilterTable(*f.facts, *f.half_mask);
    if (!r.ok()) state.SkipWithError("filter failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_VectorizedCompare(benchmark::State& state) {
  auto& f = Data();
  auto threshold = Column::Constant(Value::Int32(500), 1);
  for (auto _ : state) {
    auto r = exec::BinaryKernel(exec::BinOpKind::kLt,
                                *f.facts->column(1), *threshold);
    if (!r.ok()) state.SkipWithError("compare failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_HashJoinFactsToDimension(benchmark::State& state) {
  auto& f = Data();
  for (auto _ : state) {
    auto r = exec::HashJoin(*f.facts, *f.dimension, {"key"}, {"key"});
    if (!r.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

void BM_HashGroupBy(benchmark::State& state) {
  auto& f = Data();
  std::vector<exec::AggSpec> aggs = {
      {exec::AggOp::kSum, "payload", "total"},
      {exec::AggOp::kCountStar, "", "n"}};
  for (auto _ : state) {
    auto r = exec::HashGroupBy(*f.facts, {"key"}, aggs);
    if (!r.ok()) state.SkipWithError("group-by failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}

BENCHMARK(BM_Filter50Percent);
BENCHMARK(BM_VectorizedCompare);
BENCHMARK(BM_HashJoinFactsToDimension);
BENCHMARK(BM_HashGroupBy);

}  // namespace

MLCS_BENCH_MAIN(ablation_kernels)
