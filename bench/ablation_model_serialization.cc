/// Ablation abl-ser: model (de)serialization overhead — the paper's §5.1
/// future-work item, implemented and measured.
///
/// Per model size (forest of N trees):
///   - Pickle / Unpickle: the BLOB round-trip cost itself.
///   - PredictFreshDeserialize: what the paper's Listing 2 pays — unpickle
///     the classifier BLOB on every UDF invocation, then predict.
///   - PredictCachedModel: the proposed optimization — keep the in-memory
///     model snapshot and skip the round-trip.
/// The gap between the last two is exactly the avoidable overhead; it
/// grows with model size and shrinks with batch size.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "common/random.h"
#include "ml/pickle.h"
#include "ml/random_forest.h"
#include "pipeline/voter_pipeline.h"
#include "sql/database.h"

namespace {

using namespace mlcs;

struct Fixture {
  ml::Matrix x;
  ml::Labels y;
  ml::Matrix probe;
};

Fixture& Data() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(9);
    constexpr size_t kRows = 4000;
    f->x = ml::Matrix(kRows, 8);
    f->y.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      int32_t cls = static_cast<int32_t>(rng.NextBounded(2));
      for (size_t c = 0; c < 8; ++c) {
        f->x.Set(i, c, cls * 2.0 + rng.NextGaussian());
      }
      f->y[i] = cls;
    }
    f->probe = f->x.SelectRows([&] {
      std::vector<uint32_t> idx(512);
      for (size_t i = 0; i < idx.size(); ++i) {
        idx[i] = static_cast<uint32_t>(i);
      }
      return idx;
    }());
    return f;
  }();
  return *fixture;
}

ml::RandomForest& ForestOf(int trees) {
  static std::map<int, ml::RandomForest*>* cache =
      new std::map<int, ml::RandomForest*>();
  auto it = cache->find(trees);
  if (it == cache->end()) {
    ml::RandomForestOptions opt;
    opt.n_estimators = trees;
    opt.max_depth = 12;
    auto* forest = new ml::RandomForest(opt);
    if (!forest->Fit(Data().x, Data().y).ok()) std::abort();
    it = cache->emplace(trees, forest).first;
  }
  return *it->second;
}

void BM_PickleDumps(benchmark::State& state) {
  ml::RandomForest& forest = ForestOf(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string blob = ml::pickle::Dumps(forest);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["blob_bytes"] = static_cast<double>(bytes);
}

void BM_PickleLoads(benchmark::State& state) {
  ml::RandomForest& forest = ForestOf(static_cast<int>(state.range(0)));
  std::string blob = ml::pickle::Dumps(forest);
  for (auto _ : state) {
    auto model = ml::pickle::Loads(blob);
    if (!model.ok()) state.SkipWithError("loads failed");
    benchmark::DoNotOptimize(model);
  }
  state.counters["blob_bytes"] = static_cast<double>(blob.size());
}

/// Listing-2 semantics: deserialize per predict call.
void BM_PredictFreshDeserialize(benchmark::State& state) {
  ml::RandomForest& forest = ForestOf(static_cast<int>(state.range(0)));
  std::string blob = ml::pickle::Dumps(forest);
  for (auto _ : state) {
    auto model = ml::pickle::Loads(blob);
    if (!model.ok()) state.SkipWithError("loads failed");
    auto pred = model.ValueOrDie()->Predict(Data().probe);
    benchmark::DoNotOptimize(pred);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Data().probe.rows()));
}

/// §5.1 optimization: reuse the in-memory snapshot.
void BM_PredictCachedModel(benchmark::State& state) {
  ml::RandomForest& forest = ForestOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto pred = forest.Predict(Data().probe);
    benchmark::DoNotOptimize(pred);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Data().probe.rows()));
}

/// End-to-end SQL comparison: Listing-2 semantics (deserialize per call)
/// vs the cached UDF (§5.1 optimization), through the full query path.
Database& SqlFixture() {
  static Database* db = [] {
    auto* d = new Database();
    pipeline::PipelineConfig config;
    config.data.num_voters = 20000;
    config.data.num_precincts = 200;
    config.data.num_columns = 16;
    if (!pipeline::LoadVoterData(d, config).ok()) std::abort();
    if (!pipeline::RegisterVoterUdfs(d).ok()) std::abort();
    auto r = d->Query(
        "CREATE TABLE m AS SELECT * FROM train_voter_rf(16, 12, 1, "
        "(SELECT precinct_id, age, urban_score, "
        "gen_label(voter_id, 60, 40, 1) AS label "
        "FROM voters JOIN precincts ON precinct_id = precinct_id))");
    if (!r.ok()) std::abort();
    return d;
  }();
  return *db;
}

void BM_SqlPredictFreshDeserialize(benchmark::State& state) {
  Database& db = SqlFixture();
  for (auto _ : state) {
    auto r = db.Query(
        "SELECT predict_voter_rf((SELECT classifier FROM m), precinct_id, "
        "age, urban_score) FROM voters");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}

void BM_SqlPredictCached(benchmark::State& state) {
  Database& db = SqlFixture();
  for (auto _ : state) {
    auto r = db.Query(
        "SELECT predict_voter_rf_cached((SELECT classifier FROM m), "
        "precinct_id, age, urban_score) FROM voters");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}

BENCHMARK(BM_PickleDumps)->Arg(1)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_PickleLoads)->Arg(1)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_PredictFreshDeserialize)->Arg(1)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_PredictCachedModel)->Arg(1)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_SqlPredictFreshDeserialize);
BENCHMARK(BM_SqlPredictCached);

}  // namespace

MLCS_BENCH_MAIN(ablation_model_serialization)
