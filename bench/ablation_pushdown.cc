/// Ablation abl-pushdown: what the query planner's rewrite rules buy on
/// the paper's voter workload. Narrow projections (≤ 4 of 96 columns) and
/// selective filters run through the SQL path with the optimizer on
/// (`optimizer:1`) and off (`optimizer:0`); the interesting deltas:
///
///   scan_bytes_per_iter  — bytes the scans actually materialized
///                          (storage-layer counter, see
///                          mlcs::ScanBytesTouched). With projection
///                          pruning a 3-column query over the 96-column
///                          voter table should touch ~3/96ths of it.
///   wall time on/off     — pruning + pushdown must not lose; on a wide
///                          table it should win clearly.
///
/// Results land in BENCH_ablation_pushdown.json. Scale knobs:
/// MLCS_PUSHDOWN_ROWS / _COLS / _PRECINCTS (defaults 50000 / 96 / 2751).
/// The CI container is CPU-quota'd to ~1 core, so the wall-time ratio is
/// reported, not gated (see EXPERIMENTS.md, abl-pushdown).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "bench_main.h"
#include "io/voter_gen.h"
#include "sql/database.h"
#include "storage/catalog.h"

namespace {

using namespace mlcs;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

Database& Db() {
  static Database* db = [] {
    auto* d = new Database();
    io::VoterDataOptions opt;
    opt.num_voters = EnvSize("MLCS_PUSHDOWN_ROWS", 50000);
    opt.num_columns = EnvSize("MLCS_PUSHDOWN_COLS", 96);
    opt.num_precincts = EnvSize("MLCS_PUSHDOWN_PRECINCTS", 2751);
    auto voters = io::GenerateVoters(opt);
    auto precincts = io::GeneratePrecincts(opt);
    if (!voters.ok() || !precincts.ok()) std::abort();
    if (!d->catalog().CreateTable("voters", voters.ValueOrDie()).ok() ||
        !d->catalog()
             .CreateTable("precincts", precincts.ValueOrDie())
             .ok()) {
      std::abort();
    }
    return d;
  }();
  return *db;
}

/// Runs `sql` repeatedly with the rewrite rules set by the grid arg
/// (0 = off, 1 = on) and reports the per-iteration scan bytes.
void RunQueryGrid(benchmark::State& state, const std::string& sql) {
  Database& db = Db();
  db.set_optimizer_enabled(state.range(0) == 1);
  uint64_t bytes_before = ScanBytesTouched();
  uint64_t result_rows = 0;
  for (auto _ : state) {
    auto r = db.Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    result_rows = r.ValueOrDie()->num_rows();
    benchmark::DoNotOptimize(r);
  }
  if (state.iterations() > 0) {
    state.counters["scan_bytes_per_iter"] = benchmark::Counter(
        static_cast<double>(ScanBytesTouched() - bytes_before) /
        static_cast<double>(state.iterations()));
  }
  state.counters["result_rows"] =
      benchmark::Counter(static_cast<double>(result_rows));
}

/// 3 of 96 columns, filter selective to one precinct: pruning narrows the
/// scan, and the filter only ever sees the three referenced columns.
void BM_NarrowProjectionSelectiveFilter(benchmark::State& state) {
  RunQueryGrid(state,
               "SELECT voter_id, age FROM voters WHERE precinct_id = 42");
}

/// Grouped aggregate over 2 of 96 columns.
void BM_NarrowAggregate(benchmark::State& state) {
  RunQueryGrid(state,
               "SELECT precinct_id, COUNT(*) AS n FROM voters "
               "WHERE age > 50 GROUP BY precinct_id");
}

/// Join with side-local conjuncts: pushdown filters both inputs before the
/// join; pruning keeps 3 voter columns + 3 precinct columns.
void BM_JoinWithPushdown(benchmark::State& state) {
  RunQueryGrid(state,
               "SELECT voter_id FROM voters JOIN precincts "
               "ON precinct_id = precinct_id "
               "WHERE age > 50 AND dem_votes > rep_votes");
}

/// COUNT(*) with a literal-TRUE conjunct: folding removes the filter and
/// the scan collapses to a single narrow column.
void BM_CountStar(benchmark::State& state) {
  RunQueryGrid(state, "SELECT COUNT(*) FROM voters WHERE 1 < 2");
}

#define MLCS_PUSHDOWN_GRID(fn) \
  BENCHMARK(fn)->ArgName("optimizer")->Arg(0)->Arg(1)

MLCS_PUSHDOWN_GRID(BM_NarrowProjectionSelectiveFilter);
MLCS_PUSHDOWN_GRID(BM_NarrowAggregate);
MLCS_PUSHDOWN_GRID(BM_JoinWithPushdown);
MLCS_PUSHDOWN_GRID(BM_CountStar);

}  // namespace

MLCS_BENCH_MAIN(ablation_pushdown)
