#ifndef MLCS_BENCH_BENCH_MAIN_H_
#define MLCS_BENCH_BENCH_MAIN_H_

// Shared main() for the google-benchmark ablation binaries. Replaces
// BENCHMARK_MAIN() so every bench:
//
//  - writes machine-readable results to BENCH_<name>.json in the working
//    directory (google-benchmark's own JSONReporter format) alongside the
//    usual human-readable console table, and
//  - honors MLCS_BENCH_MIN_TIME (seconds, e.g. "0.01"), letting
//    scripts/check.sh --bench-smoke run every binary at tiny scale without
//    per-binary flag plumbing, and
//  - records the effective thread-pool size ("mlcs_threads" in the JSON
//    context block), so a result file always says what parallelism it was
//    measured at (MLCS_THREADS env or hardware_concurrency), and
//  - records the planner configuration ("plan_optimizer" on/off, from
//    MLCS_DISABLE_OPTIMIZER) and the compressed-execution knob
//    ("mlcs_encoding" on/off, from MLCS_DISABLE_ENCODING) plus an
//    "mlcs_metrics" block with the full metrics-registry snapshot (plan
//    cache, thread pool, serving, scan bytes, encode counters), so
//    results carry the counters behind their timings.
//
// Usage, at the bottom of the bench .cc file:
//   MLCS_BENCH_MAIN(ablation_protocols)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "json_util.h"
#include "sql/database.h"
#include "storage/encoding.h"

namespace mlcs::bench {

/// Splices the metrics-registry snapshot (as an "mlcs_metrics" object)
/// into an already-written benchmark JSON file's context block — counters
/// are only final after RunSpecifiedBenchmarks returns, past the point
/// where AddCustomContext can help. Best-effort: a file without a context
/// block is left untouched.
inline void InjectMetricsBlock(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string doc = buf.str();
  in.close();
  size_t ctx = doc.find("\"context\": {");
  if (ctx == std::string::npos) return;
  size_t brace = doc.find('{', ctx);
  JsonWriter metrics;
  metrics.BeginObject();
  WriteMetricsBlock(&metrics);
  metrics.EndObject();
  std::string block = metrics.str();
  // Strip the wrapper braces, keeping `"mlcs_metrics": {...}`.
  block = block.substr(1, block.size() - 2);
  doc.insert(brace + 1, "\n    " + block + ",");
  std::ofstream out(path);
  if (out) out << doc;
}

inline int RunBenchmarks(const char* bench_name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Inject env/default flags unless the caller passed their own.
  bool has_min_time = false;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    std::string a(argv[i]);
    if (a.rfind("--benchmark_min_time", 0) == 0) has_min_time = true;
    if (a.rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string min_time_flag;
  const char* env_min_time = std::getenv("MLCS_BENCH_MIN_TIME");
  if (env_min_time != nullptr && !has_min_time) {
    min_time_flag = std::string("--benchmark_min_time=") + env_min_time;
    args.push_back(min_time_flag.data());
  }
  std::string json_path = std::string("BENCH_") + bench_name + ".json";
  std::string out_flag = "--benchmark_out=" + json_path;
  std::string out_format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(out_format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::AddCustomContext("mlcs_threads",
                              std::to_string(ThreadPool::DefaultThreadCount()));
  benchmark::AddCustomContext(
      "plan_optimizer", PlanOptimizerEnabledByEnv() ? "on" : "off");
  // Reflects MLCS_DISABLE_ENCODING at startup — a result file always says
  // whether it measured compressed or plain execution.
  benchmark::AddCustomContext("mlcs_encoding",
                              EncodingEnabled() ? "on" : "off");
  size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) {
    InjectMetricsBlock(json_path);
    std::cout << "wrote " << json_path << "\n";
  }
  return ran == 0 ? 1 : 0;
}

}  // namespace mlcs::bench

#define MLCS_BENCH_MAIN(name)                                       \
  int main(int argc, char** argv) {                                 \
    return ::mlcs::bench::RunBenchmarks(#name, argc, argv);         \
  }

#endif  // MLCS_BENCH_BENCH_MAIN_H_
