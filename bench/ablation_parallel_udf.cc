/// Ablation abl-par: chunked parallel execution of a vectorized UDF
/// (the paper's "parallel processing opportunities" claim, §1).
///
/// A compute-heavy scalar UDF runs over 1M rows split into 1..8 chunks on
/// the global thread pool. NOTE: the reference container is single-core,
/// so the expected curve here is flat — the measurement demonstrates the
/// machinery (chunk split + stitch overhead) rather than speedup; on a
/// multi-core host the same binary shows near-linear scaling.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cmath>

#include "udf/parallel.h"

namespace {

using namespace mlcs;

udf::UdfRegistry& Registry() {
  static udf::UdfRegistry* registry = [] {
    auto* r = new udf::UdfRegistry();
    udf::ScalarUdfEntry heavy;
    heavy.name = "heavy_sigmoid";
    heavy.fn = [](const std::vector<ColumnPtr>& args,
                  size_t) -> Result<ColumnPtr> {
      MLCS_ASSIGN_OR_RETURN(std::vector<double> data,
                            args[0]->ToDoubleVector());
      for (auto& v : data) {
        // A few transcendental ops per element to make compute dominate.
        v = 1.0 / (1.0 + std::exp(-std::sin(v) * std::cos(v)));
      }
      return Column::FromDouble(std::move(data));
    };
    (void)r->RegisterScalar(std::move(heavy));
    return r;
  }();
  return *registry;
}

void BM_ParallelUdfChunks(benchmark::State& state) {
  constexpr size_t kRows = 1 << 20;
  std::vector<double> data(kRows);
  for (size_t i = 0; i < kRows; ++i) data[i] = static_cast<double>(i % 997);
  std::vector<ColumnPtr> args = {Column::FromDouble(std::move(data))};
  udf::ParallelOptions options;
  options.num_chunks = static_cast<size_t>(state.range(0));
  options.min_rows_per_chunk = 1;
  for (auto _ : state) {
    auto r = udf::ParallelCallScalar(Registry(), "heavy_sigmoid", args,
                                     kRows, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  state.counters["chunks"] = static_cast<double>(options.num_chunks);
}

BENCHMARK(BM_ParallelUdfChunks)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

MLCS_BENCH_MAIN(ablation_parallel_udf)
